"""Router chaos smoke: 1 ``m3d-route`` fronting 2 ``m3d-serve`` replicas.

Boots two real replica subprocesses and one router subprocess, drives
concurrent localization traffic through the router, SIGKILLs one replica
mid-traffic, and asserts the acceptance criterion of the replica tier:

- **zero lost requests** — every request admitted during the kill window
  resolves to a 200 (``POST /localize`` is idempotent, so the router
  replays connect- and send-phase failures on the surviving replica);
- **degraded visibility** — ``/router/healthz`` reports ``degraded-1-of-2``
  once the prober ejects the dead replica;
- **recovery** — a replacement replica on the same port is readmitted by
  the half-open probe, health returns to ``ok``, and the restored replica
  serves traffic again (consistent hashing routes its keys home).
- **observability under chaos** — every process writes a ``--trace-log``;
  mid-chaos, ``m3d-obs stitch`` must still join the killed replica's hops
  into cross-process waterfalls (its flushed records survive the SIGKILL,
  the lost attempt shows as a missing hop) and ``m3d-obs fleet`` against
  the router's ``/router/fleet`` must report ``degraded-1-of-2``.

Runs under a hard timeout in CI so a hang fails the job, not wedges it.

Usage::

    PYTHONPATH=src python scripts/router_smoke.py --model /tmp/localizer.npz
"""

from __future__ import annotations

import argparse
import http.client
import json
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset


def _check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(f"smoke check failed: {label}")
    print(f"ok: {label}")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _request(
    port: int, method: str, path: str, body: dict[str, Any] | None = None,
    timeout: float = 30.0,
) -> tuple[int, Any, dict[str, str]]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type") or ""
        data = json.loads(raw) if "json" in content_type else raw.decode()
        return response.status, data, dict(response.getheaders())
    finally:
        conn.close()


def _boot(cmd: list[str], marker: str) -> subprocess.Popen:
    """Start a subprocess and block until its stdout prints ``marker``."""
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )
    assert proc.stdout is not None
    for _ in range(50):
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"process exited before printing {marker!r}: {cmd}")
        print(f"[boot] {line.rstrip()}")
        if marker in line:
            break
    else:
        raise AssertionError(f"never saw {marker!r} from {cmd}")
    # Keep draining stdout so the pipe buffer never blocks the server.
    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True  # type: ignore[union-attr]
    ).start()
    return proc


def _wait_for(predicate, timeout_s: float, label: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if predicate():
                print(f"ok: {label}")
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"smoke check failed (timeout {timeout_s}s): {label}")


def _router_status(router_port: int) -> str:
    _, health, _ = _request(router_port, "GET", "/router/healthz", timeout=5.0)
    return health["status"]


def _boot_replica(model: Path, port: int, trace_log: Path | None = None) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "m3d_fault_loc.cli.serve", "--model", str(model),
           "--port", str(port), "--workers", "2", "--batch-window-ms", "1"]
    if trace_log is not None:
        cmd += ["--trace-log", str(trace_log)]
    return _boot(cmd, marker="serving on http://")


def _run_obs(args: list[str]) -> Any:
    """Run an ``m3d-obs`` subcommand with ``--format json``; parse stdout."""
    result = subprocess.run(
        [sys.executable, "-m", "m3d_fault_loc.obs.cli", *args, "--format", "json"],
        capture_output=True, text=True, timeout=60,
    )
    if result.returncode != 0:
        raise AssertionError(
            f"m3d-obs {args[0]} exited {result.returncode}: {result.stderr.strip()}"
        )
    return json.loads(result.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", type=Path, required=True, help="trained .npz artifact")
    parser.add_argument("--requests", type=int, default=24,
                        help="requests fired during the kill window")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(23)
    graphs = synthesize_fault_dataset(rng, n_graphs=48, n_gates=12, n_inputs=3)
    payloads = [{"graph": g.to_json_dict(), "top_k": 3} for g in graphs]

    port_a, port_b = _free_port(), _free_port()
    router_port = _free_port()
    trace_dir = Path(tempfile.mkdtemp(prefix="m3d-smoke-traces-"))
    logs = {name: trace_dir / f"{name}.jsonl" for name in ("router", "replica_a", "replica_b")}
    procs: list[subprocess.Popen] = []
    try:
        replica_a = _boot_replica(args.model, port_a, trace_log=logs["replica_a"])
        replica_b = _boot_replica(args.model, port_b, trace_log=logs["replica_b"])
        procs += [replica_a, replica_b]
        router = _boot(
            [sys.executable, "-m", "m3d_fault_loc.cli.route",
             "--replica", f"127.0.0.1:{port_a}", "--replica", f"127.0.0.1:{port_b}",
             "--port", str(router_port),
             "--trace-log", str(logs["router"]),
             "--probe-interval-s", "0.2", "--probe-timeout-s", "1.0",
             "--cooldown-s", "0.5", "--eject-after", "2"],
            marker="routing on http://",
        )
        procs.append(router)
        _wait_for(lambda: _router_status(router_port) == "ok",
                  timeout_s=10.0, label="router healthz is ok with both replicas up")

        # Phase 1: steady state — traffic spreads over both replicas.
        seen: set[str] = set()
        for payload in payloads[:16]:
            status, _, headers = _request(router_port, "POST", "/localize", payload)
            _check(status == 200, f"steady-state localize ({payload['graph']['name']})")
            seen.add(headers["X-M3D-Replica"])
        _check(len(seen) == 2, f"consistent hashing spread traffic over both replicas: {seen}")

        # Phase 2: SIGKILL one replica while concurrent traffic is in flight.
        victim_key = f"127.0.0.1:{port_a}"
        victim, survivor_key = replica_a, f"127.0.0.1:{port_b}"
        outcomes: list[tuple[int, str]] = []
        failures: list[str] = []
        lock = threading.Lock()

        def fire(payload: dict[str, Any]) -> None:
            try:
                status, body, headers = _request(router_port, "POST", "/localize", payload)
                with lock:
                    outcomes.append((status, headers.get("X-M3D-Replica", "?")))
                    if status != 200:
                        failures.append(f"{payload['graph']['name']}: {status} {body}")
            except Exception as exc:  # a raw socket error IS a lost request
                with lock:
                    failures.append(f"{payload['graph']['name']}: transport error {exc!r}")

        kill_window = payloads[16:16 + args.requests]
        with ThreadPoolExecutor(max_workers=8, thread_name_prefix="smoke-client") as pool:
            futures = []
            for i, payload in enumerate(kill_window):
                futures.append(pool.submit(fire, payload))
                if i == len(kill_window) // 3:
                    victim.kill()
                    print(f"[chaos] SIGKILLed replica {victim_key} mid-traffic")
                time.sleep(0.01)
            for future in futures:
                future.result()
        _check(not failures,
               f"zero lost requests across the kill window ({len(outcomes)} fired): "
               + "; ".join(failures[:5]))
        _check(len(outcomes) == len(kill_window), "every request in the window resolved")
        post_kill = [replica for _, replica in outcomes[-5:]]
        _check(all(r == survivor_key for r in post_kill),
               "tail of the window is served entirely by the survivor")

        _wait_for(lambda: _router_status(router_port) == "degraded-1-of-2",
                  timeout_s=10.0, label="router health degrades to degraded-1-of-2")

        # Mid-chaos observability: stitch every process's trace log while
        # one replica is a SIGKILLed corpse, and federate fleet metrics.
        stitched = _run_obs(["stitch"] + [str(p) for p in logs.values()])
        _check(bool(stitched), "stitch joins trace logs into at least one waterfall")
        victim_hops = [
            hop
            for request in stitched
            for hop in request["hops"]
            if hop["process"] == "replica" and hop["addr"] == victim_key
        ]
        _check(bool(victim_hops), "killed replica's flushed hops still stitch")
        cross_process = [r for r in stitched if len(r["processes"]) >= 2]
        _check(bool(cross_process), "waterfalls span router + replica processes")
        failovers = [
            r for r in stitched
            if r["missing_attempts"] or len(r["attempts"]) >= 2
        ]
        _check(bool(failovers),
               "kill-window failover is visible (missing hop or multi-attempt)")

        fleet = _run_obs(["fleet", "--router", f"127.0.0.1:{router_port}"])
        _check(fleet["status"] == "degraded-1-of-2",
               f"fleet snapshot reports degraded-1-of-2 (got {fleet['status']})")
        _check(fleet["reachable"] == 1 and fleet["members"] == 2,
               "fleet snapshot counts 1 of 2 members reachable")
        merged_requests = fleet["merged"].get("m3d_requests_total", {}).get("value", 0)
        _check(merged_requests > 0, "fleet merged counters carry survivor traffic")

        # Phase 3: recovery — a replacement replica on the same port is
        # readmitted through the half-open probe and serves its keys again.
        replacement = _boot_replica(args.model, port_a)
        procs.append(replacement)
        _wait_for(lambda: _router_status(router_port) == "ok",
                  timeout_s=15.0, label="healed replica readmitted; router health ok")
        restored_seen = set()
        for payload in payloads[16 + args.requests:]:
            status, _, headers = _request(router_port, "POST", "/localize", payload)
            _check(status == 200, f"post-recovery localize ({payload['graph']['name']})")
            restored_seen.add(headers["X-M3D-Replica"])
            if victim_key in restored_seen:
                break
        _check(victim_key in restored_seen, "restored replica serves traffic again")

        # Graceful drain cascade: SIGTERM the router; it must exit cleanly.
        router.send_signal(signal.SIGTERM)
        _check(router.wait(timeout=15) == 0, "router drains and exits 0 on SIGTERM")
        print("router smoke: PASS")
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
        shutil.rmtree(trace_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

"""End-to-end smoke of the serving stack against a real subprocess.

Boots ``m3d_fault_loc.cli.serve`` on an ephemeral port, then drives the
acceptance scenario over real HTTP: health check, a localization, a repeat
of the same graph (must be a cache hit with no extra forward pass), a
contract-violating graph (must get a structured 422), a metrics read
asserting the counters actually advanced, the trace plumbing (every
response carries ``X-M3D-Trace-Id``, ``/debug/traces`` shows completed
traces with stage spans and the per-stage histograms register on
``/metrics``), and a full Prometheus-exposition validation via
``scripts/check_prom.py``. Exits non-zero on any failure.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --model /tmp/localizer.npz
"""

from __future__ import annotations

import argparse
import http.client
import json
import subprocess
import sys
from pathlib import Path
from typing import Any

import numpy as np

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_prom import check_exposition  # noqa: E402 - sibling script import


def _request(
    port: int, method: str, path: str, body: dict[str, Any] | None = None
) -> tuple[int, Any, dict[str, str]]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type") or ""
        data = json.loads(raw) if "json" in content_type else raw.decode()
        return response.status, data, dict(response.getheaders())
    finally:
        conn.close()


def _check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(f"smoke check failed: {label}")
    print(f"ok: {label}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", type=Path, required=True, help="trained .npz artifact")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(11)
    graph = synthesize_fault_dataset(rng, n_graphs=1, n_gates=12, n_inputs=3)[0]
    good_payload = {"graph": graph.to_json_dict(), "top_k": 3}
    bad_graph = graph.to_json_dict()
    bad_graph["x"]["dtype"] = "float64"  # schema dtype violation -> M3D106
    bad_graph["name"] = "smoke-bad-dtype"

    proc = subprocess.Popen(
        [sys.executable, "-m", "m3d_fault_loc.cli.serve", "--model", str(args.model),
         "--port", "0", "--batch-window-ms", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = None
        assert proc.stdout is not None
        for _ in range(20):
            line = proc.stdout.readline()
            if not line:
                break
            print(f"[server] {line.rstrip()}")
            if line.startswith("serving on http://"):
                port = int(line.rsplit(":", 1)[1])
                break
        _check(port is not None, "server booted and printed its ephemeral port")
        assert port is not None

        status, health, _ = _request(port, "GET", "/healthz")
        _check(status == 200 and health["status"] == "ok", "GET /healthz is ok")

        status, first, first_headers = _request(port, "POST", "/localize", good_payload)
        _check(status == 200 and len(first["top"]) == 3, "POST /localize returns top-3")
        _check(first["cached"] is False, "first localization is a model run")
        trace_id = first_headers.get("X-M3D-Trace-Id", "")
        _check(len(trace_id) >= 8, "200 response carries an X-M3D-Trace-Id header")
        _check(first.get("trace_id") == trace_id, "response body echoes the same trace id")

        status, second, _ = _request(port, "POST", "/localize", good_payload)
        _check(status == 200 and second["cached"] is True, "repeat request served from cache")
        _check(second["top"] == first["top"], "cached ranking matches the original")

        status, rejection, rej_headers = _request(
            port, "POST", "/localize", {"graph": bad_graph, "top_k": 3}
        )
        _check(status == 422, "contract-violating graph rejected with 422")
        _check(
            any(v["rule_id"].startswith("M3D1") for v in rejection["violations"]),
            "rejection cites an M3D1xx contract rule",
        )
        rej_tid = rej_headers.get("X-M3D-Trace-Id")
        _check(
            rej_tid is not None and rejection.get("trace_id") == rej_tid,
            "422 error body and header agree on the trace id",
        )

        status, debug, _ = _request(port, "GET", "/debug/traces")
        _check(status == 200, "GET /debug/traces responds")
        _check(len(debug["traces"]) >= 3, "debug ring holds the completed traces")
        by_id = {t["trace_id"]: t for t in debug["traces"]}
        _check(trace_id in by_id, "the first request's trace is retrievable by id")
        stages = {s["stage"] for s in by_id[trace_id]["spans"]}
        _check(
            {"contract_gate", "cache_lookup", "batch_infer"} <= stages,
            "trace spans cover the pipeline stages",
        )

        status, metrics, _ = _request(port, "GET", "/metrics?format=json")
        _check(status == 200, "GET /metrics responds")
        stage_hists = [
            "m3d_stage_contract_seconds", "m3d_stage_cache_lookup_seconds",
            "m3d_stage_queue_wait_seconds", "m3d_stage_inference_seconds",
        ]
        _check(
            all(metrics[h]["count"] >= 1 for h in stage_hists),
            "all four per-stage latency histograms recorded observations",
        )
        _check(metrics["m3d_requests_total"]["value"] == 3, "request counter advanced to 3")
        _check(metrics["m3d_cache_hits_total"]["value"] == 1, "cache-hit counter advanced")
        _check(metrics["m3d_forward_passes_total"]["value"] == 1, "exactly one forward pass ran")
        _check(
            metrics["m3d_contract_rejections_total"]["value"] == 1, "rejection counter advanced"
        )
        _check(
            metrics["m3d_request_latency_seconds"]["count"] >= 2
            and metrics["m3d_request_latency_seconds"]["sum"] > 0,
            "latency histogram recorded non-zero time",
        )

        status, prom, _ = _request(port, "GET", "/metrics")
        _check(
            isinstance(prom, str) and "m3d_requests_total 3" in prom,
            "Prometheus text exposition agrees",
        )
        problems = check_exposition(prom)
        for problem in problems:
            print(f"check_prom: {problem}", file=sys.stderr)
        _check(not problems, "Prometheus exposition passes check_prom validation")
        print("serve smoke: PASS")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())

"""Validate a Prometheus text exposition (as served by ``GET /metrics``).

Checks, per metric family:

- every sample line parses as ``name{labels} value`` with a finite float,
- every sample is preceded by a ``# TYPE`` line for its family,
- histograms expose ``_sum``, ``_count``, and a ``+Inf`` bucket,
- histogram buckets are cumulative (monotone non-decreasing in ``le`` order)
  and the ``+Inf`` bucket equals ``_count``.

Importable (``check_exposition(text) -> list[str]`` of problems) and
runnable: ``python scripts/check_prom.py [FILE]`` reads the exposition from
FILE or stdin and exits 1 listing every problem found. CI pipes the smoke
server's ``/metrics`` through it.
"""

from __future__ import annotations

import math
import re
import sys

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LE_RE = re.compile(r'le="([^"]+)"')


def _family(name: str) -> str:
    """The metric family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _parse_le(labels: str | None) -> float | None:
    match = _LE_RE.search(labels or "")
    if match is None:
        return None
    raw = match.group(1)
    return math.inf if raw == "+Inf" else float(raw)


def check_exposition(text: str) -> list[str]:
    """Return every problem found in a Prometheus text exposition."""
    problems: list[str] = []
    types: dict[str, str] = {}
    # family -> list of (le, count) for _bucket samples; and scalar samples
    buckets: dict[str, list[tuple[float, float]]] = {}
    sums: dict[str, float] = {}
    counts: dict[str, float] = {}
    seen_families: list[str] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value in: {line!r}")
            continue
        if math.isnan(value):
            problems.append(f"line {lineno}: NaN value for {name}")
        family = _family(name)
        if family not in types:
            problems.append(f"line {lineno}: sample {name!r} has no preceding # TYPE line")
        if family not in seen_families:
            seen_families.append(family)
        if name.endswith("_bucket"):
            le = _parse_le(match.group("labels"))
            if le is None:
                problems.append(f"line {lineno}: bucket sample without an le label: {line!r}")
            else:
                buckets.setdefault(family, []).append((le, value))
        elif name.endswith("_sum"):
            sums[family] = value
        elif name.endswith("_count"):
            counts[family] = value

    for family, kind in types.items():
        if kind != "histogram":
            continue
        series = buckets.get(family, [])
        if not series:
            problems.append(f"histogram {family}: no _bucket samples")
            continue
        if family not in sums:
            problems.append(f"histogram {family}: missing _sum")
        if family not in counts:
            problems.append(f"histogram {family}: missing _count")
        les = [le for le, _ in series]
        if les != sorted(les):
            problems.append(f"histogram {family}: buckets not in increasing le order")
        if les and les[-1] != math.inf:
            problems.append(f"histogram {family}: missing the +Inf bucket")
        values = [v for _, v in series]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"histogram {family}: bucket counts are not cumulative")
        if les and les[-1] == math.inf and family in counts and values[-1] != counts[family]:
            problems.append(
                f"histogram {family}: +Inf bucket ({values[-1]:g}) != _count "
                f"({counts[family]:g})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] not in ("-",):
        with open(argv[0], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    problems = check_exposition(text)
    for problem in problems:
        print(f"check_prom: {problem}", file=sys.stderr)
    if problems:
        return 1
    families = len({_family(m.group("name")) for m in map(_SAMPLE_RE.match, (
        line for line in text.splitlines() if line and not line.startswith("#")
    )) if m})
    print(f"check_prom: OK ({families} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Per-scenario smoke of the scenario platform against a real subprocess.

For every registered scenario: generate a tiny seeded dataset, gate it with
the scenario's composed contract engine (base M3D10x + tag rule + M3D11x
payload rules), and drive one ``/localize`` round-trip over real HTTP with
the ``scenario`` field set — asserting the response echoes the scenario and
ranks nodes. Then the negative paths: an unknown scenario must 422 with the
known-scenario list, and a graph tagged for one scenario submitted under
another must 422 citing M3D110. Finally the per-scenario request counters
must all have advanced on ``/metrics``. Exits non-zero on any failure.

Usage::

    PYTHONPATH=src python scripts/scenario_smoke.py --model /tmp/localizer.npz
"""

from __future__ import annotations

import argparse
import http.client
import json
import subprocess
import sys
from pathlib import Path
from typing import Any

from m3d_fault_loc.scenarios import (
    ScenarioSpec,
    build_scenario_engine,
    get_scenario,
    scenario_names,
)

SPEC = ScenarioSpec(n_graphs=2, n_gates=12, n_inputs=3, num_tiers=2, seed=23)


def _request(
    port: int, method: str, path: str, body: dict[str, Any] | None = None
) -> tuple[int, Any]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type") or ""
        return response.status, json.loads(raw) if "json" in content_type else raw.decode()
    finally:
        conn.close()


def _check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(f"smoke check failed: {label}")
    print(f"ok: {label}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", type=Path, required=True, help="trained .npz artifact")
    args = parser.parse_args(argv)

    names = scenario_names()
    _check(len(names) >= 5, f"at least five scenarios registered ({', '.join(names)})")

    # Offline half: every scenario generates deterministically and self-gates.
    sample: dict[str, Any] = {}
    for name in names:
        scenario = get_scenario(name)
        graphs = scenario.generate(SPEC)
        again = scenario.generate(SPEC)
        _check(
            [json.dumps(g.to_json_dict(), sort_keys=True) for g in graphs]
            == [json.dumps(g.to_json_dict(), sort_keys=True) for g in again],
            f"{name}: regeneration from the same spec is byte-identical",
        )
        engine = build_scenario_engine(name)
        _check(
            all(engine.run(g) == [] for g in graphs),
            f"{name}: generated graphs pass their own contract engine",
        )
        sample[name] = graphs[0]

    proc = subprocess.Popen(
        [sys.executable, "-m", "m3d_fault_loc.cli.serve", "--model", str(args.model),
         "--port", "0", "--batch-window-ms", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = None
        assert proc.stdout is not None
        for _ in range(20):
            line = proc.stdout.readline()
            if not line:
                break
            print(f"[server] {line.rstrip()}")
            if line.startswith("serving on http://"):
                port = int(line.rsplit(":", 1)[1])
                break
        _check(port is not None, "server booted and printed its ephemeral port")
        assert port is not None

        for name in names:
            status, body = _request(
                port, "POST", "/localize",
                {"graph": sample[name].to_json_dict(), "top_k": 3, "scenario": name},
            )
            _check(status == 200, f"{name}: POST /localize round-trips")
            _check(body["scenario"] == name, f"{name}: response echoes the scenario")
            _check(len(body["top"]) == 3, f"{name}: response ranks top-3 nodes")

        status, body = _request(
            port, "POST", "/localize",
            {"graph": sample[names[0]].to_json_dict(), "scenario": "no_such_scenario"},
        )
        _check(
            status == 422 and body["error"] == "unknown_scenario" and body["known"] == names,
            "unknown scenario rejected with 422 + known list",
        )

        tagged = next(
            name for name in names if "scenario" in sample[name].meta
        )
        other = next(name for name in names if name != tagged)
        status, body = _request(
            port, "POST", "/localize",
            {"graph": sample[tagged].to_json_dict(), "scenario": other},
        )
        _check(
            status == 422
            and body["error"] == "contract_violation"
            and any(v["rule_id"] == "M3D110" for v in body["violations"]),
            f"{tagged} graph under {other} engine rejected citing M3D110",
        )

        status, metrics = _request(port, "GET", "/metrics?format=json")
        _check(status == 200, "GET /metrics responds")
        _check(
            all(metrics[f"m3d_scenario_requests_total_{n}"]["value"] >= 1 for n in names),
            "per-scenario request counters advanced for every scenario",
        )
        print("scenario smoke: PASS")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())

"""Dataset loader: the contract gate is mandatory and has no bypass."""

import inspect

import numpy as np
import pytest

from fixture_graphs import make_bad_dtype_graph, make_clean_graph, make_high_fanout_graph
from m3d_fault_loc.analysis.engine import RuleConfig, default_engine
from m3d_fault_loc.data.dataset import CircuitGraphDataset, GraphContractError
from m3d_fault_loc.data.synthetic import synthesize_fault_dataset


def test_clean_graphs_load():
    ds = CircuitGraphDataset.from_graphs([make_clean_graph()])
    assert len(ds) == 1
    assert ds.warnings == []


def test_error_graph_is_refused():
    with pytest.raises(GraphContractError) as exc_info:
        CircuitGraphDataset.from_graphs([make_clean_graph(), make_bad_dtype_graph()])
    assert exc_info.value.graph_name == "bad-dtype"
    assert any(v.rule_id == "M3D106" for v in exc_info.value.violations)


def test_gate_has_no_bypass_flag():
    """The gate is mandatory by design: no strict/skip/validate knobs."""
    for method in (CircuitGraphDataset.from_graphs, CircuitGraphDataset.load_dir):
        params = set(inspect.signature(method).parameters)
        assert not params & {"strict", "skip_checks", "validate", "force"}


def test_warnings_are_surfaced_not_fatal():
    engine = default_engine(RuleConfig(max_fanout=2))
    ds = CircuitGraphDataset.from_graphs([make_high_fanout_graph(n_sinks=4)], engine=engine)
    assert len(ds) == 1
    assert any(v.rule_id == "M3D108" for v in ds.warnings)


def test_load_dir_gates_serialized_graphs(tmp_path):
    make_clean_graph().save(tmp_path / "ok.json")
    make_bad_dtype_graph().save(tmp_path / "bad.json")
    with pytest.raises(GraphContractError):
        CircuitGraphDataset.load_dir(tmp_path)


def test_save_dir_roundtrip(tmp_path):
    rng = np.random.default_rng(7)
    ds = CircuitGraphDataset.from_graphs(synthesize_fault_dataset(rng, n_graphs=4, n_gates=15))
    ds.save_dir(tmp_path / "out")
    reloaded = CircuitGraphDataset.load_dir(tmp_path / "out")
    assert len(reloaded) == 4
    assert [g.fault_index for g in reloaded] == [g.fault_index for g in ds]


def test_split_partitions_dataset():
    rng = np.random.default_rng(3)
    ds = CircuitGraphDataset.from_graphs(synthesize_fault_dataset(rng, n_graphs=10, n_gates=12))
    train, test = ds.split(rng, test_fraction=0.3)
    assert len(train) + len(test) == 10
    assert len(test) == 3


def test_split_refuses_empty_train_split():
    """A len-1 dataset would put its only graph in test; raise instead."""
    rng = np.random.default_rng(3)
    ds = CircuitGraphDataset.from_graphs([make_clean_graph()])
    with pytest.raises(ValueError, match="train split would be empty"):
        ds.split(rng, test_fraction=0.2)


def test_split_smallest_viable_dataset_keeps_one_per_side():
    rng = np.random.default_rng(3)
    ds = CircuitGraphDataset.from_graphs([make_clean_graph(), make_clean_graph()])
    train, test = ds.split(rng, test_fraction=0.5)
    assert len(train) == 1 and len(test) == 1


def test_gate_graph_single_graph_fast_path():
    """The serving layer's per-request gate has dataset-gate semantics."""
    from m3d_fault_loc.data.dataset import gate_graph

    assert gate_graph(make_clean_graph()) == []
    engine = default_engine(RuleConfig(max_fanout=2))
    warnings = gate_graph(make_high_fanout_graph(n_sinks=4), engine)
    assert any(v.rule_id == "M3D108" for v in warnings)
    with pytest.raises(GraphContractError) as exc_info:
        gate_graph(make_bad_dtype_graph())
    assert any(v.rule_id == "M3D106" for v in exc_info.value.violations)

"""Shared fixtures: the racecheck lock-order sanitizer for threaded suites.

The chaos and concurrency-stress suites run with ``threading.Lock``/``RLock``
instrumented by :mod:`m3d_fault_loc.testing.racecheck`. Any lock-order
inversion or foreign release observed during such a test fails it — the CI
``concurrency-sanitize`` job depends on this fixture, not on per-test
boilerplate.

Long holds are *not* asserted here (slow CI machines would flap); the
stress test asserts them explicitly with its own threshold.
"""

from __future__ import annotations

from collections.abc import Iterator

import pytest

from m3d_fault_loc.testing import racecheck

#: Test modules whose lock traffic runs under the sanitizer.
RACECHECK_MODULES = (
    "test_chaos",
    "test_concurrency_stress",
    "test_pool_chaos",
    "test_router",
)


@pytest.fixture(autouse=True)
def racecheck_guard(
    request: pytest.FixtureRequest,
) -> Iterator[racecheck.LockOrderSanitizer | None]:
    if request.module.__name__ not in RACECHECK_MODULES:
        yield None
        return
    with racecheck.instrumented(long_hold_ms=250.0) as sanitizer:
        yield sanitizer
    report = sanitizer.report()
    problems = [i.describe() for i in report.inversions]
    problems += [f.describe() for f in report.foreign_releases]
    if problems:
        pytest.fail(report.summary() + "\n" + "\n".join(problems))

"""Metrics federation: merge invariants, fleet status, SLO derivation."""

from typing import Any

import pytest

from m3d_fault_loc.obs.fleet import FleetScraper, _fraction_le, render_fleet_text
from m3d_fault_loc.serve.metrics import MetricsRegistry
from m3d_fault_loc.testing.chaos import StubReplica

BUCKETS = (0.01, 0.1, 1.0)


def metrics_payload(
    requests: float, errors: float, latencies: list[float] | None = None
) -> dict[str, Any]:
    """A realistic ``/metrics?format=json`` payload built by the real registry."""
    registry = MetricsRegistry()
    registry.counter("m3d_requests_total", "requests").inc(requests)
    registry.counter("m3d_request_errors_total", "errors").inc(errors)
    histogram = registry.histogram(
        "m3d_request_latency_seconds", "latency", buckets=BUCKETS
    )
    for value in latencies or ():
        histogram.observe(value)
    registry.state_gauge("m3d_health", "health", states=("ok", "draining"))
    return registry.to_json_dict()


@pytest.fixture
def two_stubs():
    a = StubReplica(name="a").start()
    b = StubReplica(name="b").start()
    a.set_metrics(metrics_payload(10, 1, [0.005, 0.05, 0.5]))
    b.set_metrics(metrics_payload(30, 2, [0.05, 0.05, 0.2]))
    yield a, b
    for stub in (a, b):
        try:
            stub.stop()
        except OSError:
            pass


def test_merge_metrics_counter_sum_invariant():
    replicas = [
        {"replica": "a", "metrics": metrics_payload(10, 1)},
        {"replica": "b", "metrics": metrics_payload(30, 2)},
    ]
    merged = FleetScraper.merge_metrics(replicas)
    # THE federation invariant: merged counters equal the per-replica sums
    assert merged["m3d_requests_total"]["value"] == 40
    assert merged["m3d_request_errors_total"]["value"] == 3
    assert merged["m3d_health"] == {"type": "state_gauge", "states": {"ok": 2}}


def test_merge_metrics_bucket_merges_histograms():
    replicas = [
        {"replica": "a", "metrics": metrics_payload(3, 0, [0.005, 0.05, 0.5])},
        {"replica": "b", "metrics": metrics_payload(3, 0, [0.05, 0.05, 0.2])},
    ]
    merged = FleetScraper.merge_metrics(replicas)
    latency = merged["m3d_request_latency_seconds"]
    assert latency["count"] == 6
    assert latency["buckets"]["+Inf"] == 6
    assert latency["buckets"]["0.01"] == 1
    assert 0.0 < latency["p50_ms"] <= 1000.0
    assert latency["p99_ms"] >= latency["p50_ms"]


def test_scrape_merged_equals_individual_sums(two_stubs):
    a, b = two_stubs
    scraper = FleetScraper(members=[a.key, b.key], timeout_s=2.0)
    snapshot = scraper.scrape()
    assert snapshot["status"] == "ok"
    assert snapshot["reachable"] == 2

    by_addr = {r["replica"]: r for r in snapshot["replicas"]}
    for name in ("m3d_requests_total", "m3d_request_errors_total"):
        individual = sum(
            by_addr[addr]["metrics"][name]["value"] for addr in (a.key, b.key)
        )
        assert snapshot["merged"][name]["value"] == individual
    assert snapshot["merged"]["m3d_request_latency_seconds"]["count"] == 6


def test_scrape_reports_degraded_when_member_down(two_stubs):
    a, b = two_stubs
    scraper = FleetScraper(members=[a.key, b.key], timeout_s=1.0)
    b.stop()
    snapshot = scraper.scrape()
    assert snapshot["status"] == "degraded-1-of-2"
    assert snapshot["reachable"] == 1
    down = next(r for r in snapshot["replicas"] if r["replica"] == b.key)
    assert down["reachable"] is False
    assert down["status"] == "unreachable"
    # merged view carries only the survivor's counters
    assert snapshot["merged"]["m3d_requests_total"]["value"] == 10
    assert "DOWN" in render_fleet_text(snapshot)


def test_scrape_all_down_is_unhealthy():
    scraper = FleetScraper(members=["127.0.0.1:9", "127.0.0.1:10"], timeout_s=0.2)
    assert scraper.scrape()["status"] == "unhealthy"
    assert FleetScraper(members=[]).scrape()["status"] == "empty"


def test_slo_section(two_stubs):
    a, b = two_stubs
    scraper = FleetScraper(
        members=[a.key, b.key],
        timeout_s=2.0,
        availability_objective=0.9,
        latency_objective_ms=100.0,
    )
    slo = scraper.scrape()["slo"]
    # 3 errors / 40 requests on the first scrape
    assert slo["availability"] == pytest.approx(1.0 - 3 / 40)
    assert slo["availability_objective"] == 0.9
    assert slo["burn_rate"] == pytest.approx((3 / 40) / 0.1, abs=1e-3)
    # 4 of 6 latency samples are <= 100 ms
    assert slo["latency_attainment"] == pytest.approx(4 / 6, abs=0.1)
    assert slo["window_points"] == 1

    # the window accumulates across scrapes
    assert scraper.scrape()["slo"]["window_points"] == 2


def test_slo_availability_falls_back_to_reachability():
    scraper = FleetScraper(members=["127.0.0.1:9"], timeout_s=0.2)
    slo = scraper.scrape()["slo"]
    assert slo["availability"] == 0.0  # no counters anywhere, 0/1 reachable
    assert "latency_attainment" not in slo


def test_invalid_objective_rejected():
    with pytest.raises(ValueError, match="availability objective"):
        FleetScraper(members=[], availability_objective=1.0)


def test_fraction_le_interpolates():
    snap = {"buckets": {"0.1": 2, "1": 4, "+Inf": 4}, "count": 4}
    assert _fraction_le(snap, 0.1) == pytest.approx(0.5)
    assert _fraction_le(snap, 1.0) == pytest.approx(1.0)
    assert _fraction_le(snap, 0.55) == pytest.approx(0.75)  # halfway into (0.1, 1]
    assert _fraction_le(snap, 5.0) == pytest.approx(1.0)
    assert _fraction_le({"buckets": {}, "count": 0}, 0.1) is None


def test_render_fleet_text_mentions_slo_and_members(two_stubs):
    a, b = two_stubs
    snapshot = FleetScraper(members=[a.key, b.key], timeout_s=2.0).scrape()
    text = render_fleet_text(snapshot)
    assert "fleet: ok  (2/2 reachable)" in text
    assert a.key in text and b.key in text
    assert "slo: availability=" in text
    assert "m3d_requests_total: 40" in text

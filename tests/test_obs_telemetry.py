"""Telemetry streams and the m3d-obs summarizer CLI."""

import json

import pytest

from m3d_fault_loc.obs.cli import main as obs_main
from m3d_fault_loc.obs.telemetry import (
    TelemetryWriter,
    percentile,
    read_jsonl,
    summarize_traces,
    summarize_training,
)


def test_writer_appends_timestamped_records(tmp_path):
    path = tmp_path / "run" / "train.jsonl"
    with TelemetryWriter(path) as writer:
        writer.emit("epoch", epoch=0, loss=1.5)
        writer.emit("epoch", epoch=1, loss=0.9)
    records = read_jsonl(path)
    assert [r["epoch"] for r in records] == [0, 1]
    assert all(r["ts"] > 0 and r["event"] == "epoch" for r in records)


def test_read_jsonl_skips_blank_and_torn_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"event": "a"}\n\n{"event": "b"}\n{"event": "c", "x"')
    assert [r["event"] for r in read_jsonl(path)] == ["a", "b"]


def test_percentile_edge_cases():
    assert percentile([], 95.0) == 0.0
    assert percentile([7.0], 50.0) == 7.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5
    assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def _trace(tid, total_ms, stages, status="ok"):
    return {
        "trace_id": tid,
        "name": "localize",
        "status": status,
        "duration_ms": total_ms,
        "spans": [{"stage": s, "duration_ms": d} for s, d in stages],
    }


def test_summarize_traces_per_stage_and_slowest():
    traces = [
        _trace("t-1", 10.0, [("queue_wait", 2.0), ("batch_infer", 7.0)]),
        _trace("t-2", 30.0, [("queue_wait", 20.0), ("batch_infer", 9.0)], status="timeout"),
        _trace("t-3", 5.0, [("batch_infer", 4.0)]),
    ]
    summary = summarize_traces(traces, top=2)
    assert summary["traces"] == 3
    assert summary["statuses"] == {"ok": 2, "timeout": 1}
    assert summary["stages"]["queue_wait"]["count"] == 2
    assert summary["stages"]["batch_infer"]["max_ms"] == 9.0
    assert [t["trace_id"] for t in summary["slowest"]] == ["t-2", "t-1"]
    assert summary["total"]["p50_ms"] == 10.0


def test_summarize_training_trajectory():
    records = [
        {"event": "epoch", "epoch": 0, "loss": 2.0, "wall_s": 0.5, "grad_norm": 3.0},
        {"event": "epoch", "epoch": 1, "loss": 1.0, "wall_s": 0.7, "grad_norm": 9.0},
        {"event": "final", "ts": 1.0, "test_accuracy": 0.8},
        {"event": "eval", "ts": 2.0, "top1": 0.7, "k": 3, "top_k_accuracy": 0.9},
    ]
    summary = summarize_training(records)
    assert summary["epochs"] == 2
    assert summary["first_loss"] == 2.0 and summary["last_loss"] == 1.0
    assert summary["best_loss"] == 1.0
    assert summary["mean_epoch_wall_s"] == 0.6
    assert summary["max_grad_norm"] == 9.0
    assert summary["final"]["test_accuracy"] == 0.8
    assert summary["evals"][0]["top_k_accuracy"] == 0.9


def test_obs_cli_trace_text_and_json(tmp_path, capsys):
    path = tmp_path / "traces.jsonl"
    with path.open("w") as handle:
        for trace in (
            _trace("t-aaaa", 12.0, [("batch_infer", 10.0)]),
            _trace("t-bbbb", 3.0, [("batch_infer", 2.0)]),
        ):
            handle.write(json.dumps(trace) + "\n")

    assert obs_main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 traces" in out and "batch_infer" in out and "t-aaaa" in out

    assert obs_main(["trace", str(path), "--format", "json", "--top", "1"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["traces"] == 2
    assert [t["trace_id"] for t in summary["slowest"]] == ["t-aaaa"]


def test_obs_cli_train_summary(tmp_path, capsys):
    path = tmp_path / "train.jsonl"
    with TelemetryWriter(path) as writer:
        writer.emit("epoch", epoch=0, loss=2.0, wall_s=0.1, grad_norm=1.0, lr=0.01)
        writer.emit("final", test_accuracy=0.75)
    assert obs_main(["train", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 epochs" in out and "0.75" in out


def test_obs_cli_missing_or_empty_file_exits_2(tmp_path, capsys):
    assert obs_main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    assert obs_main(["train", str(empty)]) == 2
    assert "m3d-obs" in capsys.readouterr().err


def test_summarize_training_aggregates_profile_rows():
    records = [
        {"event": "epoch", "epoch": 0, "loss": 2.0, "wall_s": 0.5},
        {"event": "profile", "epoch": 0, "phase": "forward", "wall_s": 0.3, "calls": 30},
        {"event": "profile", "epoch": 0, "phase": "data_gen", "wall_s": 0.1,
         "calls": 30, "peak_kb": 128.0},
        {"event": "profile", "epoch": 1, "phase": "forward", "wall_s": 0.5, "calls": 30},
        {"event": "profile", "epoch": 1, "phase": "data_gen", "wall_s": 0.1,
         "calls": 30, "peak_kb": 512.0},
    ]
    profile = summarize_training(records)["profile"]
    assert list(profile) == ["forward", "data_gen"]  # sorted by wall_s, descending
    assert profile["forward"]["wall_s"] == 0.8
    assert profile["forward"]["calls"] == 60
    assert profile["forward"]["epochs"] == 2
    assert profile["forward"]["share"] == 0.8
    assert "peak_kb" not in profile["forward"]  # memory flag was off for it
    assert profile["data_gen"]["peak_kb"] == 512.0  # max across epochs


def test_summarize_training_without_profile_rows_has_no_section():
    summary = summarize_training(
        [{"event": "epoch", "epoch": 0, "loss": 2.0, "wall_s": 0.5}]
    )
    assert "profile" not in summary


def test_obs_cli_train_renders_profile_table(tmp_path, capsys):
    path = tmp_path / "train.jsonl"
    with TelemetryWriter(path) as writer:
        writer.emit("epoch", epoch=0, loss=2.0, wall_s=0.1, grad_norm=1.0, lr=0.01)
        writer.emit("profile", epoch=0, phase="forward", wall_s=0.08, calls=10)
        writer.emit("profile", epoch=0, phase="data_gen", wall_s=0.02, calls=10,
                    peak_kb=64.0)
    assert obs_main(["train", str(path)]) == 0
    out = capsys.readouterr().out
    assert "phase" in out and "forward" in out and "peak_kb" in out
    # the summarize alias renders the identical report
    assert obs_main(["summarize", str(path)]) == 0
    assert capsys.readouterr().out == out


def test_obs_cli_stitch_text_json_and_missing_file(tmp_path, capsys):
    log = tmp_path / "router.jsonl"
    record = {
        "trace_id": "req-deadbeef", "name": "route", "status": "ok",
        "started_at": 10.0, "duration_ms": 4.0, "meta": {},
        "spans": [{"stage": "upstream_attempt", "offset_ms": 0.1, "duration_ms": 3.0,
                   "meta": {"replica": "127.0.0.1:7001", "rank": 0, "attempt": 1,
                            "outcome": 200}}],
        "tags": {"process": "router"},
    }
    log.write_text(json.dumps(record) + "\n")

    assert obs_main(["stitch", str(log)]) == 0
    out = capsys.readouterr().out
    assert "trace req-deadbeef" in out and "[router]" in out

    assert obs_main(["stitch", str(log), "--format", "json"]) == 0
    [stitched] = json.loads(capsys.readouterr().out)
    assert stitched["trace_id"] == "req-deadbeef"
    assert stitched["attempts"][0]["replica"] == "127.0.0.1:7001"

    assert obs_main(["stitch", str(log), "--trace-id", "req-other"]) == 0
    assert "no stitched requests" in capsys.readouterr().out

    assert obs_main(["stitch", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_obs_cli_fleet_requires_targets_and_reports_unreachable(capsys):
    assert obs_main(["fleet"]) == 2
    assert "--router and/or --replica" in capsys.readouterr().err
    # an unreachable router (reserved port, nothing listening) exits 2
    assert obs_main(["fleet", "--router", "127.0.0.1:9", "--timeout-s", "0.2"]) == 2
    assert "unreachable" in capsys.readouterr().err

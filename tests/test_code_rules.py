"""AST lint rules: each GNN-stack footgun pattern is caught, clean code isn't."""

from pathlib import Path

from m3d_fault_loc.analysis.code_rules import lint_source
from m3d_fault_loc.analysis.violations import Severity

FAKE = Path("fake/module.py")


def fired(source: str, path: Path = FAKE):
    return {v.rule_id for v in lint_source(source, path)}


# -- M3D201 mixed device targets ------------------------------------------


def test_mixed_to_device_literals_flagged():
    src = (
        "def forward_pass(x, w):\n"
        "    x = x.to('cuda')\n"
        "    w = w.to('cpu')\n"
        "    return x @ w\n"
    )
    assert "M3D201" in fired(src)


def test_mixed_cuda_cpu_methods_flagged():
    src = "def move(t, u):\n    return t.cuda() @ u.cpu()\n"
    assert "M3D201" in fired(src)


def test_consistent_device_not_flagged():
    src = "def move(t, u):\n    return t.to('cuda:0') + u.to('cuda:1')\n"
    assert "M3D201" not in fired(src)


# -- M3D202 missing no_grad ------------------------------------------------


def test_inference_without_no_grad_flagged():
    src = (
        "import torch\n"
        "def predict(model, x):\n"
        "    return model(x)\n"
    )
    assert "M3D202" in fired(src)


def test_inference_with_no_grad_block_clean():
    src = (
        "import torch\n"
        "def predict(model, x):\n"
        "    with torch.no_grad():\n"
        "        return model(x)\n"
    )
    assert "M3D202" not in fired(src)


def test_inference_with_decorator_clean():
    src = (
        "import torch\n"
        "@torch.no_grad()\n"
        "def evaluate(model, x):\n"
        "    return model.forward(x)\n"
    )
    assert "M3D202" not in fired(src)


def test_no_torch_import_means_rule_inactive():
    src = "def predict(model, x):\n    return model(x)\n"
    assert "M3D202" not in fired(src)


# -- M3D203 ad-hoc seeding -------------------------------------------------


def test_adhoc_seeding_flagged_outside_blessed_module():
    for call in ("random.seed(0)", "np.random.seed(0)", "torch.manual_seed(0)"):
        assert "M3D203" in fired(f"def setup():\n    {call}\n"), call


def test_seeding_allowed_in_blessed_module():
    src = "import random\ndef seed_everything(s):\n    random.seed(s)\n"
    assert "M3D203" not in fired(src, Path("pkg/utils/seed.py"))


def test_generator_construction_not_flagged():
    src = "import numpy as np\ndef make_rng(s):\n    return np.random.default_rng(s)\n"
    assert "M3D203" not in fired(src)


# -- M3D204 bare except ----------------------------------------------------


def test_bare_except_warning_outside_training():
    findings = [
        v for v in lint_source("try:\n    pass\nexcept:\n    pass\n", FAKE)
        if v.rule_id == "M3D204"
    ]
    assert len(findings) == 1
    assert findings[0].severity == Severity.WARNING


def test_bare_except_error_inside_training_function():
    src = (
        "def train_epoch(batches):\n"
        "    for b in batches:\n"
        "        try:\n"
        "            step(b)\n"
        "        except:\n"
        "            pass\n"
    )
    findings = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D204"]
    assert len(findings) == 1
    assert findings[0].severity == Severity.ERROR


def test_typed_except_clean():
    assert "M3D204" not in fired("try:\n    pass\nexcept ValueError:\n    pass\n")


# -- misc ------------------------------------------------------------------


def test_syntax_error_reported_as_finding():
    findings = lint_source("def broken(:\n", FAKE)
    assert [v.rule_id for v in findings] == ["M3D200"]
    assert findings[0].severity == Severity.ERROR


def test_locations_carry_path_and_line():
    src = "import random\nrandom.seed(3)\n"
    (finding,) = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D203"]
    assert finding.location == f"{FAKE}:2"


# -- M3D205 unbounded module-level dict caches -----------------------------


def test_module_level_dict_cache_warns_outside_serve():
    src = "_RESULT_CACHE = {}\n"
    violations = lint_source(src, FAKE)
    assert [v.rule_id for v in violations] == ["M3D205"]
    assert violations[0].severity is Severity.WARNING


def test_module_level_dict_cache_is_error_inside_serve():
    serve_path = Path("src/m3d_fault_loc/serve/handlers.py")
    for src in ("_cache = {}\n", "MEMO = dict()\n", "score_cache: dict = {}\n"):
        violations = lint_source(src, serve_path)
        assert [v.rule_id for v in violations] == ["M3D205"], src
        assert violations[0].severity is Severity.ERROR, src


def test_bounded_or_non_cache_bindings_clean():
    clean = (
        "_cache = LRUResultCache(capacity=64)\n"  # bounded structure
        "settings = {}\n"  # dict, but not cache-named
        "def lookup(cache):\n"
        "    local_cache = {}\n"  # function-local, not module-level
        "    return cache, local_cache\n"
    )
    assert "M3D205" not in fired(clean)


def test_serve_sources_pass_their_own_rule():
    serve_dir = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc" / "serve"
    for source_file in sorted(serve_dir.glob("*.py")):
        violations = lint_source(source_file.read_text(), source_file)
        assert not [v for v in violations if v.rule_id == "M3D205"], source_file


# -- M3D206 unguarded thread-target loops ----------------------------------

UNGUARDED_WORKER = (
    "import threading\n"
    "def _worker_loop(q):\n"
    "    while True:\n"
    "        handle(q.get())\n"
    "def start():\n"
    "    threading.Thread(target=_worker_loop, args=(q,)).start()\n"
)


def test_unguarded_thread_loop_warns_outside_serve():
    findings = [v for v in lint_source(UNGUARDED_WORKER, FAKE) if v.rule_id == "M3D206"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.WARNING
    assert "_worker_loop" in findings[0].message


def test_unguarded_thread_loop_is_error_inside_serve():
    serve_path = Path("src/m3d_fault_loc/serve/workers.py")
    findings = [v for v in lint_source(UNGUARDED_WORKER, serve_path) if v.rule_id == "M3D206"]
    assert len(findings) == 1
    assert findings[0].severity is Severity.ERROR


def test_broadly_guarded_thread_loop_clean():
    src = (
        "import threading\n"
        "def _worker_loop(q):\n"
        "    while True:\n"
        "        try:\n"
        "            handle(q.get())\n"
        "        except Exception:\n"
        "            log()\n"
        "def start():\n"
        "    threading.Thread(target=_worker_loop).start()\n"
    )
    assert "M3D206" not in fired(src)


def test_typed_handler_does_not_count_as_a_guard():
    src = (
        "import queue, threading\n"
        "def _worker_loop(q):\n"
        "    while True:\n"
        "        try:\n"
        "            handle(q.get_nowait())\n"
        "        except queue.Empty:\n"
        "            continue\n"
        "def start():\n"
        "    threading.Thread(target=_worker_loop).start()\n"
    )
    assert "M3D206" in fired(src)


def test_loops_in_non_target_functions_are_ignored():
    src = (
        "def drain(q):\n"
        "    while q:\n"
        "        q.pop()\n"
    )
    assert "M3D206" not in fired(src)


def test_serve_sources_pass_the_thread_loop_rule():
    serve_dir = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc" / "serve"
    for source_file in sorted(serve_dir.glob("*.py")):
        violations = lint_source(source_file.read_text(), source_file)
        assert not [v for v in violations if v.rule_id == "M3D206"], source_file


# -- M3D207 print()/root-logging in library code ---------------------------


def test_print_in_library_code_warns():
    src = "def load(path):\n    print('loading', path)\n    return path\n"
    violations = lint_source(src, Path("src/m3d_fault_loc/data/loader.py"))
    (finding,) = [v for v in violations if v.rule_id == "M3D207"]
    assert finding.severity is Severity.WARNING
    assert "trace id" in finding.message


def test_print_inside_serve_is_error():
    src = "def handle(req):\n    print('got', req)\n"
    violations = lint_source(src, Path("src/m3d_fault_loc/serve/handler.py"))
    (finding,) = [v for v in violations if v.rule_id == "M3D207"]
    assert finding.severity is Severity.ERROR


def test_root_logging_calls_flagged():
    src = (
        "import logging\n"
        "logging.basicConfig()\n"
        "def run():\n"
        "    logging.info('started')\n"
        "    logging.warning('odd')\n"
    )
    violations = [
        v for v in lint_source(src, Path("src/m3d_fault_loc/model/train_loop.py"))
        if v.rule_id == "M3D207"
    ]
    assert len(violations) == 3
    assert all("root-logger" in v.message for v in violations)


def test_named_logger_and_structured_logger_clean():
    src = (
        "import logging\n"
        "from m3d_fault_loc.obs.logging import get_logger\n"
        "log = get_logger(__name__)\n"
        "stdlog = logging.getLogger(__name__)\n"
        "def run():\n"
        "    log.info('event', x=1)\n"
        "    stdlog.debug('fine')\n"
    )
    assert "M3D207" not in fired(src, Path("src/m3d_fault_loc/serve/service.py"))


def test_cli_scripts_and_tests_are_exempt():
    src = "def main():\n    print('model saved')\n"
    for path in (
        Path("src/m3d_fault_loc/cli/train.py"),
        Path("src/m3d_fault_loc/obs/cli.py"),
        Path("scripts/serve_smoke.py"),
        Path("tests/test_something.py"),
    ):
        assert "M3D207" not in fired(src, path), path


def test_library_sources_pass_the_output_rule():
    src_root = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc"
    for source_file in sorted(src_root.rglob("*.py")):
        violations = lint_source(source_file.read_text(), source_file)
        assert not [v for v in violations if v.rule_id == "M3D207"], source_file


# -- M3D208 scipy.sparse block-diagonal construction -----------------------


def test_sparse_block_diag_call_warns_in_library_code():
    src = (
        "import scipy.sparse as sp\n"
        "def pack(ops):\n"
        "    return sp.block_diag(ops, format='csr')\n"
    )
    (finding,) = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D208"]
    assert finding.severity is Severity.WARNING
    assert "AggregationOperatorCache" in finding.message


def test_sparse_block_diag_inside_serve_is_error():
    src = (
        "import scipy.sparse\n"
        "def batch(ops):\n"
        "    return scipy.sparse.block_diag(ops)\n"
    )
    serve_path = Path("src/m3d_fault_loc/serve/batcher.py")
    (finding,) = [v for v in lint_source(src, serve_path) if v.rule_id == "M3D208"]
    assert finding.severity is Severity.ERROR


def test_block_diag_imported_from_scipy_sparse_flagged():
    plain = (
        "from scipy.sparse import block_diag\n"
        "def pack(ops):\n"
        "    return block_diag(ops)\n"
    )
    aliased = (
        "from scipy.sparse import block_diag as bd\n"
        "def pack(ops):\n"
        "    return bd(ops)\n"
    )
    assert "M3D208" in fired(plain)
    assert "M3D208" in fired(aliased)


def test_unrelated_block_diag_helpers_not_flagged():
    own_helper = (
        "def block_diag(ops):\n"
        "    return ops\n"
        "def pack(ops):\n"
        "    return block_diag(ops)\n"
    )
    foreign_module = (
        "from mylinalg import tools\n"
        "def pack(ops):\n"
        "    return tools.block_diag(ops)\n"
    )
    assert "M3D208" not in fired(own_helper)
    assert "M3D208" not in fired(foreign_module)


def test_bench_baseline_suppression_keeps_own_sources_clean():
    src_root = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc"
    for source_file in sorted(src_root.rglob("*.py")):
        violations = lint_source(source_file.read_text(), source_file)
        assert not [v for v in violations if v.rule_id == "M3D208"], source_file


# -- M3D209 scenario RNG discipline ----------------------------------------


def test_global_stream_draw_warns_outside_generators():
    src = (
        "import numpy as np\n"
        "def jitter(x):\n"
        "    return x + np.random.uniform(0.0, 1.0)\n"
    )
    (finding,) = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D209"]
    assert finding.severity is Severity.WARNING
    assert "ScenarioSpec.rng()" in finding.message


def test_global_stream_draw_is_error_inside_scenarios_and_data():
    src = (
        "import numpy as np\n"
        "def generate(spec):\n"
        "    return np.random.normal(size=3)\n"
    )
    for tree in ("scenarios", "data"):
        strict_path = Path(f"src/m3d_fault_loc/{tree}/gen.py")
        (finding,) = [v for v in lint_source(src, strict_path) if v.rule_id == "M3D209"]
        assert finding.severity is Severity.ERROR, tree


def test_unseeded_default_rng_flagged_seeded_clean():
    unseeded = (
        "import numpy as np\n"
        "def generate():\n"
        "    return np.random.default_rng().uniform()\n"
    )
    unseeded_import = (
        "from numpy.random import default_rng\n"
        "def generate():\n"
        "    return default_rng().uniform()\n"
    )
    seeded = (
        "import numpy as np\n"
        "def generate(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return rng.uniform(0.0, 1.0)\n"
    )
    assert "M3D209" in fired(unseeded)
    assert "M3D209" in fired(unseeded_import)
    assert "M3D209" not in fired(seeded)


def test_threaded_generator_draws_are_clean():
    src = (
        "def generate(spec):\n"
        "    rng = spec.rng()\n"
        "    return rng.binomial(16, rng.uniform(0.2, 0.9))\n"
    )
    assert "M3D209" not in fired(src, Path("src/m3d_fault_loc/scenarios/gen.py"))


def test_np_random_seed_is_m3d203s_finding_not_m3d209s():
    src = "import numpy as np\nnp.random.seed(0)\n"
    rule_ids = fired(src)
    assert "M3D203" in rule_ids
    findings = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D209"]
    assert findings == []


def test_blessed_seed_module_exempt_from_m3d209():
    src = (
        "import numpy as np\n"
        "def seed_everything(seed):\n"
        "    np.random.seed(seed)\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert "M3D209" not in fired(src, Path("src/m3d_fault_loc/utils/seed.py"))


def test_scenario_and_data_sources_pass_rng_discipline():
    src_root = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc"
    for tree in ("scenarios", "data"):
        for source_file in sorted((src_root / tree).rglob("*.py")):
            violations = lint_source(source_file.read_text(), source_file)
            assert not [v for v in violations if v.rule_id == "M3D209"], source_file


# -- M3D210 client timeouts -------------------------------------------------


def test_http_connection_without_timeout_warns():
    src = (
        "import http.client\n"
        "conn = http.client.HTTPConnection('replica')\n"
    )
    (finding,) = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D210"]
    assert finding.severity is Severity.WARNING
    assert "timeout" in finding.message


def test_http_connection_without_timeout_inside_serve_is_error():
    src = (
        "import http.client\n"
        "conn = http.client.HTTPConnection('replica', 8361)\n"
    )
    serve_path = Path("src/m3d_fault_loc/serve/router.py")
    (finding,) = [v for v in lint_source(src, serve_path) if v.rule_id == "M3D210"]
    assert finding.severity is Severity.ERROR


def test_timeout_kwarg_and_positional_slot_are_clean():
    src = (
        "import http.client\n"
        "import socket\n"
        "import urllib.request\n"
        "a = http.client.HTTPConnection('h', 80, timeout=5.0)\n"
        "b = http.client.HTTPConnection('h', 80, 5.0)\n"
        "c = socket.create_connection(('h', 80), 5.0)\n"
        "d = socket.create_connection(('h', 80), timeout=5.0)\n"
        "e = urllib.request.urlopen('http://h', None, 5.0)\n"
        "f = urllib.request.urlopen('http://h', timeout=5.0)\n"
    )
    assert "M3D210" not in fired(src)


def test_aliased_imports_still_flagged():
    src = (
        "import http.client as hc\n"
        "from socket import create_connection as cc\n"
        "from http.client import HTTPSConnection\n"
        "a = hc.HTTPConnection('h')\n"
        "b = cc(('h', 80))\n"
        "c = HTTPSConnection('h')\n"
    )
    findings = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D210"]
    assert len(findings) == 3


def test_kwargs_splat_assumed_to_carry_timeout():
    src = (
        "import socket\n"
        "def dial(addr, **opts):\n"
        "    return socket.create_connection(addr, **opts)\n"
    )
    assert "M3D210" not in fired(src)


def test_unrelated_callables_not_flagged():
    src = (
        "class HTTPConnection:\n"
        "    pass\n"
        "conn = HTTPConnection()\n"
        "mine = some.other.create_connection('x')\n"
    )
    assert "M3D210" not in fired(src)


def test_serve_sources_pass_the_client_timeout_rule():
    src_root = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc"
    for source_file in sorted((src_root / "serve").rglob("*.py")):
        violations = lint_source(source_file.read_text(), source_file)
        assert not [v for v in violations if v.rule_id == "M3D210"], source_file


# -- M3D211 wall-clock duration measurement ---------------------------------


def test_time_time_subtraction_of_tainted_names_flagged():
    src = (
        "import time\n"
        "def work():\n"
        "    t0 = time.time()\n"
        "    do_work()\n"
        "    t1 = time.time()\n"
        "    return t1 - t0\n"
    )
    (finding,) = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D211"]
    assert finding.severity is Severity.WARNING
    assert "time.monotonic() or time.perf_counter()" in finding.message


def test_direct_time_time_call_minus_start_flagged():
    src = (
        "import time\n"
        "def work(started):\n"
        "    return time.time() - started\n"
    )
    assert "M3D211" in fired(src)


def test_timestamp_cutoff_arithmetic_not_flagged():
    src = (
        "import time\n"
        "def cutoff():\n"
        "    return time.time() - 3600\n"
        "def age_vs_epoch(record):\n"
        "    return record['ts'] - 300\n"
    )
    assert "M3D211" not in fired(src)


def test_bare_timestamps_and_unrelated_subtraction_not_flagged():
    src = (
        "import time\n"
        "def stamp(row):\n"
        "    row['ts'] = time.time()\n"
        "    return row\n"
        "def spread(a, b):\n"
        "    return a - b\n"
    )
    assert "M3D211" not in fired(src)


def test_monotonic_and_perf_counter_durations_clean():
    src = (
        "import time\n"
        "def work():\n"
        "    t0 = time.monotonic()\n"
        "    p0 = time.perf_counter()\n"
        "    do_work()\n"
        "    return time.monotonic() - t0, time.perf_counter() - p0\n"
    )
    assert "M3D211" not in fired(src)


def test_aliased_time_imports_still_flagged():
    module_alias = (
        "import time as t\n"
        "def work():\n"
        "    start = t.time()\n"
        "    return t.time() - start\n"
    )
    name_alias = (
        "from time import time as now\n"
        "def work():\n"
        "    start = now()\n"
        "    return now() - start\n"
    )
    assert "M3D211" in fired(module_alias)
    assert "M3D211" in fired(name_alias)


def test_wallclock_duration_is_error_inside_serve_and_obs():
    src = (
        "import time\n"
        "def lat():\n"
        "    t0 = time.time()\n"
        "    handle()\n"
        "    return time.time() - t0\n"
    )
    for tree in ("serve", "obs"):
        strict_path = Path(f"src/m3d_fault_loc/{tree}/mod.py")
        (finding,) = [v for v in lint_source(src, strict_path) if v.rule_id == "M3D211"]
        assert finding.severity is Severity.ERROR, tree
    (finding,) = [v for v in lint_source(src, FAKE) if v.rule_id == "M3D211"]
    assert finding.severity is Severity.WARNING


def test_wallclock_duration_suppression_pragma():
    src = (
        "import time\n"
        "def legacy():\n"
        "    t0 = time.time()\n"
        "    return time.time() - t0  # m3dlint: disable=M3D211 reason=legacy API\n"
    )
    assert "M3D211" not in fired(src)


def test_serve_and_obs_sources_pass_the_wallclock_rule():
    src_root = Path(__file__).resolve().parents[1] / "src" / "m3d_fault_loc"
    for tree in ("serve", "obs"):
        for source_file in sorted((src_root / tree).rglob("*.py")):
            violations = lint_source(source_file.read_text(), source_file)
            assert not [v for v in violations if v.rule_id == "M3D211"], source_file

"""Chaos suite: deterministic fault injection against the serving stack.

Every acceptance behavior of the resilience layer is driven by a shim from
``m3d_fault_loc.testing.chaos`` — never by sleeping and hoping:

- a request past its deadline gets a structured failure (HTTP 504) without
  blocking the worker, and expired queue entries are dropped unscored;
- a full admission queue sheds with 429 + ``Retry-After`` and a counter;
- a killed batch worker fails queued futures fast, flips ``/healthz`` to
  ``degraded``, restarts, and serves again (recovery back to ``ok``);
- consecutive batch failures trip the circuit breaker; a half-open probe
  closes it once the model recovers;
- a corrupt artifact is quarantined and can never become ACTIVE; a corrupt
  hot-reload target keeps the old model serving;
- draining completes queued work within its deadline, fails leftovers
  deterministically, and SIGTERM drives the whole sequence end-to-end.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry, ModelRegistryError
from m3d_fault_loc.serve.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    ExponentialBackoff,
    LoadSheddedError,
    ServiceDrainingError,
    WorkerCrashedError,
)
from m3d_fault_loc.serve.server import create_server
from m3d_fault_loc.serve.service import LocalizationService
from m3d_fault_loc.testing.chaos import (
    CrashOnNthBatchModel,
    FlakyIO,
    SlowBatchModel,
    corrupt_artifact,
)


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(7)
    return synthesize_fault_dataset(rng, n_graphs=8, n_gates=12, n_inputs=3)


def base_model():
    return DelayFaultLocalizer(hidden=8, seed=2)


def make_service(model, **kwargs):
    kwargs.setdefault("batch_window_s", 0.001)
    kwargs.setdefault("watchdog_interval_s", 0.03)
    kwargs.setdefault(
        "restart_backoff", ExponentialBackoff(base_s=0.01, factor=2.0, max_s=0.05)
    )
    kwargs.setdefault("drain_deadline_s", 2.0)
    return LocalizationService(model=model, **kwargs)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def localize_in_thread(service, graph, results, key, **kwargs):
    def call():
        try:
            results[key] = service.localize(graph, **kwargs)
        except Exception as exc:  # captured for assertions
            results[key] = exc

    t = threading.Thread(target=call, daemon=True)
    t.start()
    return t


# -- deadlines -------------------------------------------------------------


def test_deadline_exceeded_is_structured_and_fast(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.4, slow_calls=1)
    with make_service(model) as service:
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError) as exc_info:
            service.localize(graphs[0], timeout_s=0.05)
        elapsed = time.monotonic() - started
        assert elapsed < 0.35, "caller must get the 504 before the slow batch finishes"
        assert exc_info.value.deadline_s == 0.05
        assert service.m_deadline.value == 1
        # The worker is not wedged: once the slow pass ends, service resumes.
        result = service.localize(graphs[1], timeout_s=5.0)
        assert result.num_nodes == graphs[1].num_nodes


def test_expired_queue_entries_are_dropped_without_a_forward_pass(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.25, slow_calls=1)
    results: dict[str, object] = {}
    with make_service(model) as service:
        t_a = localize_in_thread(service, graphs[0], results, "a", timeout_s=5.0)
        assert wait_until(lambda: model.batch_calls >= 1), "first request must reach the model"
        t_b = localize_in_thread(service, graphs[1], results, "b", timeout_s=0.05)
        t_a.join(timeout=5)
        t_b.join(timeout=5)
        assert wait_until(lambda: service._queue.qsize() == 0)
        time.sleep(0.1)  # give the worker a chance to (wrongly) score graph b
        assert isinstance(results["b"], DeadlineExceededError)
        assert not isinstance(results["a"], Exception)
        assert model.batch_calls == 1, "the expired request must never be scored"


def test_http_deadline_maps_to_504(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.4, slow_calls=1)
    service = make_service(model)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        body = json.dumps({"graph": graphs[0].to_json_dict(), "deadline_ms": 40})
        conn.request("POST", "/localize", body=body)
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 504
        assert payload["error"] == "deadline_exceeded"
        assert payload["deadline_ms"] == 40

        # A non-positive deadline is rejected up front with a 400.
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        body = json.dumps({"graph": graphs[0].to_json_dict(), "deadline_ms": -5})
        conn.request("POST", "/localize", body=body)
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "deadline_ms" in payload["detail"]
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


# -- load shedding ---------------------------------------------------------


def test_full_queue_sheds_with_429_and_counter(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.3, slow_calls=2)
    results: dict[str, object] = {}
    service = make_service(model, max_queue=1, max_batch=1)
    with service:
        t_a = localize_in_thread(service, graphs[0], results, "a", timeout_s=5.0)
        assert wait_until(lambda: model.batch_calls >= 1), "worker must be busy"
        t_b = localize_in_thread(service, graphs[1], results, "b", timeout_s=5.0)
        assert wait_until(lambda: service._queue.qsize() == 1), "queue must be full"
        with pytest.raises(LoadSheddedError) as exc_info:
            service.localize(graphs[2], timeout_s=5.0)
        assert exc_info.value.queue_limit == 1
        assert service.m_shed.value == 1
        t_a.join(timeout=5)
        t_b.join(timeout=5)
        assert not isinstance(results["a"], Exception)
        assert not isinstance(results["b"], Exception)


def test_http_shed_maps_to_429_with_retry_after(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.4, slow_calls=2)
    service = make_service(model, max_queue=1, max_batch=1)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        results: dict[str, object] = {}
        localize_in_thread(service, graphs[0], results, "a", timeout_s=5.0)
        assert wait_until(lambda: model.batch_calls >= 1)
        localize_in_thread(service, graphs[1], results, "b", timeout_s=5.0)
        assert wait_until(lambda: service._queue.qsize() == 1)
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/localize", body=json.dumps({"graph": graphs[2].to_json_dict()}))
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 429
        assert payload["error"] == "load_shed"
        assert int(response.getheader("Retry-After")) >= 1
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


# -- worker supervision ----------------------------------------------------


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_worker_kill_fails_futures_degrades_health_and_recovers(graphs):
    # Slow-then-kill: the worker sleeps 0.15s mid-batch, then dies hard,
    # stranding one in-flight and one queued request for the watchdog.
    model = SlowBatchModel(
        CrashOnNthBatchModel(base_model(), crash_on=1, crash_count=1, kill_worker=True),
        delay_s=0.15,
        slow_calls=1,
    )
    results: dict[str, object] = {}
    with make_service(model) as service:
        t_a = localize_in_thread(service, graphs[0], results, "a", timeout_s=10.0)
        assert wait_until(lambda: model.batch_calls >= 1), "first request must be in flight"
        started = time.monotonic()
        t_b = localize_in_thread(service, graphs[1], results, "b", timeout_s=10.0)
        t_a.join(timeout=5)
        t_b.join(timeout=5)
        elapsed = time.monotonic() - started
        assert isinstance(results["a"], WorkerCrashedError)
        assert isinstance(results["b"], WorkerCrashedError)
        assert elapsed < 5.0, "stranded futures must fail fast, not wait out their deadline"
        assert service.m_worker_restarts.value >= 1
        assert wait_until(lambda: service.health_snapshot()["status"] == "degraded")

        # The restarted worker serves subsequent requests and health recovers.
        result = service.localize(graphs[2], timeout_s=5.0)
        assert result.num_nodes == graphs[2].num_nodes
        assert service.health_snapshot()["status"] == "ok"
        assert service.metrics.to_json_dict()["m3d_health_state"]["state"] == "ok"


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_healthz_reflects_degraded_and_recovery_over_http(graphs):
    model = CrashOnNthBatchModel(base_model(), crash_on=1, crash_count=1, kill_worker=True)
    service = make_service(model)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def get_health():
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        return response.status, payload

    try:
        status, health = get_health()
        assert status == 200 and health["status"] == "ok"
        with pytest.raises(WorkerCrashedError):
            service.localize(graphs[0], timeout_s=10.0)
        status, health = get_health()
        assert status == 200, "degraded still serves (reduced capacity, not dead)"
        assert health["status"] == "degraded"
        assert health["worker"]["worker_restarts"] >= 1
        # Recovery: the restarted worker scores a graph, health flips back.
        assert wait_until(
            lambda: not isinstance(
                service_try(service, graphs[1]), Exception
            )
        )
        status, health = get_health()
        assert status == 200 and health["status"] == "ok"
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def service_try(service, graph):
    try:
        return service.localize(graph, timeout_s=2.0)
    except Exception as exc:
        return exc


def test_stalled_worker_is_superseded(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.6, slow_calls=1)
    results: dict[str, object] = {}
    with make_service(model, stall_timeout_s=0.1) as service:
        started = time.monotonic()
        t_a = localize_in_thread(service, graphs[0], results, "a", timeout_s=10.0)
        t_a.join(timeout=5)
        elapsed = time.monotonic() - started
        assert isinstance(results["a"], WorkerCrashedError)
        assert elapsed < 0.55, "stall detection must beat the wedged batch"
        assert service.m_worker_restarts.value >= 1
        # Replacement worker picks up new requests once the old batch drains.
        assert wait_until(
            lambda: not isinstance(service_try(service, graphs[1]), Exception), timeout=5.0
        )


# -- circuit breaker -------------------------------------------------------


def test_breaker_trips_sheds_then_probes_closed(graphs):
    model = CrashOnNthBatchModel(base_model(), crash_on=1, crash_count=2)
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.15)
    with make_service(model, breaker=breaker) as service:
        for i in range(2):
            with pytest.raises(RuntimeError, match="injected batch failure"):
                service.localize(graphs[i], timeout_s=5.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert service.m_breaker_trips.value == 1
        assert service.metrics.to_json_dict()["m3d_breaker_state"]["state"] == "open"

        with pytest.raises(CircuitOpenError):
            service.localize(graphs[2], timeout_s=5.0)
        assert service.m_breaker_rejections.value == 1
        assert model.batch_calls == 2, "an open breaker must not reach the model"

        time.sleep(0.2)  # reset timeout elapses -> half-open probe allowed
        result = service.localize(graphs[3], timeout_s=5.0)
        assert result.num_nodes == graphs[3].num_nodes
        assert breaker.state == CircuitBreaker.CLOSED
        assert service.metrics.to_json_dict()["m3d_breaker_state"]["state"] == "closed"


# -- registry: quarantine + retry ------------------------------------------


def test_corrupt_artifact_is_quarantined_and_never_activated(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    v1 = registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    v2 = registry.publish(DelayFaultLocalizer(hidden=4, seed=1), activate=False)
    corrupt_artifact(registry, v2.name, v2.version)

    with pytest.raises(ModelRegistryError, match="checksum mismatch"):
        registry.activate(v2.name, v2.version)

    assert registry.active_ref() == (v1.name, v1.version), "ACTIVE pointer unchanged"
    assert registry.list_versions(v2.name) == [v1.version], "corrupt version removed"
    assert registry.list_quarantined() == [(v2.name, v2.version)]
    assert (tmp_path / "registry" / "quarantine" / v2.name / v2.version).is_dir()
    # The quarantined version cannot be re-activated: it no longer exists.
    with pytest.raises(ModelRegistryError, match="no such model version"):
        registry.activate(v2.name, v2.version)


def test_corrupt_hot_reload_target_keeps_old_model_serving(tmp_path, graphs):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(DelayFaultLocalizer(hidden=8, seed=0))
    with LocalizationService(
        registry=registry, batch_window_s=0.001, watchdog_interval_s=0.03
    ) as service:
        assert service.localize(graphs[0]).model_version == "v0001"

        v2 = registry.publish(DelayFaultLocalizer(hidden=8, seed=9))  # activates v0002
        corrupt_artifact(registry, v2.name, v2.version)
        result = service.localize(graphs[1])
        assert result.model_version == "v0001", "corrupt reload target must be refused"
        assert service.m_reload_failures.value >= 1
        assert registry.list_quarantined() == [(v2.name, v2.version)]

        failures_after = service.m_reload_failures.value
        service.localize(graphs[2])
        assert service.m_reload_failures.value == failures_after, (
            "a failed ref is not re-tried until the pointer moves"
        )

        # Explicit version: the quarantined v0002 left models/, so auto
        # numbering would reuse its name — which the failed-ref memo ignores.
        registry.publish(DelayFaultLocalizer(hidden=8, seed=42), version="v0003")
        assert service.localize(graphs[3]).model_version == "v0003"


def test_registry_retries_transient_io(tmp_path):
    registry = ModelRegistry(tmp_path / "registry", io_attempts=3, io_backoff_s=0.001)
    registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    flaky = FlakyIO(failures=2)
    registry.io_fault_hook = flaky
    model, manifest = registry.load_active()
    assert manifest.version == "v0001" and model.hidden == 4
    assert flaky.calls >= 3, "the first two attempts must have failed and been retried"


def test_registry_gives_up_after_persistent_io_failures(tmp_path):
    registry = ModelRegistry(tmp_path / "registry", io_attempts=2, io_backoff_s=0.001)
    registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    registry.io_fault_hook = FlakyIO(failures=100)
    with pytest.raises(OSError, match="injected transient"):
        registry.load_active()


# -- graceful drain --------------------------------------------------------


def test_drain_completes_queued_work_and_stops_admission(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.05)
    results: dict[str, object] = {}
    service = make_service(model, max_batch=1)
    service.start()
    threads = [
        localize_in_thread(service, graphs[i], results, f"r{i}", timeout_s=10.0)
        for i in range(3)
    ]
    assert wait_until(lambda: service.m_requests.value >= 3), "all three must be admitted"
    service.begin_drain()
    with pytest.raises(ServiceDrainingError):
        service.localize(graphs[3])
    stats = service.await_drain(5.0)
    for t in threads:
        t.join(timeout=5)
    completed = [r for r in results.values() if not isinstance(r, Exception)]
    failed = [r for r in results.values() if isinstance(r, ServiceDrainingError)]
    assert len(completed) + len(failed) == 3, "every request resolves: completed or drained"
    assert stats["failed"] == len(failed)
    service.close()


def test_drain_deadline_fails_leftovers_deterministically(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.4)
    results: dict[str, object] = {}
    service = make_service(model, max_batch=1)
    with service:
        t_a = localize_in_thread(service, graphs[0], results, "a", timeout_s=10.0)
        assert wait_until(lambda: model.batch_calls >= 1)
        t_b = localize_in_thread(service, graphs[1], results, "b", timeout_s=10.0)
        assert wait_until(lambda: service._queue.qsize() == 1)
        stats = service.drain(0.05)
        assert stats["failed"] >= 1
        assert service.m_drain_failed.value >= 1
        t_a.join(timeout=5)
        t_b.join(timeout=5)
        assert isinstance(results["b"], ServiceDrainingError), (
            "the queued leftover fails with a structured drain error"
        )


def test_healthz_reports_draining(graphs):
    service = make_service(base_model())
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        service.begin_drain()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 503
        assert payload["status"] == "draining"
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


# -- SIGTERM end-to-end ----------------------------------------------------


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals required")
def test_sigterm_drains_and_exits_zero(tmp_path, graphs):
    artifact = DelayFaultLocalizer(hidden=8, seed=3).save(tmp_path / "model.npz")
    src_dir = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src_dir}{os.pathsep}{env.get('PYTHONPATH', '')}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "m3d_fault_loc.cli.serve",
            "--model", str(artifact), "--port", "0",
            "--batch-window-ms", "1", "--drain-deadline-s", "5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        port = None
        assert proc.stdout is not None
        for _ in range(20):
            line = proc.stdout.readline()
            if not line:
                break
            if line.startswith("serving on http://"):
                port = int(line.rsplit(":", 1)[1])
                break
        assert port is not None, "server must print its ephemeral port"

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("POST", "/localize", body=json.dumps({"graph": graphs[0].to_json_dict()}))
        assert conn.getresponse().status == 200
        conn.close()

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=15)
        assert rc == 0, "graceful shutdown must exit 0"
        tail = proc.stdout.read()
        assert "draining" in tail and "drained; exiting" in tail

        with pytest.raises(OSError):
            check = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
            check.request("GET", "/healthz")
            check.getresponse()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=5)


# -- request-body bounds ---------------------------------------------------


def test_oversized_body_gets_structured_413(graphs):
    service = make_service(base_model())
    server = create_server(service, host="127.0.0.1", port=0, max_body_bytes=512)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        big = json.dumps({"graph": graphs[0].to_json_dict()})
        assert len(big) > 512
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/localize", body=big)
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()  # body was never read; the connection cannot be reused
        assert response.status == 413
        assert payload["error"] == "payload_too_large"
        assert payload["limit_bytes"] == 512

        # An unreadable graph under the limit is a 400, not a hang.
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/localize", body=json.dumps({"graph": {"tiny": 1}}))
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"] == "bad_request"
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)

"""End-to-end HTTP API test: the full acceptance scenario over a live socket.

Boots the real server (ephemeral port, in-process thread), then: a valid
localization, the same graph again (cache hit, no second forward pass), a
contract-violating graph (structured 422 citing an M3D1xx rule), and a
metrics read showing non-zero latency/batch observations.
"""

import http.client
import json
import threading

import numpy as np
import pytest

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.server import create_server
from m3d_fault_loc.serve.service import LocalizationService


@pytest.fixture()
def live_server():
    service = LocalizationService(
        model=DelayFaultLocalizer(hidden=8, seed=4), batch_window_s=0.001
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        if "json" in (response.getheader("Content-Type") or ""):
            return response.status, json.loads(raw)
        return response.status, raw.decode()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(9)
    return synthesize_fault_dataset(rng, n_graphs=1, n_gates=12, n_inputs=3)[0]


def test_end_to_end_localize_cache_reject_metrics(live_server, graph):
    payload = {"graph": graph.to_json_dict(), "top_k": 3}

    status, health = request(live_server, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"

    # 1) valid graph: top-k localization with latency recorded
    status, first = request(live_server, "POST", "/localize", payload)
    assert status == 200
    assert len(first["top"]) == 3
    assert first["cached"] is False
    assert first["latency_ms"] > 0
    assert first["model"]["name"] == "adhoc"

    # 2) same graph again: served from cache, no second forward pass
    status, second = request(live_server, "POST", "/localize", payload)
    assert status == 200
    assert second["cached"] is True
    assert second["top"] == first["top"]
    service = live_server.service
    assert service.m_cache_hits.value == 1
    assert service.m_forward_passes.value == 1

    # 3) contract-violating graph: structured 422 citing the M3D1xx rule
    bad = graph.to_json_dict()
    bad["x"]["dtype"] = "float64"
    status, rejection = request(live_server, "POST", "/localize", {"graph": bad})
    assert status == 422
    assert rejection["error"] == "contract_violation"
    assert any(v["rule_id"] == "M3D106" for v in rejection["violations"])

    # 4) metrics: non-zero latency/batch observations in both formats
    status, metrics = request(live_server, "GET", "/metrics?format=json")
    assert status == 200
    assert metrics["m3d_requests_total"]["value"] == 3
    assert metrics["m3d_contract_rejections_total"]["value"] == 1
    assert metrics["m3d_request_latency_seconds"]["count"] == 2
    assert metrics["m3d_request_latency_seconds"]["sum"] > 0
    assert metrics["m3d_batch_size"]["count"] == 1

    status, prom = request(live_server, "GET", "/metrics")
    assert status == 200
    assert "m3d_requests_total 3" in prom
    assert "m3d_request_latency_seconds_count 2" in prom


def test_model_endpoint_reports_identity_and_cache(live_server, graph):
    request(live_server, "POST", "/localize", {"graph": graph.to_json_dict()})
    status, payload = request(live_server, "GET", "/model")
    assert status == 200
    assert payload["model"]["source"] == "adhoc"
    assert payload["model"]["sha256"]
    assert payload["cache"]["size"] == 1


def test_malformed_payloads_get_400(live_server):
    status, body = request(live_server, "POST", "/localize", {"nope": 1})
    assert status == 400 and body["error"] == "bad_request"

    status, body = request(live_server, "POST", "/localize", {"graph": {"broken": True}})
    assert status == 400 and "unreadable graph payload" in body["detail"]

    conn = http.client.HTTPConnection("127.0.0.1", live_server.port, timeout=10)
    try:
        conn.request("POST", "/localize", body="{not json")
        response = conn.getresponse()
        assert response.status == 400
        assert json.loads(response.read())["error"] == "bad_request"
    finally:
        conn.close()


def test_unknown_routes_get_404(live_server):
    assert request(live_server, "GET", "/nope")[0] == 404
    assert request(live_server, "POST", "/nope")[0] == 404

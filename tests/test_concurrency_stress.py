"""Concurrency stress: hammer the serving stack under the racecheck fixture.

The ``racecheck_guard`` autouse fixture in ``conftest.py`` instruments every
lock the service creates; this module's job is to generate the nastiest
realistic interleaving — concurrent ``localize`` callers, registry
hot-reloads racing them, and a watchdog-driven worker restart in the middle
— and then assert the run produced

- zero lock-order inversions (fixture fails the test otherwise),
- zero foreign releases (fixture),
- no lock held longer than 250 ms (asserted here, explicitly),
- a resolved outcome for every request (result or structured error).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry
from m3d_fault_loc.serve.resilience import ExponentialBackoff, ResilienceError
from m3d_fault_loc.serve.service import LocalizationService
from m3d_fault_loc.testing.chaos import CrashOnNthBatchModel

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 12
N_RELOADS = 3


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(11)
    return synthesize_fault_dataset(rng, n_graphs=6, n_gates=10, n_inputs=3)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_localize_reload_restart_storm_is_race_free(tmp_path, graphs, racecheck_guard):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(DelayFaultLocalizer(hidden=8, seed=0))

    service = LocalizationService(
        registry=registry,
        batch_window_s=0.001,
        watchdog_interval_s=0.03,
        restart_backoff=ExponentialBackoff(base_s=0.01, factor=2.0, max_s=0.05),
        drain_deadline_s=2.0,
    )
    outcomes: dict[str, object] = {}

    def client(idx: int) -> None:
        for req in range(REQUESTS_PER_CLIENT):
            key = f"c{idx}-r{req}"
            try:
                outcomes[key] = service.localize(
                    graphs[(idx + req) % len(graphs)], timeout_s=10.0
                )
            except ResilienceError as exc:
                outcomes[key] = exc

    with service:
        # Kill the worker mid-storm: wrap the live model so the second
        # batch dies hard and the watchdog must restart the worker while
        # clients are queued. The (model, info, prefix) tuple swap is the
        # service's own lock-free hot-reload idiom.
        model, info, prefix = service._model_state
        service._model_state = (
            CrashOnNthBatchModel(model, crash_on=2, crash_count=1, kill_worker=True),
            info,
            prefix,
        )

        clients = [
            threading.Thread(target=client, args=(i,), daemon=True, name=f"client-{i}")
            for i in range(N_CLIENTS)
        ]
        for t in clients:
            t.start()

        assert wait_until(lambda: service.m_worker_restarts.value >= 1), (
            "the storm must include a watchdog-driven worker restart"
        )

        # Now race hot reloads against the surviving clients.
        for seed in range(1, N_RELOADS + 1):
            registry.publish(DelayFaultLocalizer(hidden=8, seed=seed))
            time.sleep(0.02)

        for t in clients:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in clients), "clients must not wedge"

        assert service.m_reloads.value >= 1, "the storm must include a hot reload"
    # service closed: every lock the stack took has been released.

    assert len(outcomes) == N_CLIENTS * REQUESTS_PER_CLIENT
    for key, outcome in outcomes.items():
        assert isinstance(outcome, ResilienceError) or hasattr(outcome, "num_nodes"), (
            f"request {key} ended with a non-structured outcome: {outcome!r}"
        )
    served = sum(1 for o in outcomes.values() if hasattr(o, "num_nodes"))
    assert served > 0, "the storm must include successfully served requests"

    report = racecheck_guard.report()
    assert report.acquisitions > 0, "the sanitizer must actually have observed the run"
    long_holds = [h.describe() for h in report.long_holds]
    assert not long_holds, f"locks held past 250 ms: {long_holds}"
    # inversions / foreign releases are asserted by the racecheck_guard
    # fixture at teardown — reaching this line with a healthy report means
    # the serve stack's lock hierarchy held up under the storm.

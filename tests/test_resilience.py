"""Unit tests for the resilience primitives: deadlines, breaker, health,
backoff/retry, and the state-gauge metric they report through."""

import time

import pytest

from m3d_fault_loc.serve.metrics import MetricsRegistry, StateGauge
from m3d_fault_loc.serve.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    ExponentialBackoff,
    HealthMonitor,
    LoadSheddedError,
    retry_with_backoff,
)


# -- Deadline --------------------------------------------------------------


def test_deadline_counts_down_and_expires():
    deadline = Deadline.after(0.05)
    assert not deadline.expired()
    remaining = deadline.remaining()
    assert remaining is not None and 0 < remaining <= 0.05
    time.sleep(0.06)
    assert deadline.expired()
    assert deadline.remaining() < 0


def test_infinite_deadline_never_expires():
    deadline = Deadline.after(None)
    assert deadline.remaining() is None
    assert not deadline.expired()


def test_deadline_rejects_non_positive_budget():
    with pytest.raises(ValueError, match="positive"):
        Deadline.after(0)
    with pytest.raises(ValueError, match="positive"):
        Deadline.after(-1)


def test_structured_errors_carry_context():
    exc = DeadlineExceededError(2.5, where="batch queue")
    assert exc.deadline_s == 2.5 and "batch queue" in str(exc)
    shed = LoadSheddedError(128, retry_after_s=1.5)
    assert shed.queue_limit == 128 and shed.retry_after_s == 1.5


# -- CircuitBreaker --------------------------------------------------------


def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=60)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.retry_after_s() > 0


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_half_open_probe_then_close():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.05, half_open_probes=1)
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    time.sleep(0.06)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # one probe passes...
    assert not breaker.allow()  # ...the next caller is still refused
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_breaker_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.05)
    breaker.record_failure()
    time.sleep(0.06)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()


def test_breaker_transitions_are_observable():
    seen: list[tuple[str, str]] = []
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60)
    breaker.set_transition_listener(lambda old, new: seen.append((old, new)))
    breaker.record_failure()
    breaker.record_success()
    assert seen == [("closed", "open"), ("open", "closed")]
    assert breaker.snapshot()["trips"] == 1


# -- HealthMonitor ---------------------------------------------------------


def test_health_degrades_then_goes_unhealthy_then_recovers():
    health = HealthMonitor(unhealthy_after=2)
    assert health.status == HealthMonitor.OK
    health.record_worker_failure("worker died")
    assert health.status == HealthMonitor.DEGRADED
    health.record_worker_failure("worker died again")
    assert health.status == HealthMonitor.UNHEALTHY
    health.record_success()
    assert health.status == HealthMonitor.OK
    snap = health.snapshot()
    assert snap["worker_restarts"] == 2
    assert snap["consecutive_worker_failures"] == 0
    assert "again" in snap["last_failure"]


# -- backoff + retry -------------------------------------------------------


def test_exponential_backoff_schedule_is_capped():
    backoff = ExponentialBackoff(base_s=0.1, factor=2.0, max_s=0.5)
    assert list(backoff.delays(5)) == [0.1, 0.2, 0.4, 0.5, 0.5]
    backoff.reset()
    assert backoff.next_delay() == 0.1


def test_retry_with_backoff_recovers_from_transient_failures():
    calls = {"n": 0}
    sleeps: list[float] = []

    def flaky() -> str:
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return "ok"

    assert retry_with_backoff(flaky, attempts=3, sleep=sleeps.append) == "ok"
    assert calls["n"] == 3 and len(sleeps) == 2


def test_retry_with_backoff_gives_up_and_propagates():
    def always_fails() -> None:
        raise OSError("permanent")

    with pytest.raises(OSError, match="permanent"):
        retry_with_backoff(always_fails, attempts=2, sleep=lambda _s: None)


def test_retry_with_backoff_does_not_catch_unrelated_errors():
    calls = {"n": 0}

    def typeerror() -> None:
        calls["n"] += 1
        raise TypeError("not transient")

    with pytest.raises(TypeError):
        retry_with_backoff(typeerror, attempts=5, sleep=lambda _s: None)
    assert calls["n"] == 1


# -- StateGauge ------------------------------------------------------------


def test_state_gauge_is_one_hot_in_prometheus_output():
    m = MetricsRegistry()
    gauge = m.state_gauge("m3d_test_state", "a state", states=("ok", "degraded", "unhealthy"))
    gauge.set_state("degraded")
    text = m.render_prometheus()
    assert '# TYPE m3d_test_state gauge' in text
    assert 'm3d_test_state{state="degraded"} 1' in text
    assert 'm3d_test_state{state="ok"} 0' in text
    assert m.to_json_dict()["m3d_test_state"]["state"] == "degraded"


def test_state_gauge_rejects_unknown_states():
    gauge = StateGauge("s", "", states=("a", "b"))
    with pytest.raises(ValueError, match="unknown state"):
        gauge.set_state("c")

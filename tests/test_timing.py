"""Static timing analysis: arrival/required propagation and slack."""

import numpy as np
import pytest

from m3d_fault_loc.graph.netlist import Gate, Netlist
from m3d_fault_loc.graph.timing import compute_timing


def chain_netlist(delays, clock_period=None):
    netlist = Netlist(name="chain", num_tiers=1, wire_delay=0.0)
    netlist.add_gate(Gate(name="pi0", cell="PI", fanins=(), tier=0, delay=0.0))
    prev = "pi0"
    for i, d in enumerate(delays):
        netlist.add_gate(Gate(name=f"g{i}", cell="BUF", fanins=(prev,), tier=0, delay=d))
        prev = f"g{i}"
    netlist.primary_outputs = (prev,)
    if clock_period is not None:
        netlist.clock_period = clock_period
    return netlist


def test_arrival_accumulates_along_chain():
    timing = compute_timing(chain_netlist([1.0, 2.0, 3.0]))
    assert timing.arrival["g2"] == pytest.approx(6.0)
    assert timing.critical_path_delay == pytest.approx(6.0)


def test_slack_against_clock_period():
    timing = compute_timing(chain_netlist([1.0, 2.0, 3.0], clock_period=10.0))
    assert timing.slack["g2"] == pytest.approx(4.0)
    # Upstream gates carry the same path slack on a pure chain.
    assert timing.slack["g0"] == pytest.approx(4.0)


def test_default_period_gives_zero_worst_slack():
    timing = compute_timing(chain_netlist([1.0, 2.0]))
    assert min(timing.slack.values()) == pytest.approx(0.0)


def test_extra_delay_reduces_downstream_slack_only():
    nominal = compute_timing(chain_netlist([1.0, 1.0, 1.0], clock_period=10.0))
    faulty_nl = chain_netlist([1.0, 1.0, 1.0], clock_period=10.0).with_extra_delay("g1", 2.0)
    faulty = compute_timing(faulty_nl)
    # Fault at g1: slack at and below the fault degrades by the extra delay.
    assert nominal.slack["g1"] - faulty.slack["g1"] == pytest.approx(2.0)
    assert nominal.slack["g2"] - faulty.slack["g2"] == pytest.approx(2.0)
    # g0 drives the faulty path, so its required time also tightens.
    assert nominal.slack["g0"] - faulty.slack["g0"] == pytest.approx(2.0)


def test_miv_edges_add_wire_delay():
    netlist = Netlist(name="miv", num_tiers=2, wire_delay=0.0, miv_delay=0.5)
    netlist.add_gate(Gate(name="pi0", cell="PI", fanins=(), tier=0, delay=0.0))
    netlist.add_gate(Gate(name="g0", cell="BUF", fanins=("pi0",), tier=1, delay=1.0))
    netlist.primary_outputs = ("g0",)
    timing = compute_timing(netlist)
    assert timing.arrival["g0"] == pytest.approx(1.5)


def test_reconvergent_paths_take_max_arrival():
    netlist = Netlist(name="reconv", num_tiers=1, wire_delay=0.0)
    netlist.add_gate(Gate(name="pi0", cell="PI", fanins=(), tier=0, delay=0.0))
    netlist.add_gate(Gate(name="fast", cell="BUF", fanins=("pi0",), tier=0, delay=1.0))
    netlist.add_gate(Gate(name="slow", cell="BUF", fanins=("pi0",), tier=0, delay=4.0))
    netlist.add_gate(Gate(name="join", cell="AND2", fanins=("fast", "slow"), tier=0, delay=1.0))
    netlist.primary_outputs = ("join",)
    timing = compute_timing(netlist)
    assert timing.arrival["join"] == pytest.approx(5.0)
    # The fast side has positive slack; the slow side is critical.
    assert timing.slack["slow"] == pytest.approx(0.0)
    assert timing.slack["fast"] == pytest.approx(3.0)


def test_topological_order_rejects_cycles():
    netlist = Netlist(name="loop", num_tiers=1)
    netlist.add_gate(Gate(name="a", cell="INV", fanins=("b",), tier=0, delay=1.0))
    netlist.add_gate(Gate(name="b", cell="INV", fanins=("a",), tier=0, delay=1.0))
    with pytest.raises(ValueError, match="cycle"):
        netlist.topological_order()


def test_random_netlist_has_positive_nominal_slack():
    from m3d_fault_loc.data.synthetic import random_netlist

    rng = np.random.default_rng(5)
    netlist = random_netlist(rng, n_gates=30, n_inputs=5, slack_margin=1.2)
    timing = compute_timing(netlist)
    assert min(timing.slack.values()) > 0.0

"""m3d-bench harness: methodology, schema, CLI, and baseline fidelity.

The regression tripwire is only trustworthy if (a) the schema validator
rejects malformed files before ratios are computed, (b) ``compare`` exits
non-zero on a genuine slowdown (asserted here by injecting a synthetic
regression), and (c) the committed legacy baseline really computes the same
scores as the optimized path it is measured against.
"""

import copy
import json
from pathlib import Path

import numpy as np
import pytest

from m3d_fault_loc.bench.cases import CASES, BenchContext, legacy_node_scores_batch
from m3d_fault_loc.bench.cli import (
    EXIT_CLEAN,
    EXIT_REGRESSION,
    EXIT_USAGE,
    SPEEDUP_KEY,
    compare_payloads,
    main,
    next_bench_path,
    run_benchmarks,
)
from m3d_fault_loc.bench.harness import (
    BENCH_SCHEMA_VERSION,
    STAT_KEYS,
    machine_fingerprint,
    time_case,
    validate_payload,
)
from m3d_fault_loc.bench.workloads import WorkloadSpec, build_workload, repeat_batch

TINY = WorkloadSpec(name="tiny", n_graphs=4, n_gates=10, n_inputs=3)


# -- timing methodology -----------------------------------------------------


def test_time_case_stats_are_coherent():
    calls = []
    stats = time_case(lambda: calls.append(1), repeats=5, warmup=2)
    assert len(calls) == 7  # warmup runs happen but are not recorded
    assert set(STAT_KEYS) <= set(stats)
    assert stats["repeats"] == 5
    assert stats["min_s"] <= stats["median_s"] <= stats["max_s"]
    assert stats["min_s"] <= stats["trimmed_mean_s"] <= stats["max_s"]
    assert stats["p10_s"] <= stats["p90_s"]


def test_time_case_rejects_bad_arguments():
    with pytest.raises(ValueError, match="repeats"):
        time_case(lambda: None, repeats=0)
    with pytest.raises(ValueError, match="warmup"):
        time_case(lambda: None, warmup=-1)


def test_machine_fingerprint_names_the_stack():
    fp = machine_fingerprint()
    assert {"platform", "python", "numpy", "scipy", "cpu_count"} <= set(fp)


# -- workloads --------------------------------------------------------------


def test_workload_is_deterministic_across_builds():
    a, b = build_workload(TINY), build_workload(TINY)
    assert a.digests == b.digests  # byte-identical graphs both times
    assert len(a.graphs) == TINY.n_graphs


def test_repeat_batch_cycles_graphs_with_matching_digests():
    workload = build_workload(TINY)
    graphs, digests = repeat_batch(workload, batch_size=10)
    assert len(graphs) == len(digests) == 10
    for i, (graph, digest) in enumerate(zip(graphs, digests)):
        assert graph is workload.graphs[i % TINY.n_graphs]
        assert digest == workload.digests[i % TINY.n_graphs]


# -- baseline fidelity ------------------------------------------------------


def test_legacy_baseline_matches_optimized_batch_exactly():
    """The before/after headline is meaningless unless both paths compute
    identical scores; the optimization never traded accuracy for speed."""
    workload = build_workload(TINY)
    ctx = BenchContext(hidden=16)
    model = ctx.make_model()
    graphs, digests = repeat_batch(workload, batch_size=9)
    optimized = model.node_scores_batch(graphs, digests=digests)
    legacy = legacy_node_scores_batch(model, graphs)
    assert len(optimized) == len(legacy) == 9
    for opt, leg in zip(optimized, legacy):
        assert np.array_equal(opt, leg)


# -- run + schema -----------------------------------------------------------


@pytest.fixture(scope="module")
def quick_payload():
    ctx = BenchContext(hidden=8, batch_size=6, concurrency=2, requests_per_client=2)
    return run_benchmarks(
        sizes={"tiny": TINY},
        case_names=list(CASES),
        ctx=ctx,
        repeats=2,
        warmup=1,
        quick=True,
        seed=7,
    )


def test_run_benchmarks_emits_schema_valid_payload(quick_payload):
    assert validate_payload(quick_payload) == []
    assert quick_payload["schema_version"] == BENCH_SCHEMA_VERSION
    covered = {row["case"] for row in quick_payload["results"]}
    assert covered == set(CASES)


def test_run_benchmarks_derives_speedup_headline(quick_payload):
    speedups = quick_payload["derived"][SPEEDUP_KEY]
    assert "tiny" in speedups and "median" in speedups
    assert speedups["median"] > 0


def test_validate_payload_rejects_malformed_files(quick_payload):
    assert validate_payload("not a dict") == ["payload must be a JSON object"]

    bad_version = copy.deepcopy(quick_payload)
    bad_version["schema_version"] = 99
    assert any("schema_version" in e for e in validate_payload(bad_version))

    empty = copy.deepcopy(quick_payload)
    empty["results"] = []
    assert any("results" in e for e in validate_payload(empty))

    missing_stat = copy.deepcopy(quick_payload)
    del missing_stat["results"][0]["stats"]["median_s"]
    assert any("median_s" in e for e in validate_payload(missing_stat))

    duplicated = copy.deepcopy(quick_payload)
    duplicated["results"].append(copy.deepcopy(duplicated["results"][0]))
    assert any("duplicate" in e for e in validate_payload(duplicated))

    negative = copy.deepcopy(quick_payload)
    negative["results"][0]["stats"]["median_s"] = -1.0
    assert any("finite" in e for e in validate_payload(negative))


# -- compare + regression tripwire ------------------------------------------


def _inject_regression(payload, case="node_scores_batch", factor=10.0):
    """A synthetic slowdown: one case's timings multiplied by ``factor``."""
    slowed = copy.deepcopy(payload)
    for row in slowed["results"]:
        if row["case"] == case:
            for key in STAT_KEYS:
                if key != "repeats":
                    row["stats"][key] *= factor
    return slowed


def test_compare_flags_injected_regression(quick_payload):
    slowed = _inject_regression(quick_payload)
    rows, regressions = compare_payloads(quick_payload, slowed, fail_pct=200.0)
    assert regressions  # 10x is far past a 3x tripwire
    flagged = {r["case"] for r in rows if r["regressed"]}
    assert flagged == {"node_scores_batch"}
    # the same comparison in reverse is a speedup, not a regression
    _, reverse = compare_payloads(slowed, quick_payload, fail_pct=200.0)
    assert reverse == []


def test_compare_without_tripwire_never_regresses(quick_payload):
    slowed = _inject_regression(quick_payload, factor=100.0)
    _, regressions = compare_payloads(quick_payload, slowed, fail_pct=None)
    assert regressions == []


def test_compare_cli_exits_nonzero_on_injected_regression(tmp_path, quick_payload, capsys):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(quick_payload))
    new.write_text(json.dumps(_inject_regression(quick_payload)))
    assert main(["compare", str(old), str(new), "--fail-on-regression", "200"]) == EXIT_REGRESSION
    assert "REGRESSION" in capsys.readouterr().out
    # identical files are clean under the same tripwire
    assert main(["compare", str(old), str(old), "--fail-on-regression", "200"]) == EXIT_CLEAN


def test_compare_cli_rejects_disjoint_and_invalid_inputs(tmp_path, quick_payload):
    old = tmp_path / "old.json"
    old.write_text(json.dumps(quick_payload))
    renamed = copy.deepcopy(quick_payload)
    for row in renamed["results"]:
        row["workload"] = "other"
    disjoint = tmp_path / "disjoint.json"
    disjoint.write_text(json.dumps(renamed))
    assert main(["compare", str(old), str(disjoint)]) == EXIT_USAGE

    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"schema_version": 99}))
    assert main(["compare", str(old), str(invalid)]) == EXIT_USAGE
    assert main(["compare", str(old), str(tmp_path / "missing.json")]) == EXIT_USAGE


# -- run CLI ----------------------------------------------------------------


def test_next_bench_path_fills_first_gap(tmp_path):
    assert next_bench_path(tmp_path) == tmp_path / "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_3.json").write_text("{}")
    (tmp_path / "BENCH_notanumber.json").write_text("{}")
    assert next_bench_path(tmp_path) == tmp_path / "BENCH_2.json"


def test_run_cli_writes_auto_numbered_valid_file(tmp_path):
    argv = [
        "run", "--quick", "--sizes", "tiny", "--cases", "graph_build,cache_lookup",
        "--repeats", "1", "--warmup", "0", "--hidden", "8", "--dir", str(tmp_path),
    ]
    assert main(argv) == EXIT_CLEAN
    out = tmp_path / "BENCH_1.json"
    payload = json.loads(out.read_text())
    assert validate_payload(payload) == []
    assert {row["case"] for row in payload["results"]} == {"graph_build", "cache_lookup"}
    assert main(argv) == EXIT_CLEAN  # second run numbers itself BENCH_2
    assert (tmp_path / "BENCH_2.json").exists()


def test_run_cli_rejects_unknown_cases_and_sizes(tmp_path):
    base = ["run", "--quick", "--dir", str(tmp_path)]
    assert main(base + ["--cases", "no_such_case"]) == EXIT_USAGE
    assert main(base + ["--sizes", "galactic"]) == EXIT_USAGE
    assert not list(Path(tmp_path).glob("BENCH_*.json"))


def test_cases_cli_lists_catalog(capsys):
    assert main(["cases"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for name in CASES:
        assert name in out


# -- scenario + training cases ----------------------------------------------


def test_new_cases_are_cataloged():
    from m3d_fault_loc.bench.cases import CASE_DESCRIPTIONS

    for name in ("train_epoch", "scenario_generate"):
        assert name in CASES
        assert name in CASE_DESCRIPTIONS


def test_scenario_generate_case_covers_every_registered_scenario():
    from m3d_fault_loc.scenarios import scenario_names

    workload = build_workload(TINY)
    fn, meta, cleanup = CASES["scenario_generate"](workload, BenchContext(hidden=8))
    assert meta["scenarios_per_call"] == len(scenario_names())
    assert fn() > 0  # total node count across all generated graphs
    assert cleanup is None


def test_train_epoch_case_updates_the_model():
    workload = build_workload(TINY)
    ctx = BenchContext(hidden=8, batch_size=2)
    fn, meta, cleanup = CASES["train_epoch"](workload, ctx)
    assert meta["graphs_per_call"] == TINY.n_graphs
    first = fn()
    second = fn()  # Adam steps persist across calls: loss should move
    assert np.isfinite(first) and np.isfinite(second)
    assert first != second
    assert cleanup is None

"""Observability over the live HTTP stack: trace ids on every outcome,
/debug/traces, stage-span accounting, context isolation, and chaos tagging."""

import http.client
import json
import logging
import threading
import time

import numpy as np
import pytest

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.obs.context import sanitize_trace_id
from m3d_fault_loc.serve.resilience import ExponentialBackoff
from m3d_fault_loc.serve.server import TRACE_HEADER, create_server
from m3d_fault_loc.serve.service import LocalizationService
from m3d_fault_loc.testing.chaos import CrashOnNthBatchModel, SlowBatchModel


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(13)
    return synthesize_fault_dataset(rng, n_graphs=8, n_gates=12, n_inputs=3)


def base_model():
    return DelayFaultLocalizer(hidden=8, seed=5)


def make_service(model, **kwargs):
    kwargs.setdefault("batch_window_s", 0.001)
    kwargs.setdefault("watchdog_interval_s", 0.03)
    kwargs.setdefault(
        "restart_backoff", ExponentialBackoff(base_s=0.01, factor=2.0, max_s=0.05)
    )
    kwargs.setdefault("drain_deadline_s", 2.0)
    return LocalizationService(model=model, **kwargs)


class _LiveServer:
    def __init__(self, service):
        self.service = service
        self.server = create_server(service, host="127.0.0.1", port=0)
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()
        self.port = self.server.port

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        self.thread.join(timeout=5)


@pytest.fixture()
def live(request):
    servers = []

    def boot(model=None, **kwargs):
        live_server = _LiveServer(make_service(model or base_model(), **kwargs))
        servers.append(live_server)
        return live_server

    yield boot
    for s in servers:
        s.stop()


def request_raw(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        data = (
            json.loads(raw)
            if "json" in (response.getheader("Content-Type") or "")
            else raw.decode()
        )
        return response.status, data, dict(response.getheaders())
    finally:
        conn.close()


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- the trace id on every outcome -----------------------------------------


def test_success_carries_header_and_matching_body_id(live, graphs):
    server = live()
    status, body, headers = request_raw(
        server.port, "POST", "/localize", {"graph": graphs[0].to_json_dict()}
    )
    assert status == 200
    assert sanitize_trace_id(headers[TRACE_HEADER]) is not None
    assert body["trace_id"] == headers[TRACE_HEADER]


def test_client_supplied_trace_id_is_honored(live, graphs):
    server = live()
    mine = "client-supplied-trace-0001"
    status, body, headers = request_raw(
        server.port,
        "POST",
        "/localize",
        {"graph": graphs[0].to_json_dict()},
        headers={TRACE_HEADER: mine},
    )
    assert status == 200
    assert headers[TRACE_HEADER] == mine and body["trace_id"] == mine


def test_malformed_client_trace_id_is_replaced(live, graphs):
    server = live()
    status, body, headers = request_raw(
        server.port,
        "POST",
        "/localize",
        {"graph": graphs[0].to_json_dict()},
        headers={TRACE_HEADER: 'bad id "with" junk'},
    )
    assert status == 200
    assert headers[TRACE_HEADER] != 'bad id "with" junk'
    assert sanitize_trace_id(headers[TRACE_HEADER]) is not None


def test_422_contract_violation_carries_trace_id(live, graphs):
    server = live()
    bad = graphs[0].to_json_dict()
    bad["x"]["dtype"] = "float64"
    status, body, headers = request_raw(server.port, "POST", "/localize", {"graph": bad})
    assert status == 422
    assert body["trace_id"] == headers[TRACE_HEADER]


def test_504_deadline_exceeded_carries_trace_id(live, graphs):
    server = live(SlowBatchModel(base_model(), delay_s=0.5, slow_calls=1))
    status, body, headers = request_raw(
        server.port,
        "POST",
        "/localize",
        {"graph": graphs[0].to_json_dict(), "deadline_ms": 40},
    )
    assert status == 504 and body["error"] == "deadline_exceeded"
    assert body["trace_id"] == headers[TRACE_HEADER]


def test_429_load_shed_carries_trace_id(live, graphs):
    model = SlowBatchModel(base_model(), delay_s=0.4, slow_calls=2)
    server = live(model, max_queue=1, max_batch=1)
    results = {}

    def call(key, graph):
        def run():
            try:
                results[key] = server.service.localize(graph, timeout_s=5.0)
            except Exception as exc:
                results[key] = exc

        t = threading.Thread(target=run, daemon=True)
        t.start()
        return t

    t_a = call("a", graphs[0])
    assert wait_until(lambda: model.batch_calls >= 1)
    t_b = call("b", graphs[1])
    assert wait_until(lambda: server.service._queue.qsize() == 1)
    status, body, headers = request_raw(
        server.port, "POST", "/localize", {"graph": graphs[2].to_json_dict()}
    )
    assert status == 429 and body["error"] == "load_shed"
    assert body["trace_id"] == headers[TRACE_HEADER]
    t_a.join(timeout=5)
    t_b.join(timeout=5)


def test_503_draining_carries_trace_id(live, graphs):
    server = live()
    server.service.begin_drain()
    status, body, headers = request_raw(
        server.port, "POST", "/localize", {"graph": graphs[0].to_json_dict()}
    )
    assert status == 503 and body["error"] == "draining"
    assert body["trace_id"] == headers[TRACE_HEADER]


def test_400_bad_request_carries_trace_id(live):
    server = live()
    status, body, headers = request_raw(server.port, "POST", "/localize", {"nope": 1})
    assert status == 400
    assert body["trace_id"] == headers[TRACE_HEADER]


# -- /debug/traces and span accounting -------------------------------------


def test_debug_traces_returns_completed_traces(live, graphs):
    server = live()
    ids = []
    for i in range(3):
        _, body, _ = request_raw(
            server.port, "POST", "/localize", {"graph": graphs[i].to_json_dict()}
        )
        ids.append(body["trace_id"])
    status, debug, _ = request_raw(server.port, "GET", "/debug/traces")
    assert status == 200
    by_id = {t["trace_id"]: t for t in debug["traces"]}
    assert set(ids) <= set(by_id)
    assert debug["traces"][0]["trace_id"] == ids[-1]  # newest first
    assert debug["stats"]["completed"] >= 3

    status, limited, _ = request_raw(server.port, "GET", "/debug/traces?n=1")
    assert status == 200 and len(limited["traces"]) == 1

    status, bad, _ = request_raw(server.port, "GET", "/debug/traces?n=wat")
    assert status == 400 and bad["error"] == "bad_request"


def test_top_level_stage_durations_sum_to_total_within_10pct(live, graphs):
    # A deliberately slow model makes inference dominate, so the untraced
    # slivers (enqueue, breaker check) are far inside the 10% budget.
    server = live(SlowBatchModel(base_model(), delay_s=0.08))
    _, body, _ = request_raw(
        server.port, "POST", "/localize", {"graph": graphs[0].to_json_dict()}
    )
    _, debug, _ = request_raw(server.port, "GET", "/debug/traces")
    trace = {t["trace_id"]: t for t in debug["traces"]}[body["trace_id"]]

    top_level = [s for s in trace["spans"] if "parent" not in s]
    worker_side = {s["stage"] for s in trace["spans"] if s.get("parent") == "await_result"}
    assert {"contract_gate", "cache_lookup", "await_result"} <= {
        s["stage"] for s in top_level
    }
    assert {"queue_wait", "batch_infer"} <= worker_side

    total = trace["duration_ms"]
    stage_sum = sum(s["duration_ms"] for s in top_level)
    assert abs(stage_sum - total) <= 0.10 * total, (
        f"top-level stages sum to {stage_sum:.3f}ms vs total {total:.3f}ms"
    )


def test_per_stage_histograms_exposed_on_metrics(live, graphs):
    server = live()
    request_raw(server.port, "POST", "/localize", {"graph": graphs[0].to_json_dict()})
    _, metrics, _ = request_raw(server.port, "GET", "/metrics?format=json")
    for name in (
        "m3d_stage_contract_seconds",
        "m3d_stage_cache_lookup_seconds",
        "m3d_stage_queue_wait_seconds",
        "m3d_stage_inference_seconds",
    ):
        assert metrics[name]["type"] == "histogram"
        assert metrics[name]["count"] >= 1
    _, prom, _ = request_raw(server.port, "GET", "/metrics")
    assert "m3d_stage_inference_seconds_bucket" in prom


# -- context isolation under concurrency -----------------------------------


def test_overlapping_requests_never_cross_contaminate_trace_ids(live, graphs):
    server = live(SlowBatchModel(base_model(), delay_s=0.05), max_batch=1)
    outcomes = {}

    def run(key, graph, trace_id):
        status, body, headers = request_raw(
            server.port,
            "POST",
            "/localize",
            {"graph": graph.to_json_dict()},
            headers={TRACE_HEADER: trace_id},
        )
        outcomes[key] = (status, body, headers)

    ids = {f"req-{i}": f"isolation-trace-{i:04d}" for i in range(4)}
    threads = [
        threading.Thread(target=run, args=(key, graphs[i], tid), daemon=True)
        for i, (key, tid) in enumerate(ids.items())
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15)

    assert set(outcomes) == set(ids)
    for key, tid in ids.items():
        status, body, headers = outcomes[key]
        assert status == 200, f"{key} failed: {body}"
        assert headers[TRACE_HEADER] == tid, f"{key} got someone else's header"
        assert body["trace_id"] == tid, f"{key} got someone else's body id"

    _, debug, _ = request_raw(server.port, "GET", "/debug/traces")
    by_id = {t["trace_id"]: t for t in debug["traces"]}
    for tid in ids.values():
        spans = {s["stage"] for s in by_id[tid]["spans"]}
        assert {"contract_gate", "cache_lookup", "await_result"} <= spans


# -- chaos: victim requests stay attributable ------------------------------


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_worker_crash_logs_and_trace_tagged_with_victim_id(live, graphs, caplog):
    model = CrashOnNthBatchModel(base_model(), crash_on=1, crash_count=1, kill_worker=True)
    server = live(model, stall_timeout_s=0.05)
    victim = "victim-trace-0000000001"
    with caplog.at_level(logging.WARNING, logger="m3d_fault_loc"):
        status, body, headers = request_raw(
            server.port,
            "POST",
            "/localize",
            {"graph": graphs[0].to_json_dict()},
            headers={TRACE_HEADER: victim},
        )
    assert status == 503 and body["error"] == "worker_crashed"
    assert body["trace_id"] == victim and headers[TRACE_HEADER] == victim

    tagged = [
        r
        for r in caplog.records
        if r.getMessage() == "pending_request_failed"
        and getattr(r, "m3d_trace_id", None) == victim
    ]
    assert tagged, "the victim's failure must be logged with its trace id"
    assert tagged[0].m3d_fields["error"] == "WorkerCrashedError"

    # the victim's trace finished with the crash status and survives in the ring
    assert wait_until(
        lambda: any(t["trace_id"] == victim for t in server.service.tracer.recent(50))
    )
    trace = {t["trace_id"]: t for t in server.service.tracer.recent(50)}[victim]
    assert trace["status"] == "WorkerCrashedError"

    # after the watchdog restart, the same server keeps serving — with traces
    assert wait_until(
        lambda: server.service.health_snapshot()["status"] in ("ok", "degraded")
    )
    status, body2, _ = request_raw(
        server.port, "POST", "/localize", {"graph": graphs[1].to_json_dict()}
    )
    assert status == 200 and body2["trace_id"]

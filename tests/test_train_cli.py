"""End-to-end train/evaluate CLI walkthrough on tiny synthetic data."""

from pathlib import Path

from m3d_fault_loc.cli import evaluate as evaluate_cli
from m3d_fault_loc.cli import train as train_cli
from m3d_fault_loc.analysis.cli import EXIT_CLEAN
from m3d_fault_loc.analysis.cli import main as m3dlint_main


def test_train_then_evaluate_roundtrip(tmp_path, capsys):
    model_path = tmp_path / "model.npz"
    data_dir = tmp_path / "graphs"
    rc = train_cli.main(
        [
            "--seed", "0",
            "--n-graphs", "30",
            "--n-gates", "15",
            "--epochs", "4",
            "--hidden", "8",
            "--out", str(model_path),
            "--save-data-dir", str(data_dir),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "held-out localization accuracy" in out
    assert model_path.exists()

    # The serialized training set passes the standalone contract checker.
    assert m3dlint_main(["check", str(data_dir)]) == EXIT_CLEAN
    capsys.readouterr()

    rc = evaluate_cli.main(
        ["--model", str(model_path), "--data-dir", str(data_dir), "--top-k", "3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "top-1 localization accuracy" in out
    assert "top-3 localization accuracy" in out


def test_train_refuses_contract_violating_data(tmp_path, capsys):
    from fixture_graphs import make_bad_dtype_graph

    data_dir = tmp_path / "bad"
    data_dir.mkdir()
    make_bad_dtype_graph().save(data_dir / "bad.json")
    rc = train_cli.main(["--data-dir", str(data_dir), "--out", str(tmp_path / "m.npz")])
    assert rc == 1
    assert "contract gate rejected" in capsys.readouterr().err


def test_cli_modules_are_lint_clean():
    """The shipped CLIs must satisfy the repo's own code rules (M3D2xx)."""
    cli_dir = Path(train_cli.__file__).parent
    assert m3dlint_main(["code", str(cli_dir)]) == EXIT_CLEAN


def test_metrics_log_captures_epochs_final_and_eval(tmp_path, capsys):
    from m3d_fault_loc.obs.telemetry import read_jsonl, summarize_training

    model_path = tmp_path / "model.npz"
    metrics_path = tmp_path / "train.jsonl"
    rc = train_cli.main(
        [
            "--seed", "0",
            "--n-graphs", "20",
            "--n-gates", "12",
            "--epochs", "3",
            "--hidden", "8",
            "--out", str(model_path),
            "--metrics-log", str(metrics_path),
        ]
    )
    assert rc == 0
    records = read_jsonl(metrics_path)
    epochs = [r for r in records if r["event"] == "epoch"]
    assert [e["epoch"] for e in epochs] == [0, 1, 2]
    for e in epochs:
        assert e["loss"] > 0 and e["wall_s"] > 0 and e["grad_norm"] > 0
        assert e["lr"] == 0.01
    (final,) = [r for r in records if r["event"] == "final"]
    assert 0.0 <= final["test_accuracy"] <= 1.0
    assert final["train_graphs"] + final["test_graphs"] == 20

    # m3d-evaluate appends its hit@k record to the same stream
    rc = evaluate_cli.main(
        [
            "--model", str(model_path),
            "--n-graphs", "8",
            "--n-gates", "12",
            "--top-k", "3",
            "--metrics-log", str(metrics_path),
        ]
    )
    assert rc == 0
    capsys.readouterr()
    records = read_jsonl(metrics_path)
    (ev,) = [r for r in records if r["event"] == "eval"]
    assert ev["n_graphs"] == 8 and ev["k"] == 3
    assert 0.0 <= ev["top1"] <= ev["top_k_accuracy"] <= 1.0

    summary = summarize_training(records)
    assert summary["epochs"] == 3
    assert summary["final"]["test_accuracy"] == final["test_accuracy"]
    assert summary["evals"][0]["k"] == 3


def test_profile_flag_emits_per_phase_rows(tmp_path, capsys):
    from m3d_fault_loc.obs.profile import TRAIN_PHASES
    from m3d_fault_loc.obs.telemetry import read_jsonl

    metrics_path = tmp_path / "train.jsonl"
    rc = train_cli.main(
        [
            "--seed", "0",
            "--n-graphs", "16",
            "--n-gates", "12",
            "--epochs", "2",
            "--hidden", "8",
            "--out", str(tmp_path / "model.npz"),
            "--metrics-log", str(metrics_path),
            "--profile",
        ]
    )
    assert rc == 0
    capsys.readouterr()
    profiles = [r for r in read_jsonl(metrics_path) if r["event"] == "profile"]
    assert profiles, "--profile must land profile rows on the metrics log"
    assert {p["epoch"] for p in profiles} == {0, 1}
    phases = {p["phase"] for p in profiles}
    # eval only fires on the periodic-log epochs; the hot phases always do
    assert {"data_gen", "forward", "backward", "optimizer_step"} <= phases
    assert phases <= set(TRAIN_PHASES)
    for p in profiles:
        assert p["wall_s"] >= 0.0 and p["calls"] >= 1
        assert "peak_kb" not in p  # memory tracking is a separate flag


def test_profile_memory_flag_adds_allocation_peaks(tmp_path, capsys):
    from m3d_fault_loc.obs.telemetry import read_jsonl

    metrics_path = tmp_path / "train.jsonl"
    rc = train_cli.main(
        [
            "--seed", "0",
            "--n-graphs", "12",
            "--n-gates", "10",
            "--epochs", "1",
            "--hidden", "8",
            "--out", str(tmp_path / "model.npz"),
            "--metrics-log", str(metrics_path),
            "--profile-memory",
        ]
    )
    assert rc == 0
    capsys.readouterr()
    profiles = [r for r in read_jsonl(metrics_path) if r["event"] == "profile"]
    assert profiles
    # outermost phases carry allocation high-water marks
    assert any(p.get("peak_kb", 0) > 0 for p in profiles)

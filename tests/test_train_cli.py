"""End-to-end train/evaluate CLI walkthrough on tiny synthetic data."""

from pathlib import Path

from m3d_fault_loc.cli import evaluate as evaluate_cli
from m3d_fault_loc.cli import train as train_cli
from m3d_fault_loc.analysis.cli import EXIT_CLEAN
from m3d_fault_loc.analysis.cli import main as m3dlint_main


def test_train_then_evaluate_roundtrip(tmp_path, capsys):
    model_path = tmp_path / "model.npz"
    data_dir = tmp_path / "graphs"
    rc = train_cli.main(
        [
            "--seed", "0",
            "--n-graphs", "30",
            "--n-gates", "15",
            "--epochs", "4",
            "--hidden", "8",
            "--out", str(model_path),
            "--save-data-dir", str(data_dir),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "held-out localization accuracy" in out
    assert model_path.exists()

    # The serialized training set passes the standalone contract checker.
    assert m3dlint_main(["check", str(data_dir)]) == EXIT_CLEAN
    capsys.readouterr()

    rc = evaluate_cli.main(
        ["--model", str(model_path), "--data-dir", str(data_dir), "--top-k", "3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "top-1 localization accuracy" in out
    assert "top-3 localization accuracy" in out


def test_train_refuses_contract_violating_data(tmp_path, capsys):
    from fixture_graphs import make_bad_dtype_graph

    data_dir = tmp_path / "bad"
    data_dir.mkdir()
    make_bad_dtype_graph().save(data_dir / "bad.json")
    rc = train_cli.main(["--data-dir", str(data_dir), "--out", str(tmp_path / "m.npz")])
    assert rc == 1
    assert "contract gate rejected" in capsys.readouterr().err


def test_cli_modules_are_lint_clean():
    """The shipped CLIs must satisfy the repo's own code rules (M3D2xx)."""
    cli_dir = Path(train_cli.__file__).parent
    assert m3dlint_main(["code", str(cli_dir)]) == EXIT_CLEAN

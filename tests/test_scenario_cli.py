"""``--scenario`` on the CLIs: train, evaluate, and m3dlint check.

The flag must thread the scenario through dataset generation, contract
gating, metric computation, and the telemetry stream — and ``m3dlint check
--scenario`` must reject a dataset submitted under the wrong scenario.
"""

import json

import pytest

from m3d_fault_loc.analysis import cli as lint_cli
from m3d_fault_loc.cli import evaluate as evaluate_cli
from m3d_fault_loc.cli import train as train_cli
from m3d_fault_loc.scenarios import ScenarioSpec, get_scenario, scenario_names


@pytest.fixture(scope="module")
def trained_model(tmp_path_factory):
    out = tmp_path_factory.mktemp("model") / "localizer.npz"
    rc = train_cli.main([
        "--n-graphs", "12", "--n-gates", "12", "--epochs", "2",
        "--seed", "3", "--out", str(out),
    ])
    assert rc == 0
    return out


def read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_train_scenario_flag_tags_telemetry_and_metadata(tmp_path):
    out = tmp_path / "m.npz"
    log = tmp_path / "train.jsonl"
    rc = train_cli.main([
        "--n-graphs", "10", "--n-gates", "12", "--epochs", "2", "--seed", "3",
        "--scenario", "multi_delay", "--out", str(out), "--metrics-log", str(log),
    ])
    assert rc == 0
    records = read_jsonl(log)
    epochs = [r for r in records if r["event"] == "epoch"]
    finals = [r for r in records if r["event"] == "final"]
    assert len(epochs) == 2 and len(finals) == 1
    assert all(r["scenario"] == "multi_delay" for r in epochs + finals)


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_evaluate_every_scenario_emits_tagged_metrics(trained_model, tmp_path, name):
    log = tmp_path / f"eval_{name}.jsonl"
    rc = evaluate_cli.main([
        "--model", str(trained_model), "--n-graphs", "6", "--n-gates", "12",
        "--seed", "9", "--scenario", name, "--metrics-log", str(log),
    ])
    assert rc == 0
    (record,) = read_jsonl(log)
    assert record["event"] == "eval"
    assert record["scenario"] == name
    # Legacy fields survive for every scenario (m3d-obs consumers).
    assert record["n_graphs"] == 6
    assert 0.0 <= record["top1"] <= record["top_k_accuracy"] <= 1.0
    # Plus the scenario's own metrics.
    expected = {
        "aging_drift": {"pearson_r", "drift_mae", "hit_at_k"},
        "multi_delay": {"coverage_at_k", "hit_any_at_k", "hit_all_at_k"},
        "seu_bitflip": {"hit_any_at_k", "coverage_at_k"},
        "intermittent_delay": {"hit_at_1", "hit_at_k"},
        "single_delay": {"hit_at_1", "hit_at_k"},
    }[name]
    assert expected <= set(record)


def test_evaluate_keeps_legacy_stdout_lines(trained_model, capsys):
    rc = evaluate_cli.main([
        "--model", str(trained_model), "--n-graphs", "5", "--n-gates", "12",
        "--scenario", "seu_bitflip", "--top-k", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "top-1 localization accuracy" in out
    assert "top-3 localization accuracy" in out
    assert "seu_bitflip" in out


def test_lint_check_scenario_gates_saved_datasets(tmp_path, capsys):
    spec = ScenarioSpec(n_graphs=2, n_gates=12, n_inputs=3, seed=11)
    data = tmp_path / "graphs"
    data.mkdir()
    for i, graph in enumerate(get_scenario("multi_delay").generate(spec)):
        graph.save(data / f"g{i}.json")

    assert lint_cli.main(["check", str(data), "--scenario", "multi_delay"]) == 0
    capsys.readouterr()
    assert lint_cli.main(["check", str(data), "--scenario", "seu_bitflip"]) == 1
    assert "M3D110" in capsys.readouterr().out


def test_lint_rules_lists_scenario_family(capsys):
    assert lint_cli.main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("M3D110", "M3D111", "M3D112", "M3D113", "M3D114", "M3D115", "M3D209"):
        assert rule_id in out, rule_id

"""Span tracer: lifecycle, ring buffers, JSONL export, and the no-op budget."""

import json
import threading
import time

import pytest

from m3d_fault_loc.obs.context import trace_context
from m3d_fault_loc.obs.trace import NULL_TRACER, JsonlTraceExporter, Tracer


def test_trace_records_spans_with_durations():
    tracer = Tracer()
    with tracer.trace("localize", trace_id="t" * 8, graph="g1"):
        with tracer.span("contract_gate", trace_id="t" * 8):
            time.sleep(0.002)
        tracer.record("t" * 8, "batch_infer", 0.005, parent="await_result", batch=3)
    (finished,) = tracer.recent()
    assert finished["trace_id"] == "t" * 8
    assert finished["status"] == "ok"
    assert finished["meta"] == {"graph": "g1"}
    stages = {s["stage"]: s for s in finished["spans"]}
    assert stages["contract_gate"]["duration_ms"] >= 1.0
    assert stages["batch_infer"]["duration_ms"] == 5.0
    assert stages["batch_infer"]["parent"] == "await_result"
    assert stages["batch_infer"]["meta"] == {"batch": 3}
    assert finished["duration_ms"] >= stages["contract_gate"]["duration_ms"]


def test_span_uses_ambient_trace_id():
    tracer = Tracer()
    with trace_context("ambient-id-123"):
        with tracer.trace("localize"):
            with tracer.span("cache_lookup"):
                pass
    (finished,) = tracer.recent()
    assert finished["trace_id"] == "ambient-id-123"
    assert finished["spans"][0]["stage"] == "cache_lookup"


def test_exception_sets_status_and_span_error():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.trace("localize", trace_id="boom1234"):
            with tracer.span("contract_gate", trace_id="boom1234"):
                raise ValueError("nope")
    (finished,) = tracer.recent()
    assert finished["status"] == "ValueError"
    assert finished["spans"][0]["meta"]["error"] == "ValueError"


def test_ring_buffer_bounded_and_newest_first():
    tracer = Tracer(capacity=3)
    for i in range(5):
        with tracer.trace("r", trace_id=f"trace-{i:04d}"):
            pass
    recent = tracer.recent()
    assert [t["trace_id"] for t in recent] == ["trace-0004", "trace-0003", "trace-0002"]
    assert tracer.stats()["completed"] == 3


def test_slow_ring_catches_only_threshold_breakers():
    tracer = Tracer(slow_threshold_s=0.005)
    with tracer.trace("fast", trace_id="fastfast"):
        pass
    with tracer.trace("slow", trace_id="slowslow"):
        time.sleep(0.01)
    assert [t["trace_id"] for t in tracer.slow()] == ["slowslow"]
    assert len(tracer.recent()) == 2


def test_record_for_unknown_trace_dropped_not_raised():
    tracer = Tracer()
    tracer.record("never-started", "queue_wait", 0.001)
    assert tracer.stats()["dropped_spans"] == 1
    assert tracer.recent() == []


def test_jsonl_exporter_appends_completed_traces(tmp_path):
    path = tmp_path / "traces.jsonl"
    tracer = Tracer(exporter=JsonlTraceExporter(path))
    for i in range(2):
        with tracer.trace("localize", trace_id=f"export-{i:03d}"):
            tracer.record(f"export-{i:03d}", "batch_infer", 0.001)
    tracer.exporter.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [t["trace_id"] for t in lines] == ["export-000", "export-001"]
    assert lines[0]["spans"][0]["stage"] == "batch_infer"


def test_concurrent_traces_do_not_mix_spans():
    tracer = Tracer()
    errors = []

    def run(i):
        tid = f"thread-{i:04d}"
        try:
            with tracer.trace("localize", trace_id=tid):
                for _ in range(20):
                    tracer.record(tid, "stage", 0.0001, idx=i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for finished in tracer.recent(8):
        i = int(finished["trace_id"].split("-")[1])
        assert len(finished["spans"]) == 20
        assert all(s["meta"]["idx"] == i for s in finished["spans"])


def test_disabled_tracer_noop_overhead_under_5us():
    n = 20_000
    with trace_context("bench-trace-id"):
        t0 = time.perf_counter()
        for _ in range(n):
            with NULL_TRACER.span("queue_wait"):
                pass
        per_span_s = (time.perf_counter() - t0) / n
    assert per_span_s < 5e-6, f"no-op span cost {per_span_s * 1e6:.2f}µs, budget 5µs"
    assert NULL_TRACER.recent() == []


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.trace("x", trace_id="disabled-1"):
        tracer.record("disabled-1", "stage", 0.001)
    assert tracer.recent() == []
    assert tracer.stats() == {"active": 0, "completed": 0, "slow": 0, "dropped_spans": 0}


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(capacity=0)

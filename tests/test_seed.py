"""Deterministic seeding helper."""

import random

import numpy as np
import pytest

from m3d_fault_loc.utils.seed import seed_everything


def test_returns_reproducible_generator():
    a = seed_everything(123).random(5)
    b = seed_everything(123).random(5)
    assert np.array_equal(a, b)


def test_seeds_global_rngs():
    seed_everything(7)
    r1, n1 = random.random(), np.random.random()
    seed_everything(7)
    assert (random.random(), np.random.random()) == (r1, n1)


def test_different_seeds_diverge():
    assert not np.array_equal(seed_everything(1).random(4), seed_everything(2).random(4))


def test_rejects_out_of_range_seed():
    with pytest.raises(ValueError):
        seed_everything(-1)
    with pytest.raises(ValueError):
        seed_everything(2**32)


def test_synthesis_is_deterministic_under_seed():
    from m3d_fault_loc.data.synthetic import synthesize_fault_dataset

    g1 = synthesize_fault_dataset(seed_everything(99), n_graphs=2, n_gates=10)
    g2 = synthesize_fault_dataset(seed_everything(99), n_graphs=2, n_gates=10)
    assert [g.fault_index for g in g1] == [g.fault_index for g in g2]
    assert np.array_equal(g1[0].x, g2[0].x)

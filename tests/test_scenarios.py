"""Scenario platform: registry, determinism, legacy equivalence, M3D11x rules.

The two load-bearing guarantees are byte-level: the same spec + seed must
regenerate an identical dataset (scenario datasets are cached and shared by
digest), and ``single_delay`` through the registry must be byte-identical to
the legacy injector (pre-platform datasets and golden responses stay valid).
"""

import json

import numpy as np
import pytest

from m3d_fault_loc.data.dataset import CircuitGraphDataset
from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.scenarios import (
    DEFAULT_SCENARIO,
    ScenarioRegistry,
    ScenarioSpec,
    UnknownScenarioError,
    build_scenario_engine,
    get_scenario,
    register_scenario,
    scenario_names,
)

SPEC = ScenarioSpec(n_graphs=4, n_gates=14, n_inputs=3, num_tiers=2, seed=77)

ALL_SCENARIOS = sorted(scenario_names())


def canonical(graphs):
    return [json.dumps(g.to_json_dict(), sort_keys=True) for g in graphs]


# ---------------------------------------------------------------- registry


def test_five_builtin_scenarios_registered():
    assert ALL_SCENARIOS == [
        "aging_drift",
        "intermittent_delay",
        "multi_delay",
        "seu_bitflip",
        "single_delay",
    ]
    assert DEFAULT_SCENARIO == "single_delay"


def test_unknown_scenario_raises_with_known_list():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("stuck_at_zero")
    assert exc.value.name == "stuck_at_zero"
    assert exc.value.known == ALL_SCENARIOS


def test_registry_rejects_duplicate_names():
    registry = ScenarioRegistry()
    registry.register(get_scenario("single_delay"))
    with pytest.raises(ValueError, match="single_delay"):
        registry.register(get_scenario("single_delay"))


def test_register_scenario_rejects_global_duplicate():
    with pytest.raises(ValueError):
        register_scenario(get_scenario("multi_delay"))


# ------------------------------------------------------------- determinism


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_same_spec_same_seed_is_byte_identical(name):
    scenario = get_scenario(name)
    assert canonical(scenario.generate(SPEC)) == canonical(scenario.generate(SPEC))


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_different_seed_differs(name):
    scenario = get_scenario(name)
    other = ScenarioSpec(
        n_graphs=SPEC.n_graphs, n_gates=SPEC.n_gates, n_inputs=SPEC.n_inputs,
        num_tiers=SPEC.num_tiers, seed=SPEC.seed + 1,
    )
    assert canonical(scenario.generate(SPEC)) != canonical(scenario.generate(other))


def test_single_delay_matches_legacy_injector_exactly():
    via_registry = get_scenario("single_delay").generate(SPEC)
    legacy = synthesize_fault_dataset(
        np.random.default_rng(SPEC.seed),
        n_graphs=SPEC.n_graphs,
        n_gates=SPEC.n_gates,
        n_inputs=SPEC.n_inputs,
        num_tiers=SPEC.num_tiers,
    )
    assert canonical(via_registry) == canonical(legacy)
    # No scenario tag: pre-platform consumers see the dataset unchanged.
    assert all("scenario" not in g.meta for g in via_registry)


# ------------------------------------------------------- contract gating


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_generated_datasets_gate_clean_under_own_engine(name):
    scenario = get_scenario(name)
    engine = build_scenario_engine(name)
    for graph in scenario.generate(SPEC):
        assert engine.run(graph) == []


def test_tagged_graph_under_wrong_engine_fails_m3d110():
    graph = get_scenario("seu_bitflip").generate(SPEC)[0]
    violations = build_scenario_engine("aging_drift").run(graph)
    assert "M3D110" in {v.rule_id for v in violations}


def test_untagged_graph_serves_under_any_scenario():
    graph = get_scenario("single_delay").generate(SPEC)[0]
    for name in ALL_SCENARIOS:
        assert build_scenario_engine(name).run(graph) == []


def test_multi_delay_missing_fault_set_fails_m3d112():
    graph = get_scenario("multi_delay").generate(SPEC)[0]
    del graph.meta["faults"]
    violations = build_scenario_engine("multi_delay").run(graph)
    assert "M3D112" in {v.rule_id for v in violations}


def test_multi_delay_label_outside_fault_set_fails_m3d112():
    graph = get_scenario("multi_delay").generate(SPEC)[0]
    graph.meta["faults"] = [
        f for f in graph.meta["faults"]
        if graph.node_names.index(f["gate"]) != graph.fault_index
    ] or [{"gate": graph.node_names[0], "extra_delay": 1.0}]
    violations = build_scenario_engine("multi_delay").run(graph)
    assert "M3D112" in {v.rule_id for v in violations}


def test_single_delay_rejects_multi_fault_payload_m3d111():
    graph = get_scenario("multi_delay").generate(SPEC)[0]
    graph.meta["scenario"] = "single_delay"
    violations = build_scenario_engine("single_delay").run(graph)
    assert "M3D111" in {v.rule_id for v in violations}


def test_intermittent_bad_activation_prob_fails_m3d113():
    graph = get_scenario("intermittent_delay").generate(SPEC)[0]
    graph.meta["fault"]["activation_prob"] = 1.5
    violations = build_scenario_engine("intermittent_delay").run(graph)
    assert "M3D113" in {v.rule_id for v in violations}


def test_seu_mask_length_mismatch_fails_m3d114():
    graph = get_scenario("seu_bitflip").generate(SPEC)[0]
    graph.meta["seu"]["transient_mask"] = graph.meta["seu"]["transient_mask"][:-1]
    violations = build_scenario_engine("seu_bitflip").run(graph)
    assert "M3D114" in {v.rule_id for v in violations}


def test_seu_flip_site_must_be_masked_m3d114():
    graph = get_scenario("seu_bitflip").generate(SPEC)[0]
    graph.meta["seu"]["transient_mask"] = [0] * graph.num_nodes
    violations = build_scenario_engine("seu_bitflip").run(graph)
    assert "M3D114" in {v.rule_id for v in violations}


def test_aging_negative_drift_fails_m3d115():
    graph = get_scenario("aging_drift").generate(SPEC)[0]
    graph.meta["aging"]["drift"][0] = -0.1
    violations = build_scenario_engine("aging_drift").run(graph)
    assert "M3D115" in {v.rule_id for v in violations}


def test_aging_label_off_peak_fails_m3d115():
    graph = get_scenario("aging_drift").generate(SPEC)[0]
    drift = graph.meta["aging"]["drift"]
    drift[graph.fault_index] = 0.0
    violations = build_scenario_engine("aging_drift").run(graph)
    assert "M3D115" in {v.rule_id for v in violations}


# ------------------------------------------------------------ eval metrics


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_evaluate_returns_bounded_metrics(name):
    scenario = get_scenario(name)
    graphs = scenario.generate(SPEC)
    model = DelayFaultLocalizer(hidden=8, seed=1)
    metrics = scenario.evaluate(model, graphs, k=3)
    assert metrics, f"{name} returned no metrics"
    for key, value in metrics.items():
        assert isinstance(value, float)
        assert np.isfinite(value), f"{name}.{key} is not finite"
        if key != "pearson_r":  # correlation legitimately spans [-1, 1]
            assert 0.0 <= value <= 1.0 or key == "drift_mae", (name, key, value)


def test_perfect_model_hits_multi_delay_fault_set():
    scenario = get_scenario("multi_delay")
    graphs = scenario.generate(SPEC)

    class Oracle:
        def node_scores(self, graph, digest=None):
            scores = np.zeros(graph.num_nodes)
            names = list(graph.node_names)
            for fault in graph.meta["faults"]:
                scores[names.index(fault["gate"])] = 1.0
            return scores

    metrics = scenario.evaluate(Oracle(), graphs, k=4)
    assert metrics["coverage_at_k"] == 1.0
    assert metrics["hit_all_at_k"] == 1.0


def test_scenario_datasets_load_into_dataset_with_scenario_engine():
    graphs = get_scenario("aging_drift").generate(SPEC)
    dataset = CircuitGraphDataset.from_graphs(
        graphs, engine=build_scenario_engine("aging_drift")
    )
    assert len(dataset) == SPEC.n_graphs

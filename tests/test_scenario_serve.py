"""Scenario-aware serving: /localize round-trips, 422s, per-scenario metrics.

Every registered scenario must be servable end-to-end over a live socket;
the scenario gates the graph with its own composed engine, tags the result,
partitions the result cache, and shows up in the metrics registry.
"""

import http.client
import json
import threading

import pytest

from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.scenarios import ScenarioSpec, get_scenario, scenario_names
from m3d_fault_loc.serve.server import create_server
from m3d_fault_loc.serve.service import LocalizationService

SPEC = ScenarioSpec(n_graphs=1, n_gates=12, n_inputs=3, num_tiers=2, seed=31)


@pytest.fixture()
def live_server():
    service = LocalizationService(
        model=DelayFaultLocalizer(hidden=8, seed=4), batch_window_s=0.001
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        raw = response.read()
        if "json" in (response.getheader("Content-Type") or ""):
            return response.status, json.loads(raw)
        return response.status, raw.decode()
    finally:
        conn.close()


def test_every_scenario_round_trips_over_http(live_server):
    for name in scenario_names():
        graph = get_scenario(name).generate(SPEC)[0]
        status, body = request(
            live_server, "POST", "/localize",
            {"graph": graph.to_json_dict(), "top_k": 3, "scenario": name},
        )
        assert status == 200, (name, body)
        assert body["scenario"] == name
        assert len(body["top"]) == 3

    status, metrics = request(live_server, "GET", "/metrics?format=json")
    assert status == 200
    for name in scenario_names():
        assert metrics[f"m3d_scenario_requests_total_{name}"]["value"] == 1


def test_omitted_scenario_defaults_to_single_delay(live_server):
    graph = get_scenario("single_delay").generate(SPEC)[0]
    status, body = request(
        live_server, "POST", "/localize", {"graph": graph.to_json_dict()}
    )
    assert status == 200
    assert body["scenario"] == "single_delay"


def test_unknown_scenario_is_422_with_known_list(live_server):
    graph = get_scenario("single_delay").generate(SPEC)[0]
    status, body = request(
        live_server, "POST", "/localize",
        {"graph": graph.to_json_dict(), "scenario": "stuck_at_zero"},
    )
    assert status == 422
    assert body["error"] == "unknown_scenario"
    assert body["scenario"] == "stuck_at_zero"
    assert body["known"] == scenario_names()
    assert body["trace_id"]


def test_cross_tagged_graph_is_422_contract_violation(live_server):
    graph = get_scenario("seu_bitflip").generate(SPEC)[0]
    status, body = request(
        live_server, "POST", "/localize",
        {"graph": graph.to_json_dict(), "scenario": "aging_drift"},
    )
    assert status == 422
    assert body["error"] == "contract_violation"
    assert any(v["rule_id"] == "M3D110" for v in body["violations"])

    status, metrics = request(live_server, "GET", "/metrics?format=json")
    assert metrics["m3d_scenario_rejections_total_aging_drift"]["value"] == 1


def test_non_string_scenario_is_400(live_server):
    graph = get_scenario("single_delay").generate(SPEC)[0]
    for bad in (7, "", ["multi_delay"]):
        status, body = request(
            live_server, "POST", "/localize",
            {"graph": graph.to_json_dict(), "scenario": bad},
        )
        assert status == 400, bad
        assert body["error"] == "bad_request"


def test_result_cache_is_partitioned_by_scenario():
    service = LocalizationService(
        model=DelayFaultLocalizer(hidden=8, seed=4), batch_window_s=0.001
    )
    service.start()
    try:
        graph = get_scenario("single_delay").generate(SPEC)[0]  # untagged
        first = service.localize(graph, scenario="single_delay")
        cross = service.localize(graph, scenario="multi_delay")
        again = service.localize(graph, scenario="multi_delay")
        assert first.cached is False
        assert cross.cached is False  # same digest, different scenario key
        assert again.cached is True
        assert first.scenario == "single_delay"
        assert cross.scenario == "multi_delay"
    finally:
        service.close()

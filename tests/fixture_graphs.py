"""Fixture graphs for contract-checker tests.

Each ``make_*`` helper returns a graph seeded with exactly the defect its
name says (the clean base graph passes the full rule catalog). They are
built programmatically from the real builder so fixtures can't silently
drift from the schema.
"""

from __future__ import annotations

import numpy as np

from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.netlist import Gate, Netlist
from m3d_fault_loc.graph.schema import EDGE_NET, INDEX_DTYPE, NODE_DTYPE, CircuitGraph


def make_clean_graph(num_tiers: int = 2) -> CircuitGraph:
    """Small handcrafted 2-tier netlist: 2 PIs, AND, INV chain, 1 PO."""
    netlist = Netlist(name="clean", num_tiers=num_tiers)
    netlist.add_gate(Gate(name="pi0", cell="PI", fanins=(), tier=0, delay=0.0))
    netlist.add_gate(Gate(name="pi1", cell="PI", fanins=(), tier=1, delay=0.0))
    netlist.add_gate(Gate(name="g0", cell="AND2", fanins=("pi0", "pi1"), tier=0, delay=1.0))
    netlist.add_gate(Gate(name="g1", cell="INV", fanins=("g0",), tier=1, delay=0.8))
    netlist.primary_outputs = ("g1",)
    netlist.clock_period = 5.0
    return build_circuit_graph(netlist, fault_gate="g0")


def _node_index(graph: CircuitGraph, name: str) -> int:
    return graph.node_names.index(name)


def _append_edge(graph: CircuitGraph, src: str, dst: str, edge_type: int) -> CircuitGraph:
    u, v = _node_index(graph, src), _node_index(graph, dst)
    graph.edge_index = np.concatenate(
        [graph.edge_index, np.asarray([[u], [v]], dtype=INDEX_DTYPE)], axis=1
    )
    graph.edge_type = np.concatenate(
        [graph.edge_type, np.asarray([edge_type], dtype=INDEX_DTYPE)]
    )
    graph.edge_attr = np.concatenate(
        [graph.edge_attr, np.asarray([[0.02]], dtype=NODE_DTYPE)], axis=0
    )
    return graph


def make_cyclic_graph() -> CircuitGraph:
    """g1 feeds back into g0: a combinational timing loop (M3D101).

    The back-edge is typed as an MIV (g1 is on tier 1, g0 on tier 0) so the
    only broken invariant is acyclicity.
    """
    graph = make_clean_graph()
    graph.name = "cyclic"
    return _append_edge(graph, "g1", "g0", edge_type=1)


def make_dangling_graph() -> CircuitGraph:
    """An extra node with no fanin and no fanout (M3D102, both directions)."""
    graph = make_clean_graph()
    graph.name = "dangling"
    graph.node_names.append("orphan")
    graph.x = np.concatenate([graph.x, np.zeros((1, graph.x.shape[1]), dtype=NODE_DTYPE)])
    graph.tier = np.concatenate([graph.tier, np.asarray([0], dtype=INDEX_DTYPE)])
    graph.is_pi = np.concatenate([graph.is_pi, np.asarray([False])])
    graph.is_po = np.concatenate([graph.is_po, np.asarray([False])])
    return graph


def make_tier_out_of_range_graph() -> CircuitGraph:
    """One node claims tier 5 in a 2-tier stack (M3D103)."""
    graph = make_clean_graph()
    graph.name = "bad-tier"
    graph.tier = graph.tier.copy()
    graph.tier[_node_index(graph, "g1")] = 5
    return graph


def make_nonadjacent_miv_graph() -> CircuitGraph:
    """A 3-tier stack where an MIV edge spans tiers 0 -> 2 (M3D104)."""
    netlist = Netlist(name="nonadjacent-miv", num_tiers=3)
    netlist.add_gate(Gate(name="pi0", cell="PI", fanins=(), tier=0, delay=0.0))
    netlist.add_gate(Gate(name="g0", cell="BUF", fanins=("pi0",), tier=1, delay=1.0))
    netlist.add_gate(Gate(name="g1", cell="INV", fanins=("g0",), tier=2, delay=0.9))
    netlist.primary_outputs = ("g1",)
    netlist.clock_period = 5.0
    graph = build_circuit_graph(netlist)
    # Corrupt placement: hoist g0 to tier 0 so the g0->g1 MIV now spans 2 tiers.
    # The pi0->g0 edge collapses to intra-tier but keeps its MIV type, which is
    # fine for this fixture's target rule (span 0 is also not 1).
    graph.tier = graph.tier.copy()
    graph.tier[_node_index(graph, "g0")] = 0
    return graph


def make_crosstier_net_graph() -> CircuitGraph:
    """An intra-tier (NET) edge whose endpoints sit on different tiers (M3D105)."""
    graph = make_clean_graph()
    graph.name = "crosstier-net"
    # pi1 (tier 1) -> g0 (tier 0) is a legitimate MIV; mislabel it as NET.
    u, v = _node_index(graph, "pi1"), _node_index(graph, "g0")
    graph.edge_type = graph.edge_type.copy()
    for e in range(graph.num_edges):
        if int(graph.edge_index[0, e]) == u and int(graph.edge_index[1, e]) == v:
            graph.edge_type[e] = EDGE_NET
    return graph


def make_bad_dtype_graph() -> CircuitGraph:
    """Node features stored as float64 instead of the schema dtype (M3D106)."""
    graph = make_clean_graph()
    graph.name = "bad-dtype"
    graph.x = graph.x.astype(np.float64)
    return graph


def make_nonfinite_graph() -> CircuitGraph:
    """A NaN smuggled into the slack features (M3D107)."""
    graph = make_clean_graph()
    graph.name = "nonfinite"
    graph.x = graph.x.copy()
    graph.x[0, 1] = np.nan
    return graph


def make_high_fanout_graph(n_sinks: int = 4) -> CircuitGraph:
    """One driver fanning out to ``n_sinks`` loads (M3D108 with a low bound)."""
    netlist = Netlist(name="high-fanout", num_tiers=2)
    netlist.add_gate(Gate(name="pi0", cell="PI", fanins=(), tier=0, delay=0.0))
    for i in range(n_sinks):
        netlist.add_gate(Gate(name=f"g{i}", cell="BUF", fanins=("pi0",), tier=0, delay=1.0))
    netlist.primary_outputs = tuple(f"g{i}" for i in range(n_sinks))
    netlist.clock_period = 5.0
    return build_circuit_graph(netlist)


#: fixture factory -> the single rule id it must trip.
VIOLATION_FIXTURES = {
    make_cyclic_graph: "M3D101",
    make_dangling_graph: "M3D102",
    make_tier_out_of_range_graph: "M3D103",
    make_nonadjacent_miv_graph: "M3D104",
    make_crosstier_net_graph: "M3D105",
    make_bad_dtype_graph: "M3D106",
    make_nonfinite_graph: "M3D107",
}

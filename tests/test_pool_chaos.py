"""Worker-pool chaos: the 4-worker topology under deterministic faults.

The single-worker chaos suite (``test_chaos.py``) keeps passing unchanged —
``num_workers=1`` routes through the same pool machinery — so this suite
covers only what needs siblings to exist:

- digest sharding spreads distinct graphs across workers and every request
  completes (nothing silently dropped);
- killing worker *i* of *n* fails only its shard's futures (crash
  isolation), reroutes its traffic to siblings while the restart backs off,
  flips ``/healthz`` to ``degraded-k-of-n``, and recovers to ``ok``;
- stalling one shard restarts only that worker — sibling restart counters
  stay at zero;
- the pool-wide storm resolves every admitted request to a result or a
  structured, trace-id-carrying failure;
- the shed ``Retry-After`` is queue-depth derived and jittered within ±20 %
  (bounds asserted, never the exact value);
- drain during a concurrent hot reload neither serves a half-loaded model
  nor strands futures.
"""

import threading
import time

import numpy as np
import pytest

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.cache import graph_digest
from m3d_fault_loc.serve.registry import ModelRegistry
from m3d_fault_loc.serve.resilience import (
    ExponentialBackoff,
    LoadSheddedError,
    ServiceDrainingError,
    WorkerCrashedError,
    jittered,
)
from m3d_fault_loc.serve.service import LocalizationService
from m3d_fault_loc.testing.chaos import (
    CrashShardWorkerModel,
    SlowBatchModel,
    StallShardModel,
)

POOL = 4


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(11)
    return synthesize_fault_dataset(rng, n_graphs=16, n_gates=12, n_inputs=3)


def base_model():
    return DelayFaultLocalizer(hidden=8, seed=2)


def make_pool(model, **kwargs):
    kwargs.setdefault("num_workers", POOL)
    kwargs.setdefault("batch_window_s", 0.001)
    kwargs.setdefault("watchdog_interval_s", 0.03)
    kwargs.setdefault(
        "restart_backoff", ExponentialBackoff(base_s=0.01, factor=2.0, max_s=0.05)
    )
    kwargs.setdefault("drain_deadline_s", 2.0)
    return LocalizationService(model=model, **kwargs)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def shard_of(service, graph):
    return int(graph_digest(graph)[:8], 16) % service.num_workers


def graph_on_shard(graphs, service, shard):
    for g in graphs:
        if shard_of(service, g) == shard:
            return g
    pytest.skip(f"no fixture graph hashes to shard {shard}")


# -- topology basics --------------------------------------------------------


def test_digest_sharding_spreads_and_everything_completes(graphs):
    with make_pool(base_model(), cache_size=1) as service:
        for g in graphs:
            result = service.localize(g, timeout_s=5.0)
            assert result.num_nodes == g.num_nodes
        shards = {shard_of(service, g) for g in graphs}
        assert len(shards) > 1, "16 distinct graphs should span multiple shards"
        busy = [i for i in range(POOL) if service.m_worker_batches[i].value > 0]
        assert set(busy) == shards
        pool = service.pool_snapshot()
        assert pool["state"] == "ok"
        assert pool["alive"] == POOL


def test_single_worker_pool_keeps_legacy_queue_surface(graphs):
    with make_pool(base_model(), num_workers=1) as service:
        assert service._queue is service._shards[0].queue
        service.localize(graphs[0], timeout_s=5.0)
        assert service.queue_depth() == 0


def test_repeat_digest_routes_to_same_shard(graphs):
    with make_pool(base_model(), cache_size=1) as service:
        g = graphs[0]
        home = shard_of(service, g)
        for _ in range(3):
            service.localize(g, timeout_s=5.0)
        others = [
            i for i in range(POOL)
            if i != home and service.m_worker_batches[i].value > 0
        ]
        assert others == [], "repeat topology must stay on its home shard"


# -- crash isolation --------------------------------------------------------


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_kill_worker_i_of_n_is_isolated_and_recovers(graphs):
    victim_shard = 0
    model = CrashShardWorkerModel(base_model(), target_shard=victim_shard, crash_on=1)
    with make_pool(model, cache_size=1) as service:
        victim_graph = graph_on_shard(graphs, service, victim_shard)
        with pytest.raises(WorkerCrashedError):
            service.localize(victim_graph, timeout_s=5.0)

        # Sibling shards never noticed: their requests succeed throughout.
        for g in graphs:
            if shard_of(service, g) != victim_shard:
                assert service.localize(g, timeout_s=5.0).num_nodes == g.num_nodes

        # Pool health degraded while the victim's restart is pending...
        assert wait_until(
            lambda: service.pool_snapshot()["state"].startswith("degraded")
            or service.pool_snapshot()["state"] == "ok",
            timeout=2.0,
        )
        # ...and the watchdog restart brings it back to ok, after which the
        # victim shard serves again (the shim only kills its first call).
        assert wait_until(lambda: service.pool_snapshot()["state"] == "ok", timeout=3.0)
        result = service.localize(victim_graph, timeout_s=5.0)
        assert result.num_nodes == victim_graph.num_nodes
        assert service.m_worker_restart_by[victim_shard].value >= 1
        for i in range(POOL):
            if i != victim_shard:
                assert service.m_worker_restart_by[i].value == 0


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_rerouted_shard_serves_from_sibling_in_degraded_mode(graphs):
    victim_shard = 0
    # Long backoff keeps the victim shard rerouted while we probe it.
    model = CrashShardWorkerModel(
        base_model(), target_shard=victim_shard, crash_on=1, crash_count=1
    )
    with make_pool(
        model,
        cache_size=1,
        restart_backoff=ExponentialBackoff(base_s=0.5, factor=2.0, max_s=1.0),
    ) as service:
        victim_graph = graph_on_shard(graphs, service, victim_shard)
        with pytest.raises(WorkerCrashedError):
            service.localize(victim_graph, timeout_s=5.0)
        assert wait_until(lambda: service._shards[victim_shard].rerouted, timeout=2.0)

        # The same digest now lands on a sibling — and succeeds, because the
        # shim only sabotages the victim shard's worker thread.
        result = service.localize(victim_graph, timeout_s=5.0)
        assert result.num_nodes == victim_graph.num_nodes
        assert service.m_rerouted.value >= 1
        snapshot = service.pool_snapshot()
        assert snapshot["state"].startswith("degraded")
        assert victim_shard in snapshot["rerouted_shards"]
        # Recovery: backoff matures, the watchdog respawns, reroute clears.
        assert wait_until(lambda: service.pool_snapshot()["state"] == "ok", timeout=4.0)


def test_stall_one_shard_restarts_only_that_worker(graphs):
    victim_shard = 1
    model = StallShardModel(base_model(), target_shard=victim_shard)
    with make_pool(model, cache_size=1, stall_timeout_s=0.1) as service:
        victim_graph = graph_on_shard(graphs, service, victim_shard)
        results = {}

        def call():
            try:
                results["victim"] = service.localize(victim_graph, timeout_s=5.0)
            except Exception as exc:
                results["victim"] = exc

        thread = threading.Thread(target=call, daemon=True)
        thread.start()
        assert wait_until(lambda: model.stalled_calls >= 1, timeout=3.0)
        # Healthy siblings keep serving at full speed while shard 1 is wedged.
        for g in graphs[:6]:
            if shard_of(service, g) != victim_shard:
                service.localize(g, timeout_s=5.0)
        assert wait_until(
            lambda: service.m_worker_restart_by[victim_shard].value >= 1, timeout=3.0
        )
        model.release()
        thread.join(timeout=5.0)
        assert isinstance(results["victim"], WorkerCrashedError)
        for i in range(POOL):
            if i != victim_shard:
                assert service.m_worker_restart_by[i].value == 0


# -- nothing silently dropped ----------------------------------------------


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_storm_with_shard_kill_resolves_every_request(graphs):
    model = CrashShardWorkerModel(base_model(), target_shard=0, crash_on=2)
    with make_pool(model, cache_size=1, max_queue=256) as service:
        results: dict[int, object] = {}
        threads = []
        for i in range(32):
            g = graphs[i % len(graphs)]

            def call(key=i, graph=g):
                try:
                    results[key] = service.localize(graph, timeout_s=5.0)
                except Exception as exc:
                    results[key] = exc

            t = threading.Thread(target=call, daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join(timeout=10.0)
        assert len(results) == 32, "every admitted request must resolve"
        crashed = [r for r in results.values() if isinstance(r, WorkerCrashedError)]
        ok = [r for r in results.values() if not isinstance(r, Exception)]
        assert len(ok) + len(crashed) == 32, f"unexpected outcomes: {results}"
        assert ok, "sibling shards must keep serving through the kill"


# -- jittered, queue-derived Retry-After ------------------------------------


def test_jittered_bounds_and_validation():
    values = [jittered(2.0) for _ in range(200)]
    assert all(1.6 <= v <= 2.4 for v in values), "±20% bounds"
    assert len(set(values)) > 1, "jitter must actually vary"
    assert jittered(0.0) == 0.0
    with pytest.raises(ValueError):
        jittered(-1.0)
    with pytest.raises(ValueError):
        jittered(1.0, fraction=1.0)


def test_shed_retry_after_scales_with_queue_depth(graphs):
    model = SlowBatchModel(base_model(), delay_s=0.5, slow_calls=None)
    with make_pool(
        model, num_workers=1, cache_size=1, max_queue=2, max_batch=1,
        shed_retry_after_s=1.0,
    ) as service:
        g0, g1, g2 = graphs[0], graphs[1], graphs[2]
        threads = [
            threading.Thread(
                target=lambda g=g: _swallow(service, g), daemon=True
            )
            for g in (g0, g1, g2)
        ]
        for t in threads:
            t.start()
        # One request occupies the worker, two fill max_queue=2; the next
        # must shed with a depth-derived, jittered hint: base 1.0s scaled by
        # (1 + depth/max_queue) ∈ [1, 2], jittered ±20% → [0.8, 2.4].
        assert wait_until(lambda: service.queue_depth() >= 2, timeout=3.0)
        hints = []
        for _ in range(5):
            try:
                service.localize(graphs[3], timeout_s=0.05)
            except LoadSheddedError as exc:
                hints.append(exc.retry_after_s)
            except Exception:
                pass
        assert hints, "a full queue must shed"
        assert all(0.8 <= h <= 2.4 for h in hints), hints
        # Depth 2 of 2 → scale factor 2.0 → lower bound with jitter is 1.6.
        assert max(hints) >= 1.0
        for t in threads:
            t.join(timeout=5.0)


def _swallow(service, graph):
    try:
        service.localize(graph, timeout_s=5.0)
    except Exception:
        pass


# -- drain under concurrent hot reload --------------------------------------


def test_drain_during_active_pointer_swap_is_clean(tmp_path, graphs):
    """SIGTERM mid-reload: no half-loaded model served, no stranded future.

    A writer thread flips the registry ACTIVE pointer in a tight loop while
    clients localize and the service drains. Every future must resolve —
    to a result carrying a *complete* model identity (name/version pair
    that was actually published) or to a structured draining error — and
    the service must end up draining with an empty pipeline.
    """
    registry = ModelRegistry(tmp_path / "registry")
    v1 = registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    v2 = registry.publish(DelayFaultLocalizer(hidden=4, seed=1), activate=False)
    published = {(v1.name, v1.version), (v2.name, v2.version)}

    service = LocalizationService(
        registry=registry,
        batch_window_s=0.001,
        watchdog_interval_s=0.03,
        num_workers=2,
        drain_deadline_s=2.0,
    )
    service.start()
    stop_flipping = threading.Event()

    def flip():
        flip_to = [(v2.name, v2.version), (v1.name, v1.version)]
        i = 0
        while not stop_flipping.is_set():
            name, version = flip_to[i % 2]
            registry.activate(name, version)
            i += 1

    flipper = threading.Thread(target=flip, daemon=True)
    flipper.start()

    results: dict[int, object] = {}
    threads = []
    for i in range(24):
        g = graphs[i % len(graphs)]

        def call(key=i, graph=g):
            try:
                results[key] = service.localize(graph, timeout_s=5.0)
            except Exception as exc:
                results[key] = exc

        t = threading.Thread(target=call, daemon=True)
        t.start()
        threads.append(t)
        if i == 12:
            service.begin_drain()  # SIGTERM lands mid-traffic, mid-swap

    report = service.await_drain(2.0)
    stop_flipping.set()
    flipper.join(timeout=5.0)
    for t in threads:
        t.join(timeout=5.0)

    assert len(results) == 24, "every request must resolve during drain"
    for key, outcome in results.items():
        if isinstance(outcome, Exception):
            assert isinstance(outcome, (ServiceDrainingError, WorkerCrashedError)), (
                key,
                outcome,
            )
        else:
            # Never a half-loaded identity: the (name, version) pair must be
            # one that was actually published, never a mix of two swaps.
            assert (outcome.model_name, outcome.model_version) in published
    assert service.queue_depth() == 0
    assert report["failed"] >= 0
    assert service.health_snapshot()["status"] == "draining"
    service.close()

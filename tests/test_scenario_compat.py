"""Backward-compat guard: the pre-scenario serve path must not move.

``tests/golden/localize_no_scenario.json`` was captured against the serve
stack *before* the scenario platform landed (same model seed, same request).
A request with no ``scenario`` field must reproduce that response today —
same ranking, same scores, same digest, same model version — with the new
``scenario`` key as the only addition.
"""

import http.client
import json
import threading
from pathlib import Path

import pytest

from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.server import create_server
from m3d_fault_loc.serve.service import LocalizationService

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "localize_no_scenario.json").read_text()
)

#: Response keys that legitimately vary run to run.
VOLATILE = {"latency_ms", "trace_id"}


@pytest.fixture()
def live_server():
    # Mirror the capture configuration exactly (see "captured_from" in the
    # golden file): hidden=8, seed=0, 1 ms batch window.
    service = LocalizationService(
        model=DelayFaultLocalizer(hidden=8, seed=0), batch_window_s=0.001
    )
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


def post_localize(server, payload):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        conn.request("POST", "/localize", body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def assert_matches_golden(body):
    expected = GOLDEN["response"]
    assert set(body) - set(expected) <= {"scenario"}, "unexpected new response keys"
    for key in expected:
        if key in VOLATILE:
            assert key in body
        elif key == "top":
            assert len(body["top"]) == len(expected["top"])
            for got, want in zip(body["top"], expected["top"]):
                assert got["node"] == want["node"]
                assert got["index"] == want["index"]
                assert got["tier"] == want["tier"]
                assert got["score"] == pytest.approx(want["score"], rel=1e-9)
                assert got["prob"] == pytest.approx(want["prob"], rel=1e-9)
        else:
            assert body[key] == expected[key], key


def test_golden_request_replays_without_scenario_field(live_server):
    status, body = post_localize(live_server, GOLDEN["request"])
    assert status == 200
    assert_matches_golden(body)
    assert body["scenario"] == "single_delay"


def test_explicit_single_delay_equals_default(live_server):
    payload = dict(GOLDEN["request"])
    status, default_body = post_localize(live_server, payload)
    assert status == 200
    status, explicit_body = post_localize(
        live_server, {**payload, "scenario": "single_delay"}
    )
    assert status == 200
    # Second call is a cache hit under the same (scenario, top_k, digest) key:
    # the explicit name and the default resolve to the identical cache entry.
    assert explicit_body["cached"] is True
    for key in set(default_body) - VOLATILE - {"cached"}:
        assert default_body[key] == explicit_body[key], key


def test_golden_graph_still_parses_and_gates():
    graph = CircuitGraph.from_json_dict(GOLDEN["request"]["graph"])
    assert graph.num_nodes == GOLDEN["response"]["num_nodes"]

"""Model registry: versioning, checksums, atomic activation, tamper refusal."""

import numpy as np
import pytest

from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry, ModelRegistryError


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def test_publish_assigns_sequential_versions(registry):
    m1 = registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    m2 = registry.publish(DelayFaultLocalizer(hidden=4, seed=1))
    assert (m1.version, m2.version) == ("v0001", "v0002")
    assert registry.list_versions("localizer") == ["v0001", "v0002"]
    assert registry.list_models() == ["localizer"]


def test_publish_activates_latest_by_default(registry):
    registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    manifest = registry.publish(DelayFaultLocalizer(hidden=4, seed=1))
    assert registry.active_ref() == ("localizer", manifest.version)


def test_duplicate_version_refused(registry):
    registry.publish(DelayFaultLocalizer(hidden=4), version="v1")
    with pytest.raises(ModelRegistryError, match="already published"):
        registry.publish(DelayFaultLocalizer(hidden=4), version="v1")


def test_path_traversal_components_refused(registry):
    with pytest.raises(ModelRegistryError, match="invalid"):
        registry.publish(DelayFaultLocalizer(hidden=4), name="../evil")
    with pytest.raises(ModelRegistryError, match="invalid"):
        registry.publish(DelayFaultLocalizer(hidden=4), version="a/b")


def test_load_active_roundtrips_weights_and_metadata(registry):
    model = DelayFaultLocalizer(hidden=4, seed=3)
    registry.publish(model, metadata={"trained_on": "synthetic"})
    loaded, manifest = registry.load_active()
    for key in model.params:
        assert np.array_equal(loaded.params[key], model.params[key])
    assert manifest.metadata == {"trained_on": "synthetic"}
    assert loaded.artifact_meta == {"trained_on": "synthetic"}
    assert manifest.in_dim == model.in_dim and manifest.hidden == 4


def test_tampered_artifact_refused(registry):
    manifest = registry.publish(DelayFaultLocalizer(hidden=4))
    artifact = registry.root / "models" / manifest.name / manifest.version / "model.npz"
    artifact.write_bytes(artifact.read_bytes() + b"corruption")
    with pytest.raises(ModelRegistryError, match="checksum mismatch"):
        registry.load_active()


def test_activate_requires_existing_verified_version(registry):
    with pytest.raises(ModelRegistryError, match="no such model version"):
        registry.activate("localizer", "v9999")


def test_active_ref_none_before_first_activation(registry):
    assert registry.active_ref() is None
    with pytest.raises(ModelRegistryError, match="no active model"):
        registry.load_active()


def test_activation_can_roll_back(registry):
    first = registry.publish(DelayFaultLocalizer(hidden=4, seed=0))
    registry.publish(DelayFaultLocalizer(hidden=4, seed=1))
    registry.activate(first.name, first.version)
    _, manifest = registry.load_active()
    assert manifest.version == first.version

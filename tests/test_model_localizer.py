"""Localizer model: gradients, learning, persistence, determinism."""

import numpy as np
import pytest

from m3d_fault_loc.cli.train import localization_accuracy, train
from m3d_fault_loc.data.dataset import CircuitGraphDataset
from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer, in_neighbor_mean


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    return CircuitGraphDataset.from_graphs(
        synthesize_fault_dataset(rng, n_graphs=80, n_gates=25, n_inputs=5)
    )


def test_in_neighbor_mean_rows(dataset):
    graph = dataset[0]
    m = in_neighbor_mean(graph)
    rows = np.asarray(m.sum(axis=1)).ravel()
    indeg = graph.in_degrees()
    assert np.allclose(rows[indeg > 0], 1.0)
    assert np.allclose(rows[indeg == 0], 0.0)


def test_gradients_match_finite_differences(dataset):
    graph = dataset[0]
    model = DelayFaultLocalizer(hidden=8, seed=3)
    loss, grads = model.loss_and_grads(graph)
    rng = np.random.default_rng(1)
    eps = 1e-6
    for key in ("W1n", "W2s", "w3", "b1"):
        param = model.params[key]
        idx = tuple(rng.integers(s) for s in param.shape)
        param[idx] += eps
        loss_plus, _ = model.loss_and_grads(graph)
        param[idx] -= 2 * eps
        loss_minus, _ = model.loss_and_grads(graph)
        param[idx] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert grads[key][idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7), key


def test_training_beats_untrained_baseline(dataset):
    rng = np.random.default_rng(2)
    untrained = DelayFaultLocalizer(hidden=16, seed=0)
    baseline = localization_accuracy(untrained, dataset)
    model = train(dataset, rng, epochs=12, batch_size=8, hidden=16, seed=0, log=None)
    trained = localization_accuracy(model, dataset)
    chance = 1.0 / dataset[0].num_nodes
    assert trained >= 0.5
    assert trained > max(baseline, chance) + 0.2


def test_unlabeled_graph_rejected_for_training(dataset):
    graph = dataset[0]
    stripped = type(graph)(**{**graph.__dict__, "fault_index": None})
    with pytest.raises(ValueError, match="no fault label"):
        DelayFaultLocalizer(hidden=8).loss_and_grads(stripped)


@pytest.mark.parametrize(
    ("requested", "written"),
    [
        ("model.npz", "model.npz"),  # canonical suffix kept as-is
        ("model", "model.npz"),  # suffix-less gets .npz appended
        ("model.bin", "model.bin.npz"),  # foreign suffix preserved, .npz appended
    ],
)
def test_save_load_roundtrip(tmp_path, dataset, requested, written):
    model = DelayFaultLocalizer(hidden=8, seed=5)
    path = model.save(tmp_path / requested)
    assert path == tmp_path / written
    assert path.exists()
    assert sorted(p.name for p in tmp_path.iterdir()) == [written]
    reloaded = DelayFaultLocalizer.load(path)
    graph = dataset[0]
    assert np.allclose(model.node_scores(graph), reloaded.node_scores(graph))
    assert reloaded.hidden == 8


def test_save_load_carries_artifact_metadata(tmp_path):
    model = DelayFaultLocalizer(hidden=8, seed=5)
    path = model.save(tmp_path / "model.npz", metadata={"epochs": 12, "note": "unit"})
    reloaded = DelayFaultLocalizer.load(path)
    assert reloaded.artifact_meta == {"epochs": 12, "note": "unit"}


def test_batch_inference_matches_per_graph_exactly(dataset):
    """predict_batch / node_scores_batch are the same floats, not approximations."""
    model = DelayFaultLocalizer(hidden=16, seed=7)
    graphs = [dataset[i] for i in range(6)]
    batched = model.node_scores_batch(graphs)
    assert len(batched) == len(graphs)
    for graph, scores in zip(graphs, batched, strict=True):
        assert scores.shape == (graph.num_nodes,)
        assert np.array_equal(scores, model.node_scores(graph))
    assert model.predict_batch(graphs) == [model.predict(g) for g in graphs]
    assert model.predict_batch([]) == []


def test_batch_inference_matches_on_fixture_graphs():
    from fixture_graphs import make_clean_graph, make_high_fanout_graph

    model = DelayFaultLocalizer(hidden=8, seed=1)
    graphs = [make_clean_graph(), make_high_fanout_graph(n_sinks=4), make_clean_graph(3)]
    for graph, scores in zip(graphs, model.node_scores_batch(graphs), strict=True):
        assert np.array_equal(scores, model.node_scores(graph))


def test_same_seed_same_init():
    a = DelayFaultLocalizer(hidden=8, seed=9)
    b = DelayFaultLocalizer(hidden=8, seed=9)
    for key in a.params:
        assert np.array_equal(a.params[key], b.params[key])


def test_single_graph_batch_falls_through_to_node_scores(dataset):
    model = DelayFaultLocalizer(hidden=8, seed=4)
    graph = dataset[0]
    (plain,) = model.node_scores_batch([graph])
    assert np.array_equal(plain, model.node_scores(graph))
    (keyed,) = model.node_scores_batch([graph], digests=["req-digest"])
    assert np.array_equal(keyed, plain)
    stats = model.agg_cache.stats()
    assert stats["size"] <= 2  # one topology key + one request-digest key


def test_scratch_buffer_reuse_never_changes_scores(dataset):
    """Consecutive forwards of different sizes through one model (reusing and
    reallocating the thread-local scratch) match a fresh model per call."""
    warm = DelayFaultLocalizer(hidden=8, seed=6)
    order = [dataset[0], dataset[1], dataset[0], dataset[2], dataset[0]]
    for graph in order:
        fresh = DelayFaultLocalizer(hidden=8, seed=6)
        assert np.array_equal(warm.node_scores(graph), fresh.node_scores(graph))


def test_digest_keyed_scoring_hits_operator_cache(dataset):
    model = DelayFaultLocalizer(hidden=8, seed=4)
    graph = dataset[0]
    first = model.node_scores(graph, digest="request-digest")
    assert model.agg_cache.stats()["hits"] == 0
    second = model.node_scores(graph, digest="request-digest")
    assert model.agg_cache.stats()["hits"] == 1
    assert np.array_equal(first, second)


def test_float32_precision_tracks_float64_within_tolerance(dataset):
    f64 = DelayFaultLocalizer(hidden=16, seed=7)
    f32 = DelayFaultLocalizer(hidden=16, seed=7, precision="float32")
    for graph in (dataset[0], dataset[1]):
        exact = f64.node_scores(graph)
        approx = f32.node_scores(graph)
        assert approx.dtype == np.float32
        np.testing.assert_allclose(approx, exact, rtol=1e-4, atol=1e-4)
    batched = f32.node_scores_batch([dataset[0], dataset[1]])
    for graph, scores in zip((dataset[0], dataset[1]), batched):
        assert np.array_equal(scores, f32.node_scores(graph))


def test_set_precision_validates_and_resnapshots(dataset):
    model = DelayFaultLocalizer(hidden=8, seed=7, precision="float32")
    with pytest.raises(ValueError, match="precision"):
        model.set_precision("float16")
    graph = dataset[0]
    before = model.node_scores(graph)
    model.params["b3"] += 1.0  # float32 forward reads a stale snapshot...
    assert np.array_equal(model.node_scores(graph), before)
    model.set_precision("float32")  # ...until the snapshot is refreshed
    np.testing.assert_allclose(model.node_scores(graph), before + np.float32(1.0))


def test_float64_forward_sees_in_place_param_updates(dataset):
    """The default precision computes on params directly — an optimizer step
    is visible with no re-snapshot, matching pre-precision-knob behavior."""
    model = DelayFaultLocalizer(hidden=8, seed=7)
    graph = dataset[0]
    before = model.node_scores(graph)
    model.params["b3"] += 1.0
    assert np.allclose(model.node_scores(graph), before + 1.0)

"""Aggregation-operator cache: exactness, collision safety, memory bounds.

The serving stack's exact batched-vs-single parity promise survives the
cache only if a cached operator is byte-identical to a fresh build, and the
segment-offset stack is byte-identical to ``scipy.sparse.block_diag``. Both
are asserted here at the array level, then end-to-end through the model.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.aggregate import (
    AggregationOperatorCache,
    build_in_neighbor_mean,
    operator_nbytes,
    stack_block_diagonal,
    topology_digest,
)
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.cache import graph_digest


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(11)
    return synthesize_fault_dataset(rng, n_graphs=50, n_gates=20, n_inputs=4)


def _same_csr(a: sp.csr_matrix, b: sp.csr_matrix) -> bool:
    return (
        a.shape == b.shape
        and np.array_equal(a.data, b.data)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.indptr, b.indptr)
    )


# -- exactness --------------------------------------------------------------


def test_cached_operator_is_byte_identical_to_fresh_build(graphs):
    cache = AggregationOperatorCache()
    for graph in graphs:
        cached = cache.get_or_build(graph)
        again = cache.get_or_build(graph)
        assert again is cached  # second call is a hit, not a rebuild
        assert _same_csr(cached, build_in_neighbor_mean(graph))
    assert cache.stats()["hits"] == len(graphs)
    assert cache.stats()["misses"] == len(graphs)


def test_stack_block_diagonal_matches_scipy_exactly(graphs):
    ops = [build_in_neighbor_mean(g) for g in graphs[:7]]
    stacked = stack_block_diagonal(ops)
    reference = sp.block_diag(ops, format="csr")
    assert _same_csr(stacked, reference)


def test_stack_block_diagonal_handles_edgeless_blocks():
    # an edgeless graph yields an all-zero operator block
    empty = sp.csr_matrix((3, 3))
    dense = build_in_neighbor_mean_from_random(seed=4)
    stacked = stack_block_diagonal([empty, dense, empty])
    reference = sp.block_diag([empty, dense, empty], format="csr")
    assert _same_csr(stacked, reference)


def build_in_neighbor_mean_from_random(seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    graph = synthesize_fault_dataset(rng, n_graphs=1, n_gates=10, n_inputs=3)[0]
    return build_in_neighbor_mean(graph)


def test_model_scores_identical_with_and_without_cache(graphs):
    """Exact score parity between cached and freshly-built operators, across
    50 randomized graphs — the correctness gate for the whole optimization."""
    cached_model = DelayFaultLocalizer(hidden=16, seed=3)
    fresh_model = DelayFaultLocalizer(hidden=16, seed=3)
    for graph in graphs:
        cached_first = cached_model.node_scores(graph)
        fresh_model.agg_cache.clear()  # defeat the cache: rebuild every time
        fresh = fresh_model.node_scores(graph)
        assert np.array_equal(cached_first, fresh)
        assert np.array_equal(cached_model.node_scores(graph), fresh)  # warm hit


def test_batch_operator_with_request_digests_matches_topology_keyed(graphs):
    batch = graphs[:6]
    digests = [graph_digest(g) for g in batch]
    by_digest = AggregationOperatorCache().batch_operator(batch, digests=digests)
    by_topology = AggregationOperatorCache().batch_operator(batch)
    assert _same_csr(by_digest, by_topology)


def test_batch_operator_digest_count_mismatch_rejected(graphs):
    with pytest.raises(ValueError, match="digests"):
        AggregationOperatorCache().batch_operator(graphs[:3], digests=["only-one"])


# -- collision safety -------------------------------------------------------


def test_topology_digest_ignores_features_and_labels(graphs):
    graph = graphs[0]
    relabeled = type(graph)(
        **{
            **graph.__dict__,
            "x": graph.x + np.float32(1.0),
            "fault_index": None,
            "name": "renamed",
        }
    )
    assert topology_digest(relabeled) == topology_digest(graph)
    assert graph_digest(relabeled) != graph_digest(graph)


def test_topology_digest_distinguishes_different_edges(graphs):
    graph = graphs[0]
    flipped = type(graph)(
        **{**graph.__dict__, "edge_index": graph.edge_index[::-1].copy()}
    )
    assert topology_digest(flipped) != topology_digest(graph)


def test_distinct_topologies_never_share_an_entry(graphs):
    cache = AggregationOperatorCache()
    seen: dict[str, int] = {}
    for graph in graphs:
        key = topology_digest(graph)
        op = cache.get_or_build(graph)
        assert _same_csr(op, build_in_neighbor_mean(graph))
        if key in seen:
            assert seen[key] == graph.num_nodes
        seen[key] = graph.num_nodes


def test_caller_digest_and_dtype_partition_the_key_space(graphs):
    cache = AggregationOperatorCache()
    graph = graphs[0]
    cache.get_or_build(graph, digest="digest-a")
    cache.get_or_build(graph, digest="digest-b")
    cache.get_or_build(graph, dtype=np.float32, digest="digest-a")
    assert len(cache) == 3  # distinct keys, no cross-dtype or cross-digest hits
    assert cache.get_or_build(graph, digest="digest-a").dtype == np.float64
    assert cache.get_or_build(graph, dtype=np.float32, digest="digest-a").dtype == np.float32
    assert cache.stats()["hits"] == 2


# -- LRU eviction under the memory bound ------------------------------------


def test_lru_evicts_under_byte_bound(graphs):
    ops = [build_in_neighbor_mean(g) for g in graphs[:10]]
    budget = sum(operator_nbytes(op) for op in ops[:3])
    cache = AggregationOperatorCache(capacity_bytes=budget)
    for graph in graphs[:10]:
        cache.get_or_build(graph)
        assert cache.stats()["bytes"] <= budget
    stats = cache.stats()
    assert stats["evictions"] > 0
    assert 0 < stats["size"] < 10


def test_lru_evicts_oldest_first(graphs):
    ops = [build_in_neighbor_mean(g) for g in graphs[:3]]
    # fits any two of the three operators, but never all three
    budget = sum(operator_nbytes(op) for op in ops) - 1
    cache = AggregationOperatorCache(capacity_bytes=budget)
    cache.get_or_build(graphs[0])
    cache.get_or_build(graphs[1])
    cache.get_or_build(graphs[0])  # refresh 0 so 1 is now LRU
    cache.get_or_build(graphs[2])  # must evict 1, not 0
    hits_before = cache.stats()["hits"]
    cache.get_or_build(graphs[0])
    assert cache.stats()["hits"] == hits_before + 1


def test_operator_larger_than_budget_served_but_not_retained(graphs):
    cache = AggregationOperatorCache(capacity_bytes=1)
    op = cache.get_or_build(graphs[0])
    assert _same_csr(op, build_in_neighbor_mean(graphs[0]))
    assert len(cache) == 0
    assert cache.stats()["bytes"] == 0


def test_max_entries_bound_enforced(graphs):
    cache = AggregationOperatorCache(max_entries=4)
    for graph in graphs[:12]:
        cache.get_or_build(graph, digest=graph_digest(graph))
    assert len(cache) <= 4
    assert cache.stats()["evictions"] >= 8


def test_clear_resets_bytes(graphs):
    cache = AggregationOperatorCache()
    for graph in graphs[:5]:
        cache.get_or_build(graph)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["bytes"] == 0


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError, match="capacity_bytes"):
        AggregationOperatorCache(capacity_bytes=0)
    with pytest.raises(ValueError, match="max_entries"):
        AggregationOperatorCache(max_entries=0)

"""Metrics instruments: semantics, registry idempotence, both export formats."""

import sys
from pathlib import Path

import pytest

from m3d_fault_loc.serve.metrics import Histogram, MetricsRegistry

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from check_prom import check_exposition  # noqa: E402 - scripts/ is not a package


def test_counter_monotonic():
    m = MetricsRegistry()
    c = m.counter("m3d_test_total", "things")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_sets_point_in_time():
    g = MetricsRegistry().gauge("m3d_depth")
    g.set(7)
    g.set(2)
    assert g.value == 2


def test_histogram_buckets_are_cumulative():
    h = MetricsRegistry().histogram("m3d_lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.555)


def test_registration_idempotent_but_kind_checked():
    m = MetricsRegistry()
    assert m.counter("m3d_x") is m.counter("m3d_x")
    with pytest.raises(ValueError, match="already registered"):
        m.gauge("m3d_x")


def test_prometheus_rendering():
    m = MetricsRegistry()
    m.counter("m3d_reqs_total", "requests").inc(2)
    m.histogram("m3d_lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = m.render_prometheus()
    assert "# HELP m3d_reqs_total requests" in text
    assert "# TYPE m3d_reqs_total counter" in text
    assert "m3d_reqs_total 2" in text
    assert 'm3d_lat_seconds_bucket{le="0.1"} 1' in text
    assert 'm3d_lat_seconds_bucket{le="+Inf"} 1' in text
    assert "m3d_lat_seconds_count 1" in text


def test_json_export_shape():
    m = MetricsRegistry()
    m.counter("m3d_a_total").inc()
    m.histogram("m3d_b", buckets=(1.0,)).observe(0.5)
    payload = m.to_json_dict()
    assert payload["m3d_a_total"] == {"type": "counter", "help": "", "value": 1}
    assert payload["m3d_b"]["type"] == "histogram"
    assert payload["m3d_b"]["buckets"]["+Inf"] == 1


# -- empty / single-observation histograms ---------------------------------


def test_empty_histogram_snapshot_and_exposition_are_valid():
    h = Histogram("m3d_empty_seconds", "never observed", buckets=(0.1, 1.0))
    snap = h.snapshot()
    assert snap == {"buckets": {"0.1": 0, "1": 0, "+Inf": 0}, "sum": 0.0, "count": 0}
    lines = h.render_prometheus()
    assert 'm3d_empty_seconds_bucket{le="+Inf"} 0' in lines
    assert "m3d_empty_seconds_sum 0" in lines
    assert "m3d_empty_seconds_count 0" in lines
    assert h.percentile(99.0) == 0.0


def test_single_observation_histogram_accounting():
    h = Histogram("m3d_one_seconds", "one sample", buckets=(0.1, 1.0))
    h.observe(0.25)
    snap = h.snapshot()
    assert snap["buckets"] == {"0.1": 0, "1": 1, "+Inf": 1}
    assert snap["sum"] == pytest.approx(0.25)
    assert snap["count"] == 1
    # one sample: every percentile is that sample, exactly — no bucket smearing
    assert h.percentile(50.0) == pytest.approx(0.25)
    assert h.percentile(99.0) == pytest.approx(0.25)


def test_histogram_percentile_interpolates_within_buckets():
    h = Histogram("m3d_p_seconds", "", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):
        h.observe(v)
    # p50 target rank = 2: one sample below the (1, 2] bucket, so the
    # estimate lands halfway through it
    assert h.percentile(50.0) == pytest.approx(1.5)
    assert 2.0 <= h.percentile(75.0) <= 4.0
    # everything past the last finite bucket clamps to its bound
    h.observe(100.0)
    assert h.percentile(100.0) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        h.percentile(-1.0)


def test_duplicate_or_unsorted_buckets_rejected():
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("m3d_dup", "", buckets=(0.1, 0.1, 1.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("m3d_rev", "", buckets=(1.0, 0.1))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("m3d_none", "", buckets=())


def test_exposition_passes_check_prom_including_empty_histograms():
    m = MetricsRegistry()
    m.counter("m3d_reqs_total", "requests").inc(2)
    m.histogram("m3d_empty_seconds", "no samples yet", buckets=(0.1, 1.0))
    one = m.histogram("m3d_one_seconds", "one sample", buckets=(0.1, 1.0))
    one.observe(0.25)
    m.state_gauge("m3d_state", "breaker", states=("closed", "open"))
    assert check_exposition(m.render_prometheus()) == []


def test_check_prom_catches_broken_expositions():
    assert any(
        "no preceding # TYPE" in p
        for p in check_exposition("m3d_orphan_total 1\n")
    )
    broken_hist = (
        "# TYPE m3d_h histogram\n"
        'm3d_h_bucket{le="0.1"} 2\n'
        'm3d_h_bucket{le="+Inf"} 1\n'
        "m3d_h_sum 1\n"
        "m3d_h_count 3\n"
    )
    problems = check_exposition(broken_hist)
    assert any("not cumulative" in p for p in problems)
    assert any("+Inf bucket" in p for p in problems)
    assert any(
        "missing the +Inf bucket" in p
        for p in check_exposition('# TYPE m3d_g histogram\nm3d_g_bucket{le="1"} 0\n'
                                  "m3d_g_sum 0\nm3d_g_count 0\n")
    )

"""Metrics instruments: semantics, registry idempotence, both export formats."""

import pytest

from m3d_fault_loc.serve.metrics import MetricsRegistry


def test_counter_monotonic():
    m = MetricsRegistry()
    c = m.counter("m3d_test_total", "things")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_sets_point_in_time():
    g = MetricsRegistry().gauge("m3d_depth")
    g.set(7)
    g.set(2)
    assert g.value == 2


def test_histogram_buckets_are_cumulative():
    h = MetricsRegistry().histogram("m3d_lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.555)


def test_registration_idempotent_but_kind_checked():
    m = MetricsRegistry()
    assert m.counter("m3d_x") is m.counter("m3d_x")
    with pytest.raises(ValueError, match="already registered"):
        m.gauge("m3d_x")


def test_prometheus_rendering():
    m = MetricsRegistry()
    m.counter("m3d_reqs_total", "requests").inc(2)
    m.histogram("m3d_lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = m.render_prometheus()
    assert "# HELP m3d_reqs_total requests" in text
    assert "# TYPE m3d_reqs_total counter" in text
    assert "m3d_reqs_total 2" in text
    assert 'm3d_lat_seconds_bucket{le="0.1"} 1' in text
    assert 'm3d_lat_seconds_bucket{le="+Inf"} 1' in text
    assert "m3d_lat_seconds_count 1" in text


def test_json_export_shape():
    m = MetricsRegistry()
    m.counter("m3d_a_total").inc()
    m.histogram("m3d_b", buckets=(1.0,)).observe(0.5)
    payload = m.to_json_dict()
    assert payload["m3d_a_total"] == {"type": "counter", "help": "", "value": 1}
    assert payload["m3d_b"]["type"] == "histogram"
    assert payload["m3d_b"]["buckets"]["+Inf"] == 1

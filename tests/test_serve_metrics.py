"""Metrics instruments: semantics, registry idempotence, both export formats."""

import sys
from pathlib import Path

import pytest

from m3d_fault_loc.serve.metrics import Histogram, MetricsRegistry

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from check_prom import check_exposition  # noqa: E402 - scripts/ is not a package


def test_counter_monotonic():
    m = MetricsRegistry()
    c = m.counter("m3d_test_total", "things")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_sets_point_in_time():
    g = MetricsRegistry().gauge("m3d_depth")
    g.set(7)
    g.set(2)
    assert g.value == 2


def test_histogram_buckets_are_cumulative():
    h = MetricsRegistry().histogram("m3d_lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.555)


def test_registration_idempotent_but_kind_checked():
    m = MetricsRegistry()
    assert m.counter("m3d_x") is m.counter("m3d_x")
    with pytest.raises(ValueError, match="already registered"):
        m.gauge("m3d_x")


def test_prometheus_rendering():
    m = MetricsRegistry()
    m.counter("m3d_reqs_total", "requests").inc(2)
    m.histogram("m3d_lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = m.render_prometheus()
    assert "# HELP m3d_reqs_total requests" in text
    assert "# TYPE m3d_reqs_total counter" in text
    assert "m3d_reqs_total 2" in text
    assert 'm3d_lat_seconds_bucket{le="0.1"} 1' in text
    assert 'm3d_lat_seconds_bucket{le="+Inf"} 1' in text
    assert "m3d_lat_seconds_count 1" in text


def test_json_export_shape():
    m = MetricsRegistry()
    m.counter("m3d_a_total").inc()
    m.histogram("m3d_b", buckets=(1.0,)).observe(0.5)
    payload = m.to_json_dict()
    assert payload["m3d_a_total"] == {"type": "counter", "help": "", "value": 1}
    assert payload["m3d_b"]["type"] == "histogram"
    assert payload["m3d_b"]["buckets"]["+Inf"] == 1


# -- empty / single-observation histograms ---------------------------------


def test_empty_histogram_snapshot_and_exposition_are_valid():
    h = Histogram("m3d_empty_seconds", "never observed", buckets=(0.1, 1.0))
    snap = h.snapshot()
    assert snap == {"buckets": {"0.1": 0, "1": 0, "+Inf": 0}, "sum": 0.0, "count": 0}
    lines = h.render_prometheus()
    assert 'm3d_empty_seconds_bucket{le="+Inf"} 0' in lines
    assert "m3d_empty_seconds_sum 0" in lines
    assert "m3d_empty_seconds_count 0" in lines
    assert h.percentile(99.0) == 0.0


def test_single_observation_histogram_accounting():
    h = Histogram("m3d_one_seconds", "one sample", buckets=(0.1, 1.0))
    h.observe(0.25)
    snap = h.snapshot()
    assert snap["buckets"] == {"0.1": 0, "1": 1, "+Inf": 1}
    assert snap["sum"] == pytest.approx(0.25)
    assert snap["count"] == 1
    # one sample: every percentile is that sample, exactly — no bucket smearing
    assert h.percentile(50.0) == pytest.approx(0.25)
    assert h.percentile(99.0) == pytest.approx(0.25)


def test_histogram_percentile_interpolates_within_buckets():
    h = Histogram("m3d_p_seconds", "", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0):
        h.observe(v)
    # p50 target rank = 2: one sample below the (1, 2] bucket, so the
    # estimate lands halfway through it
    assert h.percentile(50.0) == pytest.approx(1.5)
    assert 2.0 <= h.percentile(75.0) <= 4.0
    # everything past the last finite bucket clamps to its bound
    h.observe(100.0)
    assert h.percentile(100.0) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        h.percentile(-1.0)


def test_duplicate_or_unsorted_buckets_rejected():
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("m3d_dup", "", buckets=(0.1, 0.1, 1.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("m3d_rev", "", buckets=(1.0, 0.1))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("m3d_none", "", buckets=())


def test_exposition_passes_check_prom_including_empty_histograms():
    m = MetricsRegistry()
    m.counter("m3d_reqs_total", "requests").inc(2)
    m.histogram("m3d_empty_seconds", "no samples yet", buckets=(0.1, 1.0))
    one = m.histogram("m3d_one_seconds", "one sample", buckets=(0.1, 1.0))
    one.observe(0.25)
    m.state_gauge("m3d_state", "breaker", states=("closed", "open"))
    assert check_exposition(m.render_prometheus()) == []


# -- merge / snapshot round-trip (metrics federation) ----------------------


def test_histogram_merge_sums_buckets_and_totals():
    a = Histogram("m3d_lat", "", buckets=(0.1, 1.0, 5.0))
    b = Histogram("m3d_lat", "", buckets=(0.1, 1.0, 5.0))
    for v in (0.05, 0.5, 0.5):
        a.observe(v)
    for v in (0.5, 3.0, 10.0):
        b.observe(v)
    a.merge(b)
    snap = a.snapshot()
    assert snap["count"] == 6
    assert snap["sum"] == pytest.approx(14.55)
    assert snap["buckets"] == {"0.1": 1, "1": 4, "5": 5, "+Inf": 6}
    # the source is left untouched
    assert b.snapshot()["count"] == 3


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram("m3d_lat", "", buckets=(0.1, 1.0))
    b = Histogram("m3d_lat", "", buckets=(0.1, 2.0))
    with pytest.raises(ValueError, match="bucket bounds differ"):
        a.merge(b)
    # nothing was folded in before the raise
    assert a.snapshot()["count"] == 0


def test_histogram_from_snapshot_round_trips_including_overflow():
    h = Histogram("m3d_lat", "", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 9.0):  # 9.0 lives only in +Inf / count
        h.observe(v)
    rebuilt = Histogram.from_snapshot("m3d_lat", h.snapshot())
    assert rebuilt.buckets == h.buckets
    assert rebuilt.snapshot() == h.snapshot()
    assert rebuilt.percentile(50.0) == pytest.approx(h.percentile(50.0))


def test_histogram_from_snapshot_rejects_bad_inputs():
    with pytest.raises(ValueError, match="no finite buckets"):
        Histogram.from_snapshot("m3d_x", {"buckets": {"+Inf": 3}, "count": 3})
    with pytest.raises(ValueError, match="not cumulative"):
        Histogram.from_snapshot(
            "m3d_x",
            {"buckets": {"0.1": 5, "1": 2, "+Inf": 5}, "sum": 1.0, "count": 5},
        )


def test_merged_percentiles_with_leading_zero_count_buckets():
    # Regression: snapshots carry cumulative counts; treating them as
    # per-bucket counts made leading zero-count buckets look occupied after
    # a merge, dragging percentiles toward zero. Differencing in
    # from_snapshot keeps the merged estimate identical to a histogram that
    # observed every sample directly.
    bounds = (0.001, 0.01, 0.1, 1.0)
    samples_a = [0.5, 0.5, 0.7]
    samples_b = [0.6, 0.9]
    direct = Histogram("m3d_lat", "", buckets=bounds)
    for v in samples_a + samples_b:
        direct.observe(v)

    a = Histogram("m3d_lat", "", buckets=bounds)
    b = Histogram("m3d_lat", "", buckets=bounds)
    for v in samples_a:
        a.observe(v)
    for v in samples_b:
        b.observe(v)
    merged = Histogram.from_snapshot("m3d_lat", a.snapshot())
    merged.merge(Histogram.from_snapshot("m3d_lat", b.snapshot()))

    for q in (50.0, 90.0, 99.0):
        assert merged.percentile(q) == pytest.approx(direct.percentile(q))
    # every sample sits in the (0.1, 1.0] bucket; the three leading
    # zero-count buckets must not pull the estimate below it
    assert merged.percentile(50.0) > 0.1


def test_check_prom_catches_broken_expositions():
    assert any(
        "no preceding # TYPE" in p
        for p in check_exposition("m3d_orphan_total 1\n")
    )
    broken_hist = (
        "# TYPE m3d_h histogram\n"
        'm3d_h_bucket{le="0.1"} 2\n'
        'm3d_h_bucket{le="+Inf"} 1\n'
        "m3d_h_sum 1\n"
        "m3d_h_count 3\n"
    )
    problems = check_exposition(broken_hist)
    assert any("not cumulative" in p for p in problems)
    assert any("+Inf bucket" in p for p in problems)
    assert any(
        "missing the +Inf bucket" in p
        for p in check_exposition('# TYPE m3d_g histogram\nm3d_g_bucket{le="1"} 0\n'
                                  "m3d_g_sum 0\nm3d_g_count 0\n")
    )

"""Replica router: consistent-hash affinity, health-aware failover, drain.

Driven against :class:`m3d_fault_loc.testing.chaos.StubReplica` — a
programmable in-process replica with scripted faults — so every network
failure mode is injected deterministically:

- repeat payloads route to the same replica (cache affinity) and the ring's
  walk order is the failover preference;
- a partitioned replica (connect refused) fails over with zero lost
  requests; consecutive failures eject it; a healed replica is readmitted
  through the half-open probe;
- post-send failures are retried only for idempotent requests, never for
  non-idempotent ones; expired deadlines are never retried;
- a slow-loris connection does not stop the router from serving others;
- drain stops admission with a structured 503 and finishes in-flight work.
"""

import http.client
import json
import threading
import time

import pytest

from m3d_fault_loc.serve.resilience import ExponentialBackoff
from m3d_fault_loc.serve.router import (
    ATTEMPTS_HEADER,
    REPLICA_EJECTED,
    REPLICA_HEADER,
    REPLICA_UP,
    HashRing,
    Replica,
    ReplicaRouter,
    RouterPolicy,
    create_router_server,
    parse_replica_spec,
)
from m3d_fault_loc.testing.chaos import StubReplica, slow_loris


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def fast_policy(**overrides):
    defaults = dict(
        attempt_timeout_s=2.0,
        max_attempts=3,
        eject_after=2,
        cooldown_s=0.2,
        probe_interval_s=None,  # probing is opt-in per test
        probe_timeout_s=0.5,
        backoff=ExponentialBackoff(base_s=0.005, max_s=0.02),
        default_deadline_s=5.0,
    )
    defaults.update(overrides)
    return RouterPolicy(**defaults)


@pytest.fixture()
def two_replicas():
    a = StubReplica("a").start()
    b = StubReplica("b").start()
    yield a, b
    for stub in (a, b):
        if not stub.partitioned:
            stub.stop()


def make_router(stubs, **policy_overrides):
    return ReplicaRouter(
        [("127.0.0.1", s.port) for s in stubs], policy=fast_policy(**policy_overrides)
    )


# -- spec parsing and the ring ----------------------------------------------


def test_parse_replica_spec():
    assert parse_replica_spec("127.0.0.1:8361") == ("127.0.0.1", 8361)
    for bad in ("no-port", ":8080", "h:", "h:0", "h:99999", "h:abc"):
        with pytest.raises(ValueError):
            parse_replica_spec(bad)


def test_hash_ring_preference_is_deterministic_and_complete():
    ring = HashRing(["a:1", "b:2", "c:3"])
    order = ring.preference("some-digest")
    assert sorted(order) == ["a:1", "b:2", "c:3"]
    assert ring.preference("some-digest") == order
    assert ring.preference("another-digest") != order or True  # just determinism


def test_hash_ring_remaps_bounded_fraction_on_member_loss():
    keys = [f"r{i}:80" for i in range(4)]
    ring_all = HashRing(keys)
    ring_less = HashRing(keys[:-1])
    payloads = [f"payload-{i}" for i in range(200)]
    moved = sum(
        1
        for p in payloads
        if ring_all.preference(p)[0] != ring_less.preference(p)[0]
        and ring_all.preference(p)[0] != keys[-1]
    )
    # Only keys owned by the removed member should move (plus hash noise).
    assert moved <= 20, f"{moved}/200 unrelated keys remapped"


def test_replica_state_machine_half_open_single_trial():
    replica = Replica("h", 1, eject_after=2, cooldown_s=0.1)
    assert replica.state == REPLICA_UP
    replica.record_failure()
    assert replica.state == REPLICA_UP  # one failure is not ejection
    replica.record_failure()
    assert replica.state == REPLICA_EJECTED
    assert not replica.admit()
    assert wait_until(lambda: replica.admit(), timeout=1.0)  # half-open trial
    assert not replica.admit(), "only one half-open trial at a time"
    replica.record_failure()  # trial fails -> re-ejected with fresh cooldown
    assert replica.state == REPLICA_EJECTED
    assert wait_until(lambda: replica.admit(), timeout=1.0)
    replica.record_success()
    assert replica.state == REPLICA_UP


# -- routing affinity and failover ------------------------------------------


def test_same_payload_routes_to_same_replica(two_replicas):
    router = make_router(two_replicas)
    body = b'{"graph": "stable-payload"}'
    first = router.dispatch("POST", "/localize", body, {})
    assert first.status == 200
    for _ in range(5):
        again = router.dispatch("POST", "/localize", body, {})
        assert again.replica == first.replica
    router.close()


def test_partitioned_replica_fails_over_with_zero_lost(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas)
    body = b'{"graph": "find-the-owner"}'
    owner_key = router.dispatch("POST", "/localize", body, {}).replica
    victim = a if owner_key == a.key else b
    victim.partition()
    for _ in range(10):
        response = router.dispatch("POST", "/localize", body, {})
        assert response.status == 200, response.body
        assert response.replica != owner_key
    router.close()


def test_consecutive_connect_failures_eject_then_heal_readmits(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas, probe_interval_s=0.05)
    router.start()
    body = b'{"graph": "eject-me"}'
    owner_key = router.dispatch("POST", "/localize", body, {}).replica
    victim = a if owner_key == a.key else b
    victim.partition()
    # Prober observes connect failures and ejects without live traffic.
    assert wait_until(
        lambda: router._by_key[victim.key].state == REPLICA_EJECTED, timeout=3.0
    )
    # Ejected replica is skipped outright: requests go straight to the
    # survivor with a single attempt.
    response = router.dispatch("POST", "/localize", body, {})
    assert response.status == 200
    assert response.attempts == 1
    assert response.replica != victim.key
    victim.heal()
    assert wait_until(
        lambda: router._by_key[victim.key].state == REPLICA_UP, timeout=3.0
    )
    router.close()
    victim.stop()


def test_scripted_503_fails_over_for_idempotent_requests(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas)
    body = b'{"graph": "failover-on-503"}'
    owner_key = router.dispatch("POST", "/localize", body, {}).replica
    owner = a if owner_key == a.key else b
    owner.fail_next(1)
    response = router.dispatch("POST", "/localize", body, {})
    assert response.status == 200
    assert response.replica != owner_key
    assert response.attempts == 2
    router.close()


def test_post_send_drop_not_retried_for_non_idempotent_path(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas)
    body = b'{"cmd": "mutate"}'
    owner_key = router.dispatch("POST", "/admin/mutate", body, {}).replica
    owner = a if owner_key == a.key else b
    owner.drop_next(1)
    response = router.dispatch("POST", "/admin/mutate", body, {})
    assert response.status == 502
    assert json.loads(response.body)["error"] == "replica_failed"
    assert response.attempts == 1, "a dropped non-idempotent request must not replay"
    router.close()


def test_post_send_drop_is_retried_for_localize(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas)
    body = b'{"graph": "retry-me"}'
    owner_key = router.dispatch("POST", "/localize", body, {}).replica
    owner = a if owner_key == a.key else b
    owner.drop_next(1)
    response = router.dispatch("POST", "/localize", body, {})
    assert response.status == 200, "POST /localize is a pure function: safe to replay"
    assert response.attempts == 2
    router.close()


def test_expired_deadline_is_never_retried(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas)
    body = b'{"graph": "hang"}'
    owner_key = router.dispatch("POST", "/localize", body, {}).replica
    owner = a if owner_key == a.key else b
    owner.hang_next(1)
    started = time.monotonic()
    response = router.dispatch(
        "POST", "/localize", body, {"X-M3D-Deadline-Ms": "150"}
    )
    elapsed = time.monotonic() - started
    assert response.status == 504
    assert json.loads(response.body)["error"] == "deadline_exceeded"
    assert elapsed < 2.0, "deadline must cut the attempt, not wait out the hang"
    router.close()


def test_all_replicas_down_yields_structured_502(two_replicas):
    a, b = two_replicas
    a.partition()
    b.partition()
    router = make_router(two_replicas)
    response = router.dispatch("POST", "/localize", b'{"graph": "x"}', {})
    assert response.status == 502
    assert json.loads(response.body)["error"] == "no_replica_available"
    assert router.m_no_replica.value == 1
    router.close()


def test_router_health_degrades_and_recovers(two_replicas):
    a, b = two_replicas
    router = make_router(two_replicas, probe_interval_s=0.05)
    router.start()
    assert router.health_snapshot()["status"] == "ok"
    a.partition()
    assert wait_until(
        lambda: router.health_snapshot()["status"].startswith("degraded"), timeout=3.0
    )
    assert router.health_snapshot()["status"] == "degraded-1-of-2"
    a.heal()
    assert wait_until(lambda: router.health_snapshot()["status"] == "ok", timeout=3.0)
    router.close()


# -- the HTTP front ----------------------------------------------------------


@pytest.fixture()
def http_router(two_replicas):
    router = make_router(two_replicas, probe_interval_s=0.1)
    server = create_router_server(router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, router
    server.shutdown()
    server.server_close()
    router.close()
    thread.join(timeout=5.0)


def http_post(port, path, body, headers=None, timeout=5.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def http_get(port, path, timeout=5.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def test_http_proxy_sets_replica_and_attempt_headers(http_router):
    server, _ = http_router
    status, headers, body = http_post(server.port, "/localize", b'{"graph": "h"}')
    assert status == 200
    assert REPLICA_HEADER in headers
    assert headers[ATTEMPTS_HEADER] == "1"
    assert "X-M3D-Trace-Id" in headers


def test_router_own_endpoints(http_router):
    server, router = http_router
    status, _, body = http_get(server.port, "/router/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"
    status, _, body = http_get(server.port, "/router/metrics")
    assert status == 200
    assert "m3d_route_requests_total" in json.loads(body)


def test_slow_loris_does_not_block_other_clients(http_router):
    server, _ = http_router
    holder = slow_loris("127.0.0.1", server.port, hold_s=1.5)
    try:
        started = time.monotonic()
        status, _, _ = http_post(server.port, "/localize", b'{"graph": "l"}')
        elapsed = time.monotonic() - started
        assert status == 200
        assert elapsed < 1.0, "one held connection must not serialize the router"
    finally:
        holder.join(timeout=5.0)


def test_drain_rejects_new_requests_with_structured_503(http_router):
    server, router = http_router
    router.begin_drain()
    status, _, body = http_post(server.port, "/localize", b'{"graph": "late"}')
    assert status == 503
    assert json.loads(body)["error"] == "draining"
    # Router-own health keeps answering during drain and reports it.
    status, _, body = http_get(server.port, "/router/healthz")
    assert json.loads(body)["status"] == "draining"
    router.await_drain(1.0)
    assert router.m_inflight.value == 0


# -- tracing, probes, and the fleet endpoint ---------------------------------


def test_dispatch_emits_route_trace_with_attempt_spans(two_replicas):
    from m3d_fault_loc.obs.trace import Tracer

    tracer = Tracer(tags={"process": "router"})
    router = ReplicaRouter(
        [("127.0.0.1", s.port) for s in two_replicas],
        policy=fast_policy(),
        tracer=tracer,
    )
    response = router.dispatch("POST", "/localize", b'{"graph": "trace-me"}', {})
    assert response.status == 200
    [trace] = tracer.recent(1)
    assert trace["name"] == "route"
    assert trace["tags"] == {"process": "router"}
    assert trace["meta"]["status"] == 200
    assert trace["meta"]["attempts"] == 1
    stages = [s["stage"] for s in trace["spans"]]
    assert "route_decision" in stages
    [attempt] = [s for s in trace["spans"] if s["stage"] == "upstream_attempt"]
    assert attempt["meta"]["replica"] == response.replica
    assert attempt["meta"]["outcome"] == 200
    assert attempt["meta"]["attempt"] == 1
    router.close()


def test_failover_trace_shows_backoff_and_failover_spans(two_replicas):
    from m3d_fault_loc.obs.trace import Tracer

    a, b = two_replicas
    tracer = Tracer(tags={"process": "router"})
    router = ReplicaRouter(
        [("127.0.0.1", s.port) for s in two_replicas],
        policy=fast_policy(),
        tracer=tracer,
    )
    body = b'{"graph": "failover-trace"}'
    owner_key = router.dispatch("POST", "/localize", body, {}).replica
    owner = a if owner_key == a.key else b
    owner.fail_next(1)
    response = router.dispatch("POST", "/localize", body, {})
    assert response.status == 200 and response.attempts == 2
    trace = tracer.recent(1)[0]
    by_stage = {}
    for span in trace["spans"]:
        by_stage.setdefault(span["stage"], []).append(span)
    outcomes = [s["meta"]["outcome"] for s in by_stage["upstream_attempt"]]
    assert outcomes == [503, 200]
    assert by_stage["retry_backoff"][0]["meta"]["attempt"] == 2
    [failover] = by_stage["failover"]
    assert failover["meta"]["owner"] == owner_key
    assert failover["meta"]["served_by"] == response.replica
    router.close()


def test_router_forwards_its_trace_id_downstream(two_replicas):
    from m3d_fault_loc.obs.trace import Tracer

    a, b = two_replicas
    router = ReplicaRouter(
        [("127.0.0.1", s.port) for s in two_replicas],
        policy=fast_policy(),
        tracer=Tracer(),
    )
    response = router.dispatch("POST", "/localize", b'{"graph": "fwd-id"}', {})
    served = a if response.replica == a.key else b
    forwarded = served.trace_ids_seen()
    assert forwarded, "the replica must receive the router's X-M3D-Trace-Id"
    assert not forwarded[-1].startswith("probe-")
    router.close()


def test_probe_requests_carry_probe_trace_ids(two_replicas):
    a, _ = two_replicas
    router = make_router(two_replicas, probe_interval_s=0.05)
    router.start()
    assert wait_until(lambda: a.trace_ids_seen(), timeout=3.0)
    probe_ids = a.trace_ids_seen()
    assert all(t.startswith("probe-") for t in probe_ids), probe_ids
    # probe ids must survive the replica's trace-id sanitizer
    from m3d_fault_loc.obs.context import sanitize_trace_id

    assert sanitize_trace_id(probe_ids[0]) == probe_ids[0]
    router.close()


def test_router_fleet_endpoint_federates_member_metrics(http_router, two_replicas):
    server, _ = http_router
    a, b = two_replicas
    counter = {"type": "counter", "help": "requests", "value": 0}
    a.set_metrics({"m3d_requests_total": {**counter, "value": 7}})
    b.set_metrics({"m3d_requests_total": {**counter, "value": 5}})
    status, _, body = http_get(server.port, "/router/fleet")
    assert status == 200
    snap = json.loads(body)
    assert snap["status"] == "ok"
    assert snap["members"] == 2 and snap["reachable"] == 2
    # federation invariant: the merged counter equals the per-replica sum
    assert snap["merged"]["m3d_requests_total"]["value"] == 12
    by_addr = {
        r["replica"]: r["metrics"]["m3d_requests_total"]["value"]
        for r in snap["replicas"]
    }
    assert by_addr == {a.key: 7, b.key: 5}
    # the router contributes its own registry without an HTTP hop
    assert "m3d_route_requests_total" in snap["router"]
    assert "availability" in snap["slo"]


def test_failover_waterfall_stitches_across_processes(tmp_path):
    """Integration: real replicas + router, owner killed, logs stitched."""
    import numpy as np

    from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
    from m3d_fault_loc.model.localizer import DelayFaultLocalizer
    from m3d_fault_loc.obs.stitch import stitch_files
    from m3d_fault_loc.obs.trace import JsonlTraceExporter, Tracer
    from m3d_fault_loc.serve.server import create_server
    from m3d_fault_loc.serve.service import LocalizationService

    logs, servers, services, threads = [], [], [], []
    for i in range(2):
        log = tmp_path / f"replica_{i}.jsonl"
        tracer = Tracer(exporter=JsonlTraceExporter(log))
        service = LocalizationService(
            model=DelayFaultLocalizer(hidden=8, seed=4),
            batch_window_s=0.001,
            tracer=tracer,
        )
        server = create_server(service, host="127.0.0.1", port=0)
        tracer.tags.update(
            {"process": "replica", "addr": f"127.0.0.1:{server.port}"}
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        logs.append(log)
        servers.append(server)
        services.append(service)
        threads.append(thread)

    router_log = tmp_path / "router.jsonl"
    router = ReplicaRouter(
        [("127.0.0.1", s.port) for s in servers],
        policy=fast_policy(),
        tracer=Tracer(
            exporter=JsonlTraceExporter(router_log), tags={"process": "router"}
        ),
    )
    try:
        rng = np.random.default_rng(11)
        graph = synthesize_fault_dataset(rng, n_graphs=1, n_gates=10, n_inputs=3)[0]
        body = json.dumps({"graph": graph.to_json_dict(), "top_k": 2}).encode()

        first = router.dispatch("POST", "/localize", body, {})
        assert first.status == 200
        owner_key = first.replica
        owner_idx = next(
            i for i, s in enumerate(servers) if f"127.0.0.1:{s.port}" == owner_key
        )
        # Kill the owner: connects now refuse, its log stops growing.
        servers[owner_idx].shutdown()
        servers[owner_idx].server_close()
        services[owner_idx].close()

        failover = router.dispatch("POST", "/localize", body, {})
        assert failover.status == 200
        assert failover.attempts == 2
        assert failover.replica != owner_key

        def stitched_failover():
            for s in stitch_files([router_log, *logs]):
                if len(s["attempts"]) == 2:
                    return s
            return None

        assert wait_until(lambda: stitched_failover() is not None, timeout=5.0)
        target = stitched_failover()
        assert target["processes"] == ["replica", "router"]
        assert [a["replica"] for a in target["attempts"]] == [
            owner_key, failover.replica,
        ]
        # the dead owner's side of attempt 1 is reported, not silently lost
        [gone] = target["missing_attempts"]
        assert gone["replica"] == owner_key
        assert gone["outcome"] == "connect"
        [served] = [h for h in target["hops"] if h["process"] == "replica"]
        assert served["addr"] == failover.replica
        assert served["attempt"] == 2
        # the first request stitched cleanly too: owner-side hop present
        full = next(
            s for s in stitch_files([router_log, *logs]) if len(s["attempts"]) == 1
        )
        assert any(
            h["process"] == "replica" and h["addr"] == owner_key
            for h in full["hops"]
        )
    finally:
        router.close()
        for idx, server in enumerate(servers):
            if idx != owner_idx:
                server.shutdown()
                server.server_close()
                services[idx].close()
        for thread in threads:
            thread.join(timeout=5.0)

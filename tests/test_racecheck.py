"""Unit tests for the runtime lock-order sanitizer."""

from __future__ import annotations

import queue
import threading
import time

from m3d_fault_loc.testing import racecheck


def test_install_uninstall_restores_real_primitives():
    real_lock, real_rlock = threading.Lock, threading.RLock
    with racecheck.instrumented():
        assert threading.Lock is not real_lock
        assert threading.RLock is not real_rlock
        assert isinstance(threading.Lock(), racecheck._TrackedLock)
    assert threading.Lock is real_lock
    assert threading.RLock is real_rlock


def test_nested_install_is_refused():
    with racecheck.instrumented():
        try:
            racecheck.install(racecheck.LockOrderSanitizer())
        except RuntimeError as exc:
            assert "already installed" in str(exc)
        else:  # pragma: no cover - failure path
            raise AssertionError("second install() should have raised")


def test_consistent_order_is_clean():
    with racecheck.instrumented() as sanitizer:
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a, b:
                pass
    report = sanitizer.report()
    assert report.inversions == []
    assert report.acquisitions == 6


def test_inversion_detected_without_a_deadlock():
    """A-then-B followed by B-then-A is flagged even single-threaded."""
    with racecheck.instrumented() as sanitizer:
        a = threading.Lock()
        b = threading.Lock()
        with a, b:
            pass
        with b, a:
            pass
    report = sanitizer.report()
    assert len(report.inversions) == 1
    inversion = report.inversions[0]
    assert {inversion.first, inversion.second} == {a._site, b._site}
    assert "opposite order" in inversion.describe()


def test_transitive_inversion_detected():
    """A->B and B->C order C above A; C-then-A closes the cycle."""
    with racecheck.instrumented() as sanitizer:
        a = threading.Lock()
        b = threading.Lock()
        c = threading.Lock()
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
    assert len(sanitizer.report().inversions) == 1


def test_same_class_pairs_are_not_edges():
    """Two instances born on one line share a lock class: no self-edge."""
    with racecheck.instrumented() as sanitizer:
        pair = [threading.Lock() for _ in range(2)]
        with pair[0], pair[1]:
            pass
        with pair[1], pair[0]:
            pass
    assert sanitizer.report().inversions == []


def test_rlock_reentrancy_is_not_an_inversion():
    with racecheck.instrumented() as sanitizer:
        r = threading.RLock()
        with r:
            with r:
                pass
    report = sanitizer.report()
    assert report.inversions == []
    assert report.acquisitions == 1  # only the 0 -> 1 transition counts


def test_long_hold_reported_with_thread_name():
    with racecheck.instrumented(long_hold_ms=20.0) as sanitizer:
        lock = threading.Lock()
        with lock:
            time.sleep(0.05)
    report = sanitizer.report()
    assert len(report.long_holds) == 1
    hold = report.long_holds[0]
    assert hold.held_ms >= 20.0
    assert hold.thread
    assert "held" in hold.describe()


def test_foreign_release_reported():
    with racecheck.instrumented() as sanitizer:
        lock = threading.Lock()
        lock.acquire()
        t = threading.Thread(target=lock.release, daemon=True)
        t.start()
        t.join(2.0)
    report = sanitizer.report()
    assert len(report.foreign_releases) == 1
    assert report.foreign_releases[0].owner != report.foreign_releases[0].releaser


def test_event_and_queue_work_under_instrumentation():
    """stdlib synchronization built on patched Lock/RLock keeps working."""
    with racecheck.instrumented() as sanitizer:
        ev = threading.Event()
        q: queue.Queue[int] = queue.Queue(maxsize=2)

        def worker() -> None:
            q.put(42)
            ev.set()

        t = threading.Thread(target=worker, daemon=True)
        t.start()
        assert ev.wait(timeout=2.0)
        assert q.get(timeout=2.0) == 42
        t.join(2.0)
    assert sanitizer.report().inversions == []


def test_condition_wait_ends_the_hold_window():
    """A long Condition.wait must not be misreported as a long hold."""
    with racecheck.instrumented(long_hold_ms=30.0) as sanitizer:
        cond = threading.Condition(threading.RLock())

        def waker() -> None:
            time.sleep(0.08)
            with cond:
                cond.notify_all()

        t = threading.Thread(target=waker, daemon=True)
        with cond:
            t.start()
            cond.wait(timeout=2.0)
        t.join(2.0)
    report = sanitizer.report()
    assert report.long_holds == [], [h.describe() for h in report.long_holds]


def test_report_summary_counts():
    with racecheck.instrumented() as sanitizer:
        lock = threading.Lock()
        with lock:
            pass
    summary = sanitizer.report().summary()
    assert "1 acquisition(s)" in summary
    assert "0 inversion(s)" in summary

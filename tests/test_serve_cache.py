"""Content-hash digest canonicality and LRU cache bounds/thread-safety."""

import threading

import numpy as np

from fixture_graphs import make_clean_graph
from m3d_fault_loc.serve.cache import LRUResultCache, graph_digest


def test_digest_ignores_presentation_fields():
    a, b = make_clean_graph(), make_clean_graph()
    b.name = "renamed"
    b.meta = {"source": "elsewhere"}
    b.fault_index = None
    assert graph_digest(a) == graph_digest(b)


def test_digest_changes_with_any_model_visible_array():
    base = graph_digest(make_clean_graph())
    perturbed = make_clean_graph()
    perturbed.x = perturbed.x.copy()
    perturbed.x[0, 0] += 1.0
    assert graph_digest(perturbed) != base

    retyped = make_clean_graph()
    retyped.edge_type = retyped.edge_type.copy()
    retyped.edge_type[0] = 1 - retyped.edge_type[0]
    assert graph_digest(retyped) != base


def test_digest_sensitive_to_dtype_not_just_values():
    cast = make_clean_graph()
    cast.x = cast.x.astype(np.float64)
    assert graph_digest(cast) != graph_digest(make_clean_graph())


def test_lru_evicts_least_recently_used():
    cache = LRUResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_stats_and_clear():
    cache = LRUResultCache(capacity=4)
    cache.put("k", "v")
    cache.get("k")
    cache.get("absent")
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 1  # stats survive a clear


def test_concurrent_puts_stay_bounded():
    cache = LRUResultCache(capacity=8)

    def hammer(worker: int) -> None:
        for i in range(200):
            cache.put(f"{worker}:{i}", i)
            cache.get(f"{worker}:{i}")

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) <= 8

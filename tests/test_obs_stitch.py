"""Cross-process trace stitching: joins, robustness to torn/duplicated logs."""

import json
from pathlib import Path
from typing import Any

from m3d_fault_loc.obs.stitch import (
    read_trace_files,
    render_stitched_text,
    render_waterfall_text,
    stitch_files,
    stitch_traces,
)

ADDR_A = "127.0.0.1:7001"
ADDR_B = "127.0.0.1:7002"


def router_hop(
    trace_id: str,
    attempts: list[tuple[str, str]],
    status: str = "ok",
    started_at: float = 100.0,
    duration_ms: float = 12.0,
) -> dict[str, Any]:
    spans: list[dict[str, Any]] = [
        {"stage": "route_decision", "offset_ms": 0.0, "duration_ms": 0.1,
         "meta": {"owner": attempts[0][0], "candidates": len(attempts)}},
    ]
    for i, (replica, outcome) in enumerate(attempts, start=1):
        spans.append(
            {"stage": "upstream_attempt", "offset_ms": float(i), "duration_ms": 5.0,
             "meta": {"replica": replica, "rank": i - 1, "attempt": i, "outcome": outcome}}
        )
    return {
        "trace_id": trace_id, "name": "route", "status": status,
        "started_at": started_at, "duration_ms": duration_ms,
        "meta": {}, "spans": spans, "tags": {"process": "router"},
    }


def replica_hop(
    trace_id: str,
    addr: str,
    started_at: float = 100.0,
    duration_ms: float = 5.0,
    status: str = "ok",
) -> dict[str, Any]:
    return {
        "trace_id": trace_id, "name": "localize", "status": status,
        "started_at": started_at, "duration_ms": duration_ms, "meta": {},
        "spans": [{"stage": "queue_wait", "offset_ms": 0.0, "duration_ms": 0.5}],
        "tags": {"process": "replica", "addr": addr},
    }


def write_jsonl(path: Path, records: list[dict[str, Any]], torn_tail: bool = False) -> Path:
    lines = [json.dumps(r) for r in records]
    if torn_tail:
        # a SIGKILLed writer leaves a half-flushed final line
        lines.append(json.dumps(records[-1])[: 25])
    path.write_text("\n".join(lines) + "\n")
    return path


def test_stitch_joins_router_and_replica_hops():
    records = [
        router_hop("req-00000001", [(ADDR_A, 200)]),
        replica_hop("req-00000001", ADDR_A),
    ]
    [stitched] = stitch_traces(records)
    assert stitched["trace_id"] == "req-00000001"
    assert stitched["processes"] == ["replica", "router"]
    assert [h["process"] for h in stitched["hops"]] == ["router", "replica"]
    assert stitched["hops"][1]["attempt"] == 1
    assert stitched["attempts"][0]["replica"] == ADDR_A
    assert stitched["missing_attempts"] == []
    assert stitched["duration_ms"] == 12.0  # end-to-end time is the router's


def test_failover_waterfall_reports_missing_hop():
    # Attempt 1 hit a replica that died before flushing; attempt 2 succeeded.
    records = [
        router_hop("req-00000002", [(ADDR_A, "connect_error"), (ADDR_B, 200)]),
        replica_hop("req-00000002", ADDR_B),
    ]
    [stitched] = stitch_traces(records)
    assert len(stitched["attempts"]) == 2
    [gone] = stitched["missing_attempts"]
    assert gone["attempt"] == 1
    assert gone["replica"] == ADDR_A
    assert gone["outcome"] == "connect_error"
    served = [h for h in stitched["hops"] if h["process"] == "replica"]
    assert served[0]["addr"] == ADDR_B
    assert served[0]["attempt"] == 2
    text = render_waterfall_text(stitched)
    assert f"! attempt 1 on {ADDR_A} has no replica-side hop" in text
    assert f"served-by {ADDR_B} (attempt 2)" in text


def test_clock_skew_cannot_reorder_hops():
    # The replica's wall clock runs 1000s "early"; ordering must come from
    # the router's attempt metadata, never cross-process timestamps.
    records = [
        replica_hop("req-00000003", ADDR_A, started_at=-900.0),
        router_hop("req-00000003", [(ADDR_A, 200)], started_at=100.0),
    ]
    [stitched] = stitch_traces(records)
    assert [h["process"] for h in stitched["hops"]] == ["router", "replica"]
    assert stitched["hops"][1]["attempt"] == 1


# -- multi-file robustness --------------------------------------------------


def test_hops_stitch_regardless_of_file_order(tmp_path):
    router_log = write_jsonl(tmp_path / "router.jsonl",
                             [router_hop("req-00000004", [(ADDR_A, 200)])])
    replica_log = write_jsonl(tmp_path / "replica.jsonl",
                              [replica_hop("req-00000004", ADDR_A)])
    forward = stitch_files([router_log, replica_log])
    backward = stitch_files([replica_log, router_log])
    assert forward == backward
    assert len(forward[0]["hops"]) == 2


def test_torn_final_lines_are_skipped(tmp_path):
    router_log = write_jsonl(
        tmp_path / "router.jsonl",
        [router_hop("req-00000005", [(ADDR_A, 200)])],
        torn_tail=True,
    )
    replica_log = write_jsonl(
        tmp_path / "replica.jsonl",
        [replica_hop("req-00000005", ADDR_A)],
        torn_tail=True,
    )
    records = read_trace_files([router_log, replica_log])
    assert len(records) == 2  # the torn tails vanish, complete lines survive
    [stitched] = stitch_traces(records)
    assert stitched["missing_attempts"] == []


def test_exact_duplicates_deduped_same_id_different_hops_kept(tmp_path):
    shared = router_hop("req-00000006", [(ADDR_A, 200)])
    # the same record shipped in two files counts once ...
    log_a = write_jsonl(tmp_path / "a.jsonl", [shared, replica_hop("req-00000006", ADDR_A)])
    log_b = write_jsonl(tmp_path / "b.jsonl", [shared])
    records = read_trace_files([log_a, log_b])
    assert len(records) == 2
    # ... and listing one file twice changes nothing
    assert len(read_trace_files([log_a, log_a, log_b])) == 2
    [stitched] = stitch_traces(records)
    assert len(stitched["hops"]) == 2


def test_foreign_jsonl_rows_ignored(tmp_path):
    log = tmp_path / "mixed.jsonl"
    rows = [
        {"ts": 1.0, "event": "epoch", "loss": 0.5},  # telemetry, not a trace
        router_hop("req-00000007", [(ADDR_A, 200)]),
    ]
    write_jsonl(log, rows)
    records = read_trace_files([log])
    assert len(records) == 1
    assert records[0]["trace_id"] == "req-00000007"


# -- filtering --------------------------------------------------------------


def test_probe_traces_filtered_by_default():
    records = [
        replica_hop("probe-abcdef0123456789", ADDR_A),
        router_hop("req-00000008", [(ADDR_A, 200)]),
    ]
    stitched = stitch_traces(records)
    assert [s["trace_id"] for s in stitched] == ["req-00000008"]
    kept = stitch_traces(records, include_probes=True)
    assert {s["trace_id"] for s in kept} == {"probe-abcdef0123456789", "req-00000008"}


def test_slow_ms_filter(tmp_path):
    log = write_jsonl(tmp_path / "router.jsonl", [
        router_hop("req-00000009", [(ADDR_A, 200)], duration_ms=3.0),
        router_hop("req-00000010", [(ADDR_A, 200)], duration_ms=80.0, started_at=101.0),
    ])
    slow = stitch_files([log], slow_ms=50.0)
    assert [s["trace_id"] for s in slow] == ["req-00000010"]


def test_replica_only_trace_still_renders():
    # direct (router-less) traffic: no attempts to order by, hop stands alone
    [stitched] = stitch_traces([replica_hop("req-00000011", ADDR_A, status="error")])
    assert stitched["status"] == "error"
    assert stitched["attempts"] == []
    assert "localize" in render_waterfall_text(stitched)


def test_render_stitched_text_empty():
    assert render_stitched_text([]) == "no stitched requests"

"""Training-stability helpers: gradient clipping and the non-finite-loss guard."""

import numpy as np
import pytest

from m3d_fault_loc.cli import train as train_cli
from m3d_fault_loc.data.dataset import CircuitGraphDataset
from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.model.optim import (
    NonFiniteLossError,
    clip_by_global_norm,
    global_grad_norm,
)


def tiny_dataset(n_graphs=6):
    rng = np.random.default_rng(0)
    return CircuitGraphDataset.from_graphs(
        synthesize_fault_dataset(rng, n_graphs=n_graphs, n_gates=10, n_inputs=3)
    )


# -- clipping --------------------------------------------------------------


def test_global_grad_norm_flattens_across_entries():
    grads = {"a": np.array([3.0]), "b": np.array([[4.0]])}
    assert global_grad_norm(grads) == pytest.approx(5.0)


def test_clip_scales_in_place_and_returns_preclip_norm():
    grads = {"a": np.array([3.0]), "b": np.array([4.0])}
    returned = clip_by_global_norm(grads, max_norm=1.0)
    assert returned == pytest.approx(5.0)
    assert global_grad_norm(grads) == pytest.approx(1.0)
    assert grads["a"][0] == pytest.approx(0.6)
    assert grads["b"][0] == pytest.approx(0.8)


def test_clip_is_a_noop_under_the_limit():
    grads = {"a": np.array([0.3, 0.4])}
    returned = clip_by_global_norm(grads, max_norm=2.0)
    assert returned == pytest.approx(0.5)
    np.testing.assert_array_equal(grads["a"], [0.3, 0.4])


def test_clip_leaves_non_finite_gradients_alone():
    grads = {"a": np.array([np.inf, 1.0])}
    assert clip_by_global_norm(grads, max_norm=1.0) == np.inf
    assert np.isinf(grads["a"][0]), "scaling inf grads would yield NaN, not a clip"


def test_clip_rejects_non_positive_max_norm():
    with pytest.raises(ValueError, match="positive"):
        clip_by_global_norm({"a": np.zeros(2)}, max_norm=0.0)


# -- non-finite-loss guard -------------------------------------------------


def test_train_aborts_on_nan_loss_with_context(monkeypatch):
    def nan_loss(self, graph):
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        return float("nan"), grads

    monkeypatch.setattr(DelayFaultLocalizer, "loss_and_grads", nan_loss)
    dataset = tiny_dataset()
    with pytest.raises(NonFiniteLossError) as exc_info:
        train_cli.train(dataset, np.random.default_rng(0), epochs=1, hidden=8, log=None)
    message = str(exc_info.value)
    assert "epoch 0" in message and "--clip-norm" in message


def test_train_cli_exits_nonzero_on_nan_loss(tmp_path, monkeypatch, capsys):
    def inf_loss(self, graph):
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        return float("inf"), grads

    monkeypatch.setattr(DelayFaultLocalizer, "loss_and_grads", inf_loss)
    out = tmp_path / "model.npz"
    rc = train_cli.main(
        ["--n-graphs", "8", "--n-gates", "10", "--epochs", "1", "--hidden", "8",
         "--out", str(out)]
    )
    assert rc == 1
    assert "training aborted" in capsys.readouterr().err
    assert not out.exists(), "a poisoned model must never reach disk"


def test_train_cli_accepts_clip_norm_end_to_end(tmp_path, capsys):
    out = tmp_path / "model.npz"
    rc = train_cli.main(
        ["--n-graphs", "12", "--n-gates", "10", "--epochs", "2", "--hidden", "8",
         "--clip-norm", "1.0", "--out", str(out)]
    )
    assert rc == 0
    assert out.exists()
    assert "held-out localization accuracy" in capsys.readouterr().out

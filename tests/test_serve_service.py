"""LocalizationService: gating, micro-batching, caching, hot reload."""

import threading

import numpy as np
import pytest

from fixture_graphs import make_bad_dtype_graph, make_high_fanout_graph
from m3d_fault_loc.analysis.engine import RuleConfig, default_engine
from m3d_fault_loc.data.dataset import GraphContractError
from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry
from m3d_fault_loc.serve.service import LocalizationService


@pytest.fixture(scope="module")
def graphs():
    rng = np.random.default_rng(5)
    return synthesize_fault_dataset(rng, n_graphs=8, n_gates=12, n_inputs=3)


def make_service(**kwargs):
    kwargs.setdefault("model", DelayFaultLocalizer(hidden=8, seed=2))
    kwargs.setdefault("batch_window_s", 0.001)
    return LocalizationService(**kwargs)


def test_requires_exactly_one_model_source():
    with pytest.raises(ValueError, match="exactly one"):
        LocalizationService()
    with pytest.raises(ValueError, match="exactly one"):
        LocalizationService(
            model=DelayFaultLocalizer(hidden=4), registry=ModelRegistry("unused")
        )


def test_result_matches_direct_model_call(graphs):
    model = DelayFaultLocalizer(hidden=8, seed=2)
    with make_service(model=model) as service:
        result = service.localize(graphs[0], top_k=3)
    scores = model.node_scores(graphs[0])
    expected = np.argsort(scores)[::-1][:3]
    assert [entry["index"] for entry in result.top] == [int(i) for i in expected]
    assert result.num_nodes == graphs[0].num_nodes
    assert result.latency_s > 0
    payload = result.to_json_dict()
    assert payload["model"]["name"] == "adhoc"
    assert payload["latency_ms"] > 0


def test_repeat_request_hits_cache_without_forward_pass(graphs):
    with make_service() as service:
        first = service.localize(graphs[0])
        passes_after_first = service.m_forward_passes.value
        second = service.localize(graphs[0])
        assert first.cached is False
        assert second.cached is True
        assert second.top == first.top
        assert service.m_forward_passes.value == passes_after_first
        assert service.m_cache_hits.value == 1


def test_different_top_k_is_not_a_false_cache_hit(graphs):
    with make_service() as service:
        assert len(service.localize(graphs[0], top_k=2).top) == 2
        wider = service.localize(graphs[0], top_k=4)
        assert wider.cached is False
        assert len(wider.top) == 4


def test_contract_violation_rejected_and_counted(graphs):
    with make_service() as service:
        with pytest.raises(GraphContractError) as exc_info:
            service.localize(make_bad_dtype_graph())
        assert any(v.rule_id.startswith("M3D1") for v in exc_info.value.violations)
        assert service.m_rejections.value == 1
        assert service.m_forward_passes.value == 0


def test_concurrent_requests_are_micro_batched(graphs):
    service = make_service(batch_window_s=0.05, max_batch=8)
    results: dict[int, object] = {}
    with service:
        # Hold the worker on a first request so the rest pile into its batch.
        def call(i: int) -> None:
            results[i] = service.localize(graphs[i])

        threads = [threading.Thread(target=call, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(results) == 6
    assert service.m_graphs.value == 6
    assert service.m_forward_passes.value <= 3  # batched, not one pass per request
    assert service.m_batch_size.count == service.m_forward_passes.value


def test_clean_graph_warnings_surface_in_result():
    engine = default_engine(RuleConfig(max_fanout=2))
    with make_service(engine=engine) as service:
        result = service.localize(make_high_fanout_graph(n_sinks=4))
    assert any("M3D108" in w for w in result.warnings)


def test_hot_reload_on_registry_activation(tmp_path, graphs):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(DelayFaultLocalizer(hidden=8, seed=0))
    with make_service(model=None, registry=registry) as service:
        before = service.localize(graphs[0])
        assert before.model_version == "v0001"

        registry.publish(DelayFaultLocalizer(hidden=8, seed=99))
        after = service.localize(graphs[0])
        assert after.model_version == "v0002"
        assert after.cached is False  # cache cannot serve the old model's answer
        assert service.m_reloads.value == 1
        assert service.describe_model()["version"] == "v0002"


def test_close_is_idempotent_and_rejects_new_requests(graphs):
    service = make_service()
    service.localize(graphs[0])
    service.close()
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.localize(graphs[0])


def test_localize_validates_top_k(graphs):
    with make_service() as service:
        with pytest.raises(ValueError, match="top_k"):
            service.localize(graphs[0], top_k=0)

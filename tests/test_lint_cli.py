"""m3dlint CLI: exit codes, output formats, and the code subcommand."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from fixture_graphs import VIOLATION_FIXTURES, make_clean_graph, make_high_fanout_graph
from m3d_fault_loc.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture()
def violation_dir(tmp_path):
    for i, factory in enumerate(VIOLATION_FIXTURES):
        factory().save(tmp_path / f"bad_{i}.json")
    return tmp_path


def test_check_clean_graph_exits_zero(tmp_path, capsys):
    make_clean_graph().save(tmp_path / "clean.json")
    assert main(["check", str(tmp_path)]) == EXIT_CLEAN
    assert "0 error(s)" in capsys.readouterr().out


def test_check_flags_every_fixture_with_correct_rule_ids(violation_dir, capsys):
    assert main(["check", str(violation_dir), "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    fired = {v["rule_id"] for v in payload["violations"]}
    assert set(VIOLATION_FIXTURES.values()) <= fired
    assert payload["counts"]["error"] >= len(VIOLATION_FIXTURES)


def test_check_single_file_text_format(violation_dir, capsys):
    target = next(violation_dir.glob("bad_0.json"))
    assert main(["check", str(target)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "[ERROR]" in out and str(target) in out


def test_check_warning_only_graph_exits_zero(tmp_path, capsys):
    make_high_fanout_graph(n_sinks=4).save(tmp_path / "fanout.json")
    assert main(["check", str(tmp_path), "--max-fanout", "2"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "M3D108" in out and "[WARNING]" in out


def test_check_corrupt_payload_is_a_finding(tmp_path, capsys):
    (tmp_path / "corrupt.json").write_text("{not json")
    assert main(["check", str(tmp_path)]) == EXIT_FINDINGS
    assert "M3D100" in capsys.readouterr().out


def test_check_missing_path_is_usage_error(capsys):
    assert main(["check", "does/not/exist"]) == EXIT_USAGE


def test_code_subcommand_is_clean_on_own_source(capsys):
    """Acceptance criterion: `m3dlint code src/` runs clean on this repo."""
    assert main(["code", str(SRC_DIR)]) == EXIT_CLEAN
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_code_subcommand_flags_footguns(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "import random\n"
        "def train_loop():\n"
        "    random.seed(1)\n"
        "    try:\n"
        "        pass\n"
        "    except:\n"
        "        pass\n"
    )
    assert main(["code", str(tmp_path), "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    fired = {v["rule_id"] for v in payload["violations"]}
    assert {"M3D203", "M3D204"} <= fired


def test_rules_subcommand_lists_catalog(capsys):
    assert main(["rules", "--format", "json"]) == EXIT_CLEAN
    catalog = {r["id"] for r in json.loads(capsys.readouterr().out)}
    assert {"M3D101", "M3D106", "M3D201", "M3D204"} <= catalog


def test_concurrency_subcommand_is_clean_on_own_source(capsys):
    """Acceptance criterion: `m3dlint concurrency src/` runs clean here."""
    assert main(["concurrency", str(SRC_DIR)]) == EXIT_CLEAN
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_concurrency_subcommand_flags_lock_footguns(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "import threading\n"
        "def racy(fn):\n"
        "    guard = threading.Lock()\n"
        "    t = threading.Thread(target=fn)\n"
        "    return guard, t\n"
    )
    args = ["concurrency", str(tmp_path), "--format", "json", "--fail-on", "warning"]
    assert main(args) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    fired = {v["rule_id"] for v in payload["violations"]}
    assert {"M3D303", "M3D305"} <= fired


def test_github_format_emits_annotations(tmp_path, capsys):
    (tmp_path / "serve").mkdir()
    bad = tmp_path / "serve" / "bad.py"
    bad.write_text(
        "import threading\n"
        "def spawn(fn):\n"
        "    return threading.Thread(target=fn)\n"
    )
    assert main(["concurrency", str(tmp_path), "--format", "github"]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert f"::error file={bad},line=3,title=M3D305::" in out


def test_github_format_escapes_newlines_in_messages():
    from m3d_fault_loc.analysis.cli import _github_annotation
    from m3d_fault_loc.analysis.violations import Severity, Violation

    v = Violation(
        rule_id="M3D999", severity=Severity.WARNING, message="a\nb%c", location="x.py:7"
    )
    line = _github_annotation(v)
    assert line == "::warning file=x.py,line=7,title=M3D999::a%0Ab%25c"


def warning_only_tree(tmp_path):
    """A lint target producing exactly one WARNING and zero ERRORs."""
    (tmp_path / "bad.py").write_text(
        "import threading\n"
        "def spawn(fn):\n"
        "    return threading.Thread(target=fn)\n"
    )
    return tmp_path


def test_fail_on_error_ignores_warnings(tmp_path, capsys):
    assert main(["concurrency", str(warning_only_tree(tmp_path))]) == EXIT_CLEAN
    assert "1 warning(s)" in capsys.readouterr().out


def test_fail_on_warning_fails_on_warnings(tmp_path, capsys):
    target = str(warning_only_tree(tmp_path))
    assert main(["concurrency", target, "--fail-on", "warning"]) == EXIT_FINDINGS
    assert main(["concurrency", target, "--fail-on", "never"]) == EXIT_CLEAN


def test_fail_on_never_swallows_errors(tmp_path, capsys):
    (tmp_path / "corrupt.json").write_text("{not json")
    assert main(["check", str(tmp_path), "--fail-on", "never"]) == EXIT_CLEAN
    assert "M3D100" in capsys.readouterr().out


def test_rules_subcommand_includes_concurrency_family(capsys):
    assert main(["rules", "--format", "json"]) == EXIT_CLEAN
    catalog = {r["id"] for r in json.loads(capsys.readouterr().out)}
    assert {f"M3D30{i}" for i in range(1, 7)} <= catalog


def test_duplicate_rule_ids_are_rejected():
    from m3d_fault_loc.analysis.engine import RuleEngine, RuleRegistry
    from m3d_fault_loc.analysis.graph_rules import BUILTIN_GRAPH_RULES

    registry = RuleRegistry()

    class RuleA:
        id = "M3D999"

    class RuleB:
        id = "M3D999"

    registry.register(RuleA())
    with pytest.raises(ValueError, match="duplicate rule id: M3D999.*RuleA"):
        registry.register(RuleB())

    first = BUILTIN_GRAPH_RULES[0]
    with pytest.raises(ValueError, match="duplicate rule id"):
        RuleEngine(rules=[first(), first()])


def test_cli_runs_as_module(tmp_path):
    make_clean_graph().save(tmp_path / "clean.json")
    proc = subprocess.run(
        [sys.executable, "-m", "m3d_fault_loc.analysis.cli", "check", str(tmp_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == EXIT_CLEAN, proc.stderr

"""m3dlint CLI: exit codes, output formats, and the code subcommand."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from fixture_graphs import VIOLATION_FIXTURES, make_clean_graph, make_high_fanout_graph
from m3d_fault_loc.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture()
def violation_dir(tmp_path):
    for i, factory in enumerate(VIOLATION_FIXTURES):
        factory().save(tmp_path / f"bad_{i}.json")
    return tmp_path


def test_check_clean_graph_exits_zero(tmp_path, capsys):
    make_clean_graph().save(tmp_path / "clean.json")
    assert main(["check", str(tmp_path)]) == EXIT_CLEAN
    assert "0 error(s)" in capsys.readouterr().out


def test_check_flags_every_fixture_with_correct_rule_ids(violation_dir, capsys):
    assert main(["check", str(violation_dir), "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    fired = {v["rule_id"] for v in payload["violations"]}
    assert set(VIOLATION_FIXTURES.values()) <= fired
    assert payload["counts"]["error"] >= len(VIOLATION_FIXTURES)


def test_check_single_file_text_format(violation_dir, capsys):
    target = next(violation_dir.glob("bad_0.json"))
    assert main(["check", str(target)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "[ERROR]" in out and str(target) in out


def test_check_warning_only_graph_exits_zero(tmp_path, capsys):
    make_high_fanout_graph(n_sinks=4).save(tmp_path / "fanout.json")
    assert main(["check", str(tmp_path), "--max-fanout", "2"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "M3D108" in out and "[WARNING]" in out


def test_check_corrupt_payload_is_a_finding(tmp_path, capsys):
    (tmp_path / "corrupt.json").write_text("{not json")
    assert main(["check", str(tmp_path)]) == EXIT_FINDINGS
    assert "M3D100" in capsys.readouterr().out


def test_check_missing_path_is_usage_error(capsys):
    assert main(["check", "does/not/exist"]) == EXIT_USAGE


def test_code_subcommand_is_clean_on_own_source(capsys):
    """Acceptance criterion: `m3dlint code src/` runs clean on this repo."""
    assert main(["code", str(SRC_DIR)]) == EXIT_CLEAN
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_code_subcommand_flags_footguns(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "import random\n"
        "def train_loop():\n"
        "    random.seed(1)\n"
        "    try:\n"
        "        pass\n"
        "    except:\n"
        "        pass\n"
    )
    assert main(["code", str(tmp_path), "--format", "json"]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    fired = {v["rule_id"] for v in payload["violations"]}
    assert {"M3D203", "M3D204"} <= fired


def test_rules_subcommand_lists_catalog(capsys):
    assert main(["rules", "--format", "json"]) == EXIT_CLEAN
    catalog = {r["id"] for r in json.loads(capsys.readouterr().out)}
    assert {"M3D101", "M3D106", "M3D201", "M3D204"} <= catalog


def test_cli_runs_as_module(tmp_path):
    make_clean_graph().save(tmp_path / "clean.json")
    proc = subprocess.run(
        [sys.executable, "-m", "m3d_fault_loc.analysis.cli", "check", str(tmp_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == EXIT_CLEAN, proc.stderr

"""Structured JSON logging: trace-id capture, field transport, idempotent setup."""

import io
import json
import logging

import pytest

from m3d_fault_loc.obs.context import new_trace_id, sanitize_trace_id, trace_context
from m3d_fault_loc.obs.logging import (
    JSONLineFormatter,
    configure_json_logging,
    get_logger,
)


@pytest.fixture()
def json_stream():
    stream = io.StringIO()
    handler = configure_json_logging(stream=stream, level=logging.DEBUG, logger_name="obs_t")
    yield stream
    logging.getLogger("obs_t").removeHandler(handler)


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_event_and_fields_render_as_one_json_line(json_stream):
    get_logger("obs_t.svc").warning("breaker_transition", old="closed", new="open")
    (record,) = lines(json_stream)
    assert record["event"] == "breaker_transition"
    assert record["level"] == "warning"
    assert record["logger"] == "obs_t.svc"
    assert record["old"] == "closed" and record["new"] == "open"
    assert "trace_id" not in record  # no ambient context bound


def test_ambient_trace_id_attached_at_call_time(json_stream):
    with trace_context("ambient-trace-1"):
        get_logger("obs_t.svc").info("cache_hit", graph="g")
    (record,) = lines(json_stream)
    assert record["trace_id"] == "ambient-trace-1"


def test_explicit_trace_id_wins_over_ambient(json_stream):
    with trace_context("ambient-trace-2"):
        get_logger("obs_t.svc").warning("pending_request_failed", trace_id="victim-1x")
    (record,) = lines(json_stream)
    assert record["trace_id"] == "victim-1x"


def test_exception_logging_captures_type_and_message(json_stream):
    log = get_logger("obs_t.svc")
    try:
        raise RuntimeError("kaboom")
    except RuntimeError:
        log.exception("localization_failed", graph="g")
    (record,) = lines(json_stream)
    assert record["exc_type"] == "RuntimeError"
    assert record["exc"] == "kaboom"
    assert record["graph"] == "g"


def test_configure_is_idempotent_not_stacking(json_stream):
    stream2 = io.StringIO()
    handler = configure_json_logging(stream=stream2, level=logging.DEBUG, logger_name="obs_t")
    try:
        get_logger("obs_t.svc").info("once")
        assert lines(json_stream) == []  # old handler was replaced, not kept
        assert len(lines(stream2)) == 1
    finally:
        logging.getLogger("obs_t").removeHandler(handler)


def test_unknown_level_string_rejected():
    with pytest.raises(ValueError):
        configure_json_logging(level="LOUD", logger_name="obs_t_nope")


def test_structured_records_visible_to_caplog(caplog):
    with caplog.at_level(logging.WARNING, logger="m3d_fault_loc"):
        get_logger("m3d_fault_loc.test_obs").warning("watchdog_restart", reason="stall")
    (record,) = [r for r in caplog.records if r.getMessage() == "watchdog_restart"]
    assert record.m3d_fields == {"reason": "stall"}


def test_formatter_serializes_non_json_values():
    formatter = JSONLineFormatter()
    record = logging.LogRecord("n", logging.INFO, "p", 1, "event", (), None)
    record.m3d_fields = {"path": object()}
    assert "event" in json.loads(formatter.format(record))["event"]


def test_trace_id_sanitizer_and_generator():
    assert sanitize_trace_id("abcDEF12-_") == "abcDEF12-_"
    assert sanitize_trace_id("short") is None
    assert sanitize_trace_id('x" inject:8') is None
    assert sanitize_trace_id("a" * 65) is None
    assert sanitize_trace_id(None) is None
    generated = new_trace_id()
    assert sanitize_trace_id(generated) == generated

"""Contract checker: each violation fixture trips exactly its target rule."""

import pytest

from fixture_graphs import (
    VIOLATION_FIXTURES,
    make_clean_graph,
    make_high_fanout_graph,
)
from m3d_fault_loc.analysis.engine import RuleConfig, RuleEngine, default_engine
from m3d_fault_loc.analysis.violations import Severity, has_errors


@pytest.fixture(scope="module")
def engine():
    return default_engine()


def test_clean_graph_has_no_findings(engine):
    assert engine.run(make_clean_graph()) == []


@pytest.mark.parametrize(
    "factory,expected_rule",
    [(f, rid) for f, rid in VIOLATION_FIXTURES.items()],
    ids=[rid for rid in VIOLATION_FIXTURES.values()],
)
def test_violation_fixture_trips_its_rule(engine, factory, expected_rule):
    findings = engine.run(factory())
    fired = {v.rule_id for v in findings}
    assert expected_rule in fired
    assert has_errors(findings)


@pytest.mark.parametrize(
    "factory,expected_rule",
    [(f, rid) for f, rid in VIOLATION_FIXTURES.items()],
    ids=[rid for rid in VIOLATION_FIXTURES.values()],
)
def test_violation_survives_json_roundtrip(engine, tmp_path, factory, expected_rule):
    """Serialization must not launder defects (dtype included)."""
    graph = factory()
    path = graph.save(tmp_path / "graph.json")
    reloaded = type(graph).load(path)
    assert expected_rule in {v.rule_id for v in engine.run(reloaded)}


def test_fanout_bound_is_a_warning():
    engine = default_engine(RuleConfig(max_fanout=2))
    findings = engine.run(make_high_fanout_graph(n_sinks=4))
    assert {v.rule_id for v in findings} == {"M3D108"}
    assert all(v.severity == Severity.WARNING for v in findings)
    assert not has_errors(findings)
    # Same graph under the default bound is entirely clean.
    assert default_engine().run(make_high_fanout_graph(n_sinks=4)) == []


def test_engine_rejects_duplicate_rule_ids(engine):
    duplicate = type(engine.rules[0])()
    with pytest.raises(ValueError, match="duplicate rule id"):
        RuleEngine(rules=[type(engine.rules[0])(), duplicate])


def test_rule_catalog_is_sorted_and_documented(engine):
    ids = [r.id for r in engine.rules]
    assert ids == sorted(ids)
    for rule in engine.rules:
        assert rule.description
        assert rule.id.startswith("M3D1")

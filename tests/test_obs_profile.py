"""Training-loop phase profiler: accumulation, nesting, memory, no-op cost."""

import time

from m3d_fault_loc.obs.profile import (
    NULL_PHASE,
    TRAIN_PHASES,
    PhaseProfiler,
    active_profiler,
    phase,
)


def test_phase_is_null_without_active_profiler():
    assert active_profiler() is None
    assert phase("forward") is NULL_PHASE
    with phase("forward"):  # must be harmless anywhere in library code
        pass


def test_profiler_accumulates_wall_time_and_calls():
    profiler = PhaseProfiler()
    with profiler:
        assert active_profiler() is profiler
        for _ in range(3):
            with phase("forward"):
                time.sleep(0.002)
        with phase("data_gen"):
            time.sleep(0.001)
    assert active_profiler() is None
    snap = profiler.snapshot()
    assert snap["forward"]["calls"] == 3
    assert snap["forward"]["wall_s"] >= 0.006
    assert snap["data_gen"]["calls"] == 1
    assert "peak_kb" not in snap["forward"]  # memory off by default


def test_nested_phases_both_recorded():
    profiler = PhaseProfiler()
    with profiler:
        with phase("optimizer_step"):
            with phase("forward"):
                time.sleep(0.001)
    snap = profiler.snapshot()
    assert snap["forward"]["calls"] == 1
    assert snap["optimizer_step"]["calls"] == 1
    # the outer phase's wall time contains the inner's
    assert snap["optimizer_step"]["wall_s"] >= snap["forward"]["wall_s"]


def test_drain_returns_and_resets():
    profiler = PhaseProfiler()
    with profiler:
        with phase("eval"):
            pass
    first = profiler.drain()
    assert first["eval"]["calls"] == 1
    assert profiler.drain() == {}  # epoch boundary: totals cleared


def test_memory_flag_records_peak_on_outermost_phase():
    profiler = PhaseProfiler(memory=True)
    with profiler:
        with phase("data_gen"):
            _ = [bytearray(1024) for _ in range(512)]  # ~512 KiB high-water
    snap = profiler.snapshot()
    assert snap["data_gen"]["peak_kb"] >= 512


def test_exceptions_propagate_and_still_record():
    profiler = PhaseProfiler()
    with profiler:
        try:
            with phase("backward"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active_profiler() is profiler  # binding survives phase errors
    assert profiler.snapshot()["backward"]["calls"] == 1


def test_train_phase_names_are_canonical():
    assert TRAIN_PHASES == ("data_gen", "forward", "backward", "optimizer_step", "eval")


def test_disabled_phase_overhead_under_5us():
    # Same bar the tracer's no-op path meets: the permanent brackets in
    # loss_and_grads must be free when no profiler is active.
    assert active_profiler() is None
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with phase("forward"):
            pass
    per_phase_s = (time.perf_counter() - t0) / n
    assert per_phase_s < 5e-6, f"no-op phase cost {per_phase_s * 1e6:.2f}µs, budget 5µs"

"""Delay-fault injection: observable, labeled, and localized footprints."""

import numpy as np
import pytest

from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.faults.injector import inject_delay_fault, make_fault_sample


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


@pytest.fixture()
def netlist(rng):
    return random_netlist(rng, n_gates=25, n_inputs=4)


def test_injection_targets_non_pi_gate(rng, netlist):
    faulty, fault = inject_delay_fault(netlist, rng)
    assert not netlist.gates[fault.gate].is_primary_input
    assert faulty.gates[fault.gate].delay == pytest.approx(
        netlist.gates[fault.gate].delay + fault.extra_delay
    )


def test_injection_does_not_mutate_original(rng, netlist):
    before = {name: g.delay for name, g in netlist.gates.items()}
    inject_delay_fault(netlist, rng)
    assert {name: g.delay for name, g in netlist.gates.items()} == before


def test_injection_at_named_gate(rng, netlist):
    victim = sorted(n for n, g in netlist.gates.items() if not g.is_primary_input)[0]
    _, fault = inject_delay_fault(netlist, rng, gate=victim, extra_delay=1.5)
    assert fault.gate == victim and fault.extra_delay == 1.5


def test_injection_rejects_pi_target(rng, netlist):
    pi = netlist.primary_inputs[0]
    with pytest.raises(ValueError, match="cannot inject"):
        inject_delay_fault(netlist, rng, gate=pi)


def test_fault_sample_label_and_footprint(rng, netlist):
    sample = make_fault_sample(netlist, rng)
    assert sample.fault_index is not None
    delta = sample.feature("slack_delta")
    # The labeled origin shows degraded slack...
    assert delta[sample.fault_index] > 0.0
    # ...and it is maximal there or downstream, never upstream-only.
    assert delta.max() == pytest.approx(delta[sample.fault_index], rel=1e-5)


def test_fault_footprint_is_localized(rng, netlist):
    sample = make_fault_sample(netlist, rng)
    delta = sample.feature("slack_delta")
    # A single small-delay defect must not degrade every node in the graph.
    assert np.count_nonzero(delta <= 1e-9) > 0


def test_samples_pass_contract_gate(rng, netlist):
    from m3d_fault_loc.analysis.engine import default_engine

    engine = default_engine()
    for _ in range(5):
        assert engine.run(make_fault_sample(netlist, rng)) == []

"""Netlist → graph construction and schema conformance."""

import numpy as np
import pytest

from fixture_graphs import make_clean_graph
from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.netlist import Gate, Netlist
from m3d_fault_loc.graph.schema import (
    EDGE_MIV,
    EDGE_NET,
    FEATURE_COLUMNS,
    NODE_DTYPE,
    CircuitGraph,
)


def test_clean_graph_schema_shapes():
    g = make_clean_graph()
    assert g.x.shape == (4, len(FEATURE_COLUMNS))
    assert g.x.dtype == NODE_DTYPE
    assert g.edge_index.shape == (2, 3)
    assert g.num_nodes == 4 and g.num_edges == 3


def test_edge_types_follow_tiers():
    g = make_clean_graph()
    for e in range(g.num_edges):
        u, v = int(g.edge_index[0, e]), int(g.edge_index[1, e])
        expected = EDGE_NET if g.tier[u] == g.tier[v] else EDGE_MIV
        assert int(g.edge_type[e]) == expected


def test_miv_edges_cost_more_wire_delay():
    g = make_clean_graph()
    miv = g.edge_attr[g.edge_type == EDGE_MIV, 0]
    net = g.edge_attr[g.edge_type == EDGE_NET, 0]
    assert miv.size and net.size
    assert miv.min() > net.max()


def test_fault_label_maps_to_named_gate():
    g = make_clean_graph()
    assert g.node_names[g.fault_index] == "g0"


def test_slack_delta_zero_without_observed_netlist():
    g = make_clean_graph()
    assert np.allclose(g.feature("slack_delta"), 0.0)


def test_fanin_fanout_features_match_degrees():
    g = make_clean_graph()
    assert np.array_equal(g.feature("fanin"), g.in_degrees().astype(np.float32))
    assert np.array_equal(g.feature("fanout"), g.out_degrees().astype(np.float32))


def test_cyclic_netlist_is_rejected_at_build_time():
    netlist = Netlist(name="loop", num_tiers=1)
    netlist.add_gate(Gate(name="a", cell="INV", fanins=("b",), tier=0, delay=1.0))
    netlist.add_gate(Gate(name="b", cell="INV", fanins=("a",), tier=0, delay=1.0))
    with pytest.raises(ValueError, match="cycle"):
        build_circuit_graph(netlist)


def test_unknown_fanin_is_rejected():
    netlist = Netlist(name="ghost", num_tiers=1)
    netlist.add_gate(Gate(name="a", cell="INV", fanins=("ghost",), tier=0, delay=1.0))
    with pytest.raises(KeyError, match="unknown fanin"):
        build_circuit_graph(netlist)


def test_json_roundtrip_preserves_everything(tmp_path):
    g = make_clean_graph()
    g2 = CircuitGraph.load(g.save(tmp_path / "g.json"))
    assert g2.node_names == g.node_names
    assert g2.fault_index == g.fault_index
    assert g2.x.dtype == g.x.dtype
    assert np.array_equal(g2.x, g.x)
    assert np.array_equal(g2.edge_index, g.edge_index)


def test_random_netlist_is_contract_clean_across_tier_counts():
    from m3d_fault_loc.analysis.engine import default_engine

    engine = default_engine()
    rng = np.random.default_rng(11)
    for num_tiers in (1, 2, 3):
        netlist = random_netlist(rng, n_gates=25, n_inputs=4, num_tiers=num_tiers)
        graph = build_circuit_graph(netlist)
        assert engine.run(graph) == [], f"num_tiers={num_tiers}"

"""Tests for the M3D3xx lock-discipline rules and suppression pragmas."""

from __future__ import annotations

import textwrap
from pathlib import Path

from m3d_fault_loc.analysis.code_rules import lint_paths, lint_source
from m3d_fault_loc.analysis.concurrency_rules import BUILTIN_CONCURRENCY_RULES
from m3d_fault_loc.analysis.suppress import parse_pragmas
from m3d_fault_loc.analysis.violations import Severity

LIB_PATH = Path("src/m3d_fault_loc/obs/thing.py")
SERVE_PATH = Path("src/m3d_fault_loc/serve/thing.py")
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def lint(source: str, path: Path = LIB_PATH):
    rules = [cls() for cls in BUILTIN_CONCURRENCY_RULES]
    return lint_source(textwrap.dedent(source), path, rules=rules)


def rule_ids(source: str, path: Path = LIB_PATH) -> list[str]:
    return [v.rule_id for v in lint(source, path)]


# -- M3D301: locked-anywhere means locked-everywhere -----------------------


M3D301_SOURCE = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def bump(self):
            with self._lock:
                self._value += 1

        def reset(self):
            self._value = 0
"""


def test_m3d301_fires_on_mixed_discipline():
    findings = lint(M3D301_SOURCE)
    assert [v.rule_id for v in findings] == ["M3D301"]
    assert "_value" in findings[0].message
    assert "reset" in findings[0].message


def test_m3d301_ignores_init_and_consistent_locking():
    clean = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0

            def bump(self):
                with self._lock:
                    self._value += 1

            def reset(self):
                with self._lock:
                    self._value = 0
    """
    assert rule_ids(clean) == []


def test_m3d301_escalates_to_error_in_serve():
    assert lint(M3D301_SOURCE, SERVE_PATH)[0].severity is Severity.ERROR
    assert lint(M3D301_SOURCE, LIB_PATH)[0].severity is Severity.WARNING


# -- M3D302: blocking calls under a lock -----------------------------------


def test_m3d302_fires_on_sleep_queue_and_io_under_lock():
    source = """
        import threading, time

        class Thing:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self, work_queue, handle):
                with self._lock:
                    time.sleep(0.1)
                    work_queue.get()
                    handle.write(b"x")
    """
    assert rule_ids(source) == ["M3D302", "M3D302", "M3D302"]


def test_m3d302_ignores_blocking_calls_outside_locks_and_dict_get():
    source = """
        import threading, time

        class Thing:
            def __init__(self):
                self._lock = threading.Lock()

            def fine(self, work_queue, table):
                time.sleep(0.1)
                work_queue.get()
                with self._lock:
                    value = table.get("key")
                    name = ", ".join(["a"])
                return value, name
    """
    assert rule_ids(source) == []


def test_m3d302_closure_under_lock_is_not_flagged():
    source = """
        import threading, time

        class Thing:
            def __init__(self):
                self._lock = threading.Lock()

            def fine(self):
                with self._lock:
                    def later():
                        time.sleep(1.0)
                    self._cb = later
    """
    # the closure body does not *run* under the lock; only the M3D301-style
    # mixed write on _cb would be a separate concern (single write: clean).
    assert "M3D302" not in rule_ids(source)


# -- M3D303: per-call locks guard nothing ----------------------------------


def test_m3d303_fires_outside_init_but_not_in_init_or_module_scope():
    source = """
        import threading

        MODULE_LOCK = threading.Lock()

        class Thing:
            def __init__(self):
                self._lock = threading.RLock()

            def racy(self):
                guard = threading.Lock()
                with guard:
                    return 1
    """
    findings = lint(source)
    assert [v.rule_id for v in findings] == ["M3D303"]
    assert "racy" in findings[0].message


# -- M3D304: unbounded join/wait in library code ---------------------------


def test_m3d304_fires_on_unbounded_join_and_wait():
    source = """
        def shutdown(worker, stop_event):
            stop_event.wait()
            worker.join()
    """
    assert rule_ids(source) == ["M3D304", "M3D304"]


def test_m3d304_allows_timeouts_and_entry_points():
    bounded = """
        def shutdown(worker, stop_event):
            stop_event.wait(timeout=5.0)
            worker.join(5.0)
    """
    assert rule_ids(bounded) == []
    unbounded = """
        def main(worker):
            worker.join()
    """
    assert rule_ids(unbounded, Path("src/m3d_fault_loc/cli/serve.py")) == []


def test_m3d304_ignores_string_join():
    assert rule_ids("x = ', '.join(['a', 'b'])\n") == []


# -- M3D305: explicit daemon flag ------------------------------------------


def test_m3d305_fires_without_daemon_flag():
    source = """
        import threading

        def spawn(fn):
            t = threading.Thread(target=fn)
            t.start()
            return t
    """
    assert rule_ids(source) == ["M3D305"]


def test_m3d305_satisfied_by_kwarg_or_attribute():
    source = """
        import threading

        def spawn_kw(fn):
            return threading.Thread(target=fn, daemon=True)

        def spawn_attr(fn):
            t = threading.Thread(target=fn)
            t.daemon = False
            return t
    """
    assert rule_ids(source) == []


# -- M3D306: callbacks under a lock ----------------------------------------


def test_m3d306_fires_on_direct_and_transitive_callback_under_lock():
    source = """
        import threading

        class Machine:
            def __init__(self, on_change):
                self._lock = threading.Lock()
                self._on_change = on_change

            def _fire(self):
                self._on_change("old", "new")

            def direct(self):
                with self._lock:
                    self._on_change("a", "b")

            def indirect(self):
                with self._lock:
                    self._fire()
    """
    findings = lint(source)
    assert [v.rule_id for v in findings] == ["M3D306", "M3D306"]
    messages = " ".join(v.message for v in findings)
    assert "via 'self._fire()'" in messages


def test_m3d306_callback_after_lock_release_is_clean():
    source = """
        import threading

        class Machine:
            def __init__(self, on_change):
                self._lock = threading.Lock()
                self._on_change = on_change

            def deferred(self):
                with self._lock:
                    events = ["x"]
                for event in events:
                    self._on_change(event)
    """
    assert rule_ids(source) == []


# -- suppression pragmas ----------------------------------------------------


def test_pragma_with_reason_suppresses_the_finding():
    source = M3D301_SOURCE.replace(
        "self._value = 0\n",
        "self._value = 0  # m3dlint: disable=M3D301 reason=reset is test-only\n",
    )
    # only the second occurrence (inside reset) carries the pragma
    head, _, tail = source.rpartition("self._value = 0")
    source = head + "self._value = 0  # m3dlint: disable=M3D301 reason=reset is test-only" + tail
    assert "M3D301" not in [v.rule_id for v in lint(source)]


def test_standalone_pragma_covers_the_next_line():
    source = """
        import threading

        def racy():
            # m3dlint: disable=M3D303 reason=demo lock for the docs example
            guard = threading.Lock()
            return guard
    """
    assert rule_ids(source) == []


def test_pragma_without_reason_is_not_honored_and_is_flagged():
    source = """
        import threading

        def racy():
            guard = threading.Lock()  # m3dlint: disable=M3D303
            return guard
    """
    ids = rule_ids(source)
    assert "M3D303" in ids  # not suppressed
    assert "M3D300" in ids  # and the malformed pragma is itself flagged


def test_stale_pragma_is_flagged():
    source = """
        import threading

        MODULE_LOCK = threading.Lock()  # m3dlint: disable=M3D303 reason=stale
    """
    ids = rule_ids(source)
    assert ids == ["M3D300"]


def test_pragma_for_inactive_rule_family_is_ignored():
    # an M3D2xx pragma while only M3D3xx rules run: neither suppression
    # nor staleness applies
    source = """
        def fine():
            print("hello")  # m3dlint: disable=M3D207 reason=cli surface
    """
    assert rule_ids(source) == []


def test_parse_pragmas_extracts_ids_and_reason():
    pragmas = parse_pragmas(
        "x = 1  # m3dlint: disable=M3D301,M3D302 reason=because physics\n"
    )
    assert len(pragmas) == 1
    assert pragmas[0].rule_ids == ("M3D301", "M3D302")
    assert pragmas[0].reason == "because physics"
    assert pragmas[0].target_line == 1


# -- acceptance: the repo's own source is concurrency-clean ----------------


def test_concurrency_rules_clean_on_own_source():
    rules = [cls() for cls in BUILTIN_CONCURRENCY_RULES]
    findings = lint_paths([SRC_DIR], rules=rules)
    assert findings == [], [f"{v.rule_id} {v.location}: {v.message}" for v in findings]

"""The bench case catalog: closures over the real hot-path code.

Each case prepares a zero-arg closure that exercises one production code
path on a pinned workload — the same functions the serving stack calls, not
reimplementations — plus metadata (work units per call) and an optional
cleanup. ``node_scores_batch_legacy`` is the one deliberate exception: it
replays the **pre-optimization** batch path (fresh per-graph operator build
+ ``scipy.sparse.block_diag`` re-pack + unconditional ``astype`` + fresh
forward allocations every call) so every ``BENCH_<n>.json`` carries its own
before/after evidence for the cached-operator speedup.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np
import scipy.sparse as sp

from m3d_fault_loc.analysis.engine import default_engine
from m3d_fault_loc.bench.workloads import Workload, repeat_batch
from m3d_fault_loc.data.dataset import gate_graph
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.model.aggregate import build_in_neighbor_mean
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.model.optim import Adam
from m3d_fault_loc.obs.profile import PhaseProfiler, phase
from m3d_fault_loc.scenarios import ScenarioSpec, registered_scenarios
from m3d_fault_loc.serve.cache import LRUResultCache, graph_digest
from m3d_fault_loc.serve.service import LocalizationService

#: (timed closure, per-call metadata, optional cleanup).
PreparedCase = tuple[Callable[[], Any], dict[str, Any], Callable[[], None] | None]


@dataclass(frozen=True)
class BenchContext:
    """Knobs shared by every case in one ``m3d-bench run``."""

    hidden: int = 32
    model_seed: int = 0
    precision: str = "float64"
    batch_size: int = 16
    concurrency: int = 4
    requests_per_client: int = 8
    pool_workers: int = 4

    def make_model(self) -> DelayFaultLocalizer:
        return DelayFaultLocalizer(
            hidden=self.hidden, seed=self.model_seed, precision=self.precision
        )


def _case_graph_build(workload: Workload, ctx: BenchContext) -> PreparedCase:
    inputs = workload.build_inputs

    def fn() -> int:
        total = 0
        for netlist, observed, fault_gate in inputs:
            total += build_circuit_graph(netlist, observed=observed, fault_gate=fault_gate).num_nodes
        return total

    return fn, {"graphs_per_call": len(inputs)}, None


def _case_contract_gate(workload: Workload, ctx: BenchContext) -> PreparedCase:
    engine = default_engine()
    graphs = workload.graphs

    def fn() -> int:
        total = 0
        for graph in graphs:
            total += len(gate_graph(graph, engine))
        return total

    return fn, {"graphs_per_call": len(graphs)}, None


def _case_content_digest(workload: Workload, ctx: BenchContext) -> PreparedCase:
    graphs = workload.graphs

    def fn() -> str:
        digest = ""
        for graph in graphs:
            digest = graph_digest(graph)
        return digest

    return fn, {"graphs_per_call": len(graphs)}, None


def _case_cache_lookup(workload: Workload, ctx: BenchContext) -> PreparedCase:
    cache = LRUResultCache(capacity=max(len(workload.digests) * 2, 8))
    for digest in workload.digests:
        cache.put(digest, {"digest": digest})
    keys = list(workload.digests) + [f"miss-{d[:16]}" for d in workload.digests]

    def fn() -> int:
        found = 0
        for key in keys:
            if cache.get(key) is not None:
                found += 1
        return found

    return fn, {"lookups_per_call": len(keys), "hit_fraction": 0.5}, None


def _case_node_scores(workload: Workload, ctx: BenchContext) -> PreparedCase:
    model = ctx.make_model()
    graphs, digests = workload.graphs, workload.digests

    def fn() -> float:
        acc = 0.0
        for graph, digest in zip(graphs, digests):
            acc += float(model.node_scores(graph, digest=digest)[0])
        return acc

    return fn, {"graphs_per_call": len(graphs)}, None


def _case_node_scores_batch(workload: Workload, ctx: BenchContext) -> PreparedCase:
    """The optimized serve path on a repeat-graph batch: cached CSR operators
    keyed by digest, segment-offset block stacking, preallocated buffers.
    Warmup calls populate the operator cache — exactly what a warm serving
    worker sees."""
    model = ctx.make_model()
    graphs, digests = repeat_batch(workload, ctx.batch_size)

    def fn() -> int:
        return len(model.node_scores_batch(graphs, digests=digests))

    return fn, {"graphs_per_call": len(graphs), "batch_size": ctx.batch_size}, None


def legacy_node_scores_batch(
    model: DelayFaultLocalizer, graphs: Sequence[CircuitGraph]
) -> list[np.ndarray]:
    """The pre-optimization batch forward, preserved as the bench baseline:
    rebuilds every per-graph operator, re-packs them with ``block_diag``,
    re-casts features, and allocates every intermediate — per call."""
    sizes = [g.num_nodes for g in graphs]
    x = np.concatenate([g.x.astype(np.float64) for g in graphs], axis=0)
    # m3dlint: disable=M3D208 reason=deliberate pre-PR baseline the harness measures against
    m = sp.block_diag([build_in_neighbor_mean(g) for g in graphs], format="csr")
    p = model.params
    mx = m @ x
    a1 = x @ p["W1s"] + mx @ p["W1n"] + p["b1"]
    h1 = np.maximum(a1, 0.0)
    mh1 = m @ h1
    a2 = h1 @ p["W2s"] + mh1 @ p["W2n"] + p["b2"]
    h2 = np.maximum(a2, 0.0)
    logits = (np.einsum("nh,ho->no", h2, p["w3"]) + p["b3"]).ravel()
    return [part.copy() for part in np.split(logits, np.cumsum(sizes)[:-1])]


def _case_node_scores_batch_legacy(workload: Workload, ctx: BenchContext) -> PreparedCase:
    model = ctx.make_model()
    graphs, _ = repeat_batch(workload, ctx.batch_size)

    def fn() -> int:
        return len(legacy_node_scores_batch(model, graphs))

    return fn, {"graphs_per_call": len(graphs), "batch_size": ctx.batch_size}, None


def _case_e2e_localize(workload: Workload, ctx: BenchContext) -> PreparedCase:
    """End-to-end ``localize()`` under concurrent clients: contract gate,
    digest, admission queue, micro-batcher, forward pass, result build.
    The result cache is shrunk to one entry so repeats measure the pipeline,
    not memoization; the aggregation-operator cache stays warm, as in
    production."""
    service = LocalizationService(
        model=ctx.make_model(),
        cache_size=1,
        max_batch=ctx.batch_size,
        batch_window_s=0.002,
        max_queue=4096,
        request_timeout_s=120.0,
        watchdog_interval_s=None,
    )
    service.start()
    pool = ThreadPoolExecutor(max_workers=ctx.concurrency, thread_name_prefix="bench-client")
    graphs = workload.graphs
    per_client = ctx.requests_per_client

    def client(offset: int) -> int:
        done = 0
        for i in range(per_client):
            graph = graphs[(offset + i) % len(graphs)]
            service.localize(graph, top_k=3)
            done += 1
        return done

    def fn() -> int:
        futures = [pool.submit(client, i * per_client) for i in range(ctx.concurrency)]
        return sum(f.result() for f in futures)

    def cleanup() -> None:
        pool.shutdown(wait=True)
        service.close()

    meta = {
        "requests_per_call": ctx.concurrency * per_client,
        "concurrency": ctx.concurrency,
        "result_cache": "defeated (capacity=1)",
    }
    return fn, meta, cleanup


def _case_e2e_localize_pool(workload: Workload, ctx: BenchContext) -> PreparedCase:
    """The ``e2e_localize`` pipeline against a ``pool_workers``-wide sharded
    worker pool under doubled client concurrency — the scale-out data point.
    Same defeated result cache, same micro-batcher; the only variable is N
    digest-sharded workers draining the admission queues in parallel, so
    the trajectory shows what the pool buys over the 1-worker topology."""
    service = LocalizationService(
        model=ctx.make_model(),
        cache_size=1,
        max_batch=ctx.batch_size,
        batch_window_s=0.002,
        max_queue=4096,
        request_timeout_s=120.0,
        watchdog_interval_s=None,
        num_workers=ctx.pool_workers,
    )
    service.start()
    clients = ctx.concurrency * 2
    pool = ThreadPoolExecutor(max_workers=clients, thread_name_prefix="bench-pool-client")
    graphs = workload.graphs
    per_client = ctx.requests_per_client

    def client(offset: int) -> int:
        done = 0
        for i in range(per_client):
            graph = graphs[(offset + i) % len(graphs)]
            service.localize(graph, top_k=3)
            done += 1
        return done

    def fn() -> int:
        futures = [pool.submit(client, i * per_client) for i in range(clients)]
        return sum(f.result() for f in futures)

    def cleanup() -> None:
        pool.shutdown(wait=True)
        service.close()

    meta = {
        "requests_per_call": clients * per_client,
        "concurrency": clients,
        "pool_workers": ctx.pool_workers,
        "result_cache": "defeated (capacity=1)",
    }
    return fn, meta, cleanup


def _case_scenario_generate(workload: Workload, ctx: BenchContext) -> PreparedCase:
    """One tiny seeded dataset per registered scenario per call — measures the
    scenario generators themselves (netlist synthesis + fault payload
    construction), sized so the per-scenario cost stays comparable across
    workload sizes."""
    scenarios = registered_scenarios()
    spec = ScenarioSpec(
        n_graphs=2,
        n_gates=workload.spec.n_gates,
        n_inputs=workload.spec.n_inputs,
        num_tiers=workload.spec.num_tiers,
        seed=workload.spec.seed,
    )

    def fn() -> int:
        total = 0
        for scenario in scenarios:
            total += sum(g.num_nodes for g in scenario.generate(spec))
        return total

    meta = {
        "scenarios_per_call": len(scenarios),
        "graphs_per_scenario": spec.n_graphs,
    }
    return fn, meta, None


def _case_train_epoch(workload: Workload, ctx: BenchContext) -> PreparedCase:
    """One full training epoch over the workload graphs: per-graph
    ``loss_and_grads`` backward passes, gradient accumulation, and an Adam
    step per minibatch — the ``m3d-train`` inner loop on production code."""
    model = ctx.make_model()
    optimizer = Adam(model.params, lr=1e-3)
    graphs = workload.graphs

    def fn() -> float:
        total_loss = 0.0
        for start in range(0, len(graphs), ctx.batch_size):
            batch = graphs[start : start + ctx.batch_size]
            grads = {k: np.zeros_like(v) for k, v in model.params.items()}
            for graph in batch:
                loss, g = model.loss_and_grads(graph)
                total_loss += loss
                for k in grads:
                    grads[k] += g[k] / len(batch)
            optimizer.step(grads)
        return total_loss

    meta = {"graphs_per_call": len(graphs), "batch_size": ctx.batch_size}
    return fn, meta, None


def _case_train_epoch_profiled(workload: Workload, ctx: BenchContext) -> PreparedCase:
    """The same epoch with an active :class:`PhaseProfiler`: measures the
    enabled-path overhead of the ``m3d-train --profile`` phase brackets
    (forward/backward inside ``loss_and_grads``, plus optimizer_step here)
    against the plain ``train_epoch`` case."""
    model = ctx.make_model()
    optimizer = Adam(model.params, lr=1e-3)
    graphs = workload.graphs
    profiler = PhaseProfiler()

    def fn() -> float:
        total_loss = 0.0
        with profiler:
            for start in range(0, len(graphs), ctx.batch_size):
                batch = graphs[start : start + ctx.batch_size]
                grads = {k: np.zeros_like(v) for k, v in model.params.items()}
                for graph in batch:
                    loss, g = model.loss_and_grads(graph)
                    total_loss += loss
                    for k in grads:
                        grads[k] += g[k] / len(batch)
                with phase("optimizer_step"):
                    optimizer.step(grads)
        profiler.drain()
        return total_loss

    meta = {"graphs_per_call": len(graphs), "batch_size": ctx.batch_size}
    return fn, meta, None


#: Case catalog in report order. Keys are the public case names.
CASES: dict[str, Callable[[Workload, BenchContext], PreparedCase]] = {
    "graph_build": _case_graph_build,
    "contract_gate": _case_contract_gate,
    "content_digest": _case_content_digest,
    "cache_lookup": _case_cache_lookup,
    "node_scores": _case_node_scores,
    "node_scores_batch": _case_node_scores_batch,
    "node_scores_batch_legacy": _case_node_scores_batch_legacy,
    "train_epoch": _case_train_epoch,
    "train_epoch_profiled": _case_train_epoch_profiled,
    "scenario_generate": _case_scenario_generate,
    "e2e_localize": _case_e2e_localize,
    "e2e_localize_pool": _case_e2e_localize_pool,
}

CASE_DESCRIPTIONS: dict[str, str] = {
    "graph_build": "netlist + observed timing -> CircuitGraph construction",
    "contract_gate": "m3dlint contract engine over every workload graph",
    "content_digest": "canonical content hash of every workload graph",
    "cache_lookup": "LRU result-cache get() at a 50% hit rate",
    "node_scores": "single-graph forward pass (warm operator cache)",
    "node_scores_batch": "batched forward, cached operators + segment-offset stacking",
    "node_scores_batch_legacy": "pre-PR batched forward: block_diag rebuild every call",
    "train_epoch": "one m3d-train epoch: loss_and_grads + Adam over the workload",
    "train_epoch_profiled": "same epoch with the phase profiler active (bracket overhead)",
    "scenario_generate": "tiny seeded dataset from every registered scenario generator",
    "e2e_localize": "end-to-end localize() under concurrent client threads",
    "e2e_localize_pool": "e2e localize() against the sharded 4-worker pool, 2x clients",
}

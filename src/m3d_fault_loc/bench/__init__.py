"""``m3d-bench`` — the repeatable offline benchmark harness.

Times the serving stack's real hot paths (graph build, contract gate,
content digest, single/batched scoring, cache lookup, end-to-end
``/localize`` under concurrent clients) on pinned seeded workloads and
writes ``BENCH_<n>.json`` trajectories, so every future "made it faster"
claim is a diff between two files produced by the same methodology.

See ``docs/benchmarking.md`` for the methodology and
:mod:`m3d_fault_loc.bench.cli` for the CLI.
"""

from m3d_fault_loc.bench.harness import (
    BENCH_SCHEMA_VERSION,
    machine_fingerprint,
    time_case,
    validate_payload,
)
from m3d_fault_loc.bench.workloads import SIZES, WorkloadSpec, build_workload

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SIZES",
    "WorkloadSpec",
    "build_workload",
    "machine_fingerprint",
    "time_case",
    "validate_payload",
]

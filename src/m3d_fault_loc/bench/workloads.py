"""Pinned synthetic workloads for the benchmark harness.

Every workload is fully determined by its :class:`WorkloadSpec` — a name,
a size point, and a seed — so two runs of ``m3d-bench`` on different days
(or different machines) time the model on byte-identical graphs. The specs
below are the blessed size sweep; changing them invalidates comparisons
against older ``BENCH_*.json`` files, so add new named sizes instead of
editing existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.faults.injector import inject_delay_fault
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.netlist import Netlist
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.serve.cache import graph_digest


@dataclass(frozen=True)
class WorkloadSpec:
    """One pinned workload: seeded netlist population + fault samples."""

    name: str
    n_graphs: int
    n_gates: int
    n_inputs: int
    num_tiers: int = 2
    seed: int = 2022


#: The blessed size sweep (gate counts quadruple per step).
SIZES: dict[str, WorkloadSpec] = {
    "small": WorkloadSpec(name="small", n_graphs=24, n_gates=30, n_inputs=5),
    "medium": WorkloadSpec(name="medium", n_graphs=16, n_gates=120, n_inputs=8),
    "large": WorkloadSpec(name="large", n_graphs=8, n_gates=480, n_inputs=12, num_tiers=3),
}

#: Reduced sweep for ``--quick`` (CI smoke): same shape, much smaller.
QUICK_SIZES: dict[str, WorkloadSpec] = {
    "tiny": WorkloadSpec(name="tiny", n_graphs=6, n_gates=12, n_inputs=3),
    "small": WorkloadSpec(name="small", n_graphs=6, n_gates=30, n_inputs=5),
}


@dataclass
class Workload:
    """A realized workload: the arrays every bench case times against."""

    spec: WorkloadSpec
    #: (nominal netlist, observed/faulty netlist, fault gate) build inputs.
    build_inputs: list[tuple[Netlist, Netlist, str]]
    graphs: list[CircuitGraph]
    digests: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.digests:
            self.digests = [graph_digest(g) for g in self.graphs]


def build_workload(spec: WorkloadSpec) -> Workload:
    """Realize a spec into netlists, labeled fault graphs, and digests."""
    rng = np.random.default_rng(spec.seed)
    build_inputs: list[tuple[Netlist, Netlist, str]] = []
    graphs: list[CircuitGraph] = []
    for i in range(spec.n_graphs):
        netlist = random_netlist(
            rng,
            n_gates=spec.n_gates,
            n_inputs=spec.n_inputs,
            num_tiers=spec.num_tiers,
            name=f"bench-{spec.name}-{i}",
        )
        faulty, fault = inject_delay_fault(netlist, rng)
        build_inputs.append((netlist, faulty, fault.gate))
        graph = build_circuit_graph(netlist, observed=faulty, fault_gate=fault.gate)
        graph.meta["fault"] = {"gate": fault.gate, "extra_delay": fault.extra_delay}
        graphs.append(graph)
    return Workload(spec=spec, build_inputs=build_inputs, graphs=graphs)


def repeat_batch(workload: Workload, batch_size: int) -> tuple[list[CircuitGraph], list[str]]:
    """A repeat-graph micro-batch: the workload's graphs cycled to
    ``batch_size`` — the shape a warm serving cache sees, where the same
    topologies recur across consecutive batches."""
    graphs = [workload.graphs[i % len(workload.graphs)] for i in range(batch_size)]
    digests = [workload.digests[i % len(workload.digests)] for i in range(batch_size)]
    return graphs, digests

"""``m3d-bench`` — run the hot-path benchmark suite, compare trajectories.

Subcommands:

- ``m3d-bench run`` — time the case catalog on the pinned size sweep and
  write the next ``BENCH_<n>.json`` (or ``--out PATH``). ``--quick`` runs a
  reduced sweep with few repeats — the CI smoke shape, not a number anyone
  should quote.
- ``m3d-bench compare OLD.json NEW.json [--fail-on-regression PCT]`` —
  per-case median ratios between two result files; with the flag, exit 1
  when any shared case slowed down by more than PCT percent.
- ``m3d-bench cases`` — print the case catalog.

Exit codes: 0 clean, 1 regression past the tripwire, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path
from typing import Any

from m3d_fault_loc.bench.cases import CASE_DESCRIPTIONS, CASES, BenchContext
from m3d_fault_loc.bench.harness import (
    BENCH_SCHEMA_VERSION,
    index_results,
    machine_fingerprint,
    time_case,
    validate_payload,
)
from m3d_fault_loc.bench.workloads import QUICK_SIZES, SIZES, build_workload
from m3d_fault_loc.utils.seed import seed_everything

EXIT_CLEAN = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2

#: Derived headline: optimized vs legacy batched forward, per workload.
SPEEDUP_KEY = "node_scores_batch_speedup"


def next_bench_path(directory: Path) -> Path:
    """First unused ``BENCH_<n>.json`` in ``directory``, counting from 1."""
    taken = set()
    for p in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if match:
            taken.add(int(match.group(1)))
    n = 1
    while n in taken:
        n += 1
    return directory / f"BENCH_{n}.json"


def run_benchmarks(
    sizes: dict[str, Any],
    case_names: list[str],
    ctx: BenchContext,
    repeats: int,
    warmup: int,
    quick: bool,
    seed: int,
    progress=None,
) -> dict[str, Any]:
    """Execute the suite and return the (schema-valid) result payload."""
    seed_everything(seed)
    results: list[dict[str, Any]] = []
    for size_name, spec in sizes.items():
        workload = build_workload(spec)
        for case_name in case_names:
            fn, meta, cleanup = CASES[case_name](workload, ctx)
            try:
                stats = time_case(fn, repeats=repeats, warmup=warmup)
            finally:
                if cleanup is not None:
                    cleanup()
            if progress is not None:
                progress(f"{case_name}@{size_name}: median {stats['median_s'] * 1e3:.3f} ms")
            results.append(
                {
                    "case": case_name,
                    "workload": size_name,
                    "stats": stats,
                    "meta": {
                        **meta,
                        "n_graphs": spec.n_graphs,
                        "n_gates": spec.n_gates,
                        "num_tiers": spec.num_tiers,
                        "workload_seed": spec.seed,
                    },
                }
            )
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tool": "m3d-bench",
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": machine_fingerprint(),
        "config": {
            "quick": quick,
            "repeats": repeats,
            "warmup": warmup,
            "seed": seed,
            "sizes": list(sizes),
            "cases": case_names,
            "batch_size": ctx.batch_size,
            "concurrency": ctx.concurrency,
            "precision": ctx.precision,
            "hidden": ctx.hidden,
        },
        "results": results,
    }
    payload["derived"] = derive_speedups(payload)
    return payload


def derive_speedups(payload: dict[str, Any]) -> dict[str, Any]:
    """Headline ratios: legacy median / optimized median, per workload."""
    rows = index_results(payload)
    speedups: dict[str, float] = {}
    for (case, workload), row in rows.items():
        if case != "node_scores_batch":
            continue
        legacy = rows.get(("node_scores_batch_legacy", workload))
        if legacy is None:
            continue
        optimized = row["stats"]["median_s"]
        if optimized > 0:
            speedups[workload] = round(legacy["stats"]["median_s"] / optimized, 3)
    derived: dict[str, Any] = {}
    if speedups:
        ordered = sorted(speedups.values())
        derived[SPEEDUP_KEY] = {
            **speedups,
            "median": round(ordered[len(ordered) // 2], 3),
        }
    return derived


def _resolve_cases(raw: str | None) -> list[str]:
    if raw is None:
        return list(CASES)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in CASES]
    if unknown:
        raise ValueError(f"unknown case(s): {', '.join(unknown)} (see `m3d-bench cases`)")
    return names


def _resolve_sizes(raw: str | None, quick: bool) -> dict[str, Any]:
    catalog = QUICK_SIZES if quick else SIZES
    if raw is None:
        return dict(catalog)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in catalog]
    if unknown:
        raise ValueError(
            f"unknown size(s) for this mode: {', '.join(unknown)} (have: {', '.join(catalog)})"
        )
    return {name: catalog[name] for name in names}


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        case_names = _resolve_cases(args.cases)
        sizes = _resolve_sizes(args.sizes, args.quick)
    except ValueError as exc:
        print(f"m3d-bench: {exc}", file=sys.stderr)
        return EXIT_USAGE
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)
    warmup = args.warmup if args.warmup is not None else (1 if args.quick else 2)
    ctx = BenchContext(
        hidden=args.hidden,
        precision=args.precision,
        batch_size=args.batch_size,
        concurrency=2 if args.quick and args.concurrency is None else (args.concurrency or 4),
        requests_per_client=2 if args.quick else 8,
    )
    payload = run_benchmarks(
        sizes,
        case_names,
        ctx,
        repeats=repeats,
        warmup=warmup,
        quick=args.quick,
        seed=args.seed,
        progress=lambda line: print(f"  {line}"),
    )
    errors = validate_payload(payload)
    if errors:  # a harness bug, not a user error — fail loudly
        for e in errors:
            print(f"m3d-bench: schema error: {e}", file=sys.stderr)
        return EXIT_USAGE
    out = args.out if args.out is not None else next_bench_path(args.dir)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    speedups = payload["derived"].get(SPEEDUP_KEY)
    if speedups:
        per_size = ", ".join(
            f"{k}={v}x" for k, v in speedups.items() if k != "median"
        )
        print(f"node_scores_batch speedup vs legacy: median {speedups['median']}x ({per_size})")
    print(f"wrote {out}")
    return EXIT_CLEAN


def _load_payload(path: Path) -> dict[str, Any]:
    payload = json.loads(path.read_text())
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"{path}: {'; '.join(errors[:5])}")
    return payload


def compare_payloads(
    old: dict[str, Any], new: dict[str, Any], fail_pct: float | None
) -> tuple[list[dict[str, Any]], list[str]]:
    """Per-(case, workload) ratio rows + regression descriptions.

    ``ratio`` is ``new_median / old_median`` — above 1.0 is slower. A case
    regresses when it slowed down by more than ``fail_pct`` percent.
    """
    old_rows, new_rows = index_results(old), index_results(new)
    shared = sorted(set(old_rows) & set(new_rows))
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for key in shared:
        case, workload = key
        old_median = old_rows[key]["stats"]["median_s"]
        new_median = new_rows[key]["stats"]["median_s"]
        ratio = new_median / old_median if old_median > 0 else float("inf")
        regressed = fail_pct is not None and ratio > 1.0 + fail_pct / 100.0
        rows.append(
            {
                "case": case,
                "workload": workload,
                "old_median_s": old_median,
                "new_median_s": new_median,
                "ratio": ratio,
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(
                f"{case}@{workload}: {old_median * 1e3:.3f} ms -> {new_median * 1e3:.3f} ms "
                f"({ratio:.2f}x, tripwire {1.0 + fail_pct / 100.0:.2f}x)"
            )
    return rows, regressions


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        old, new = _load_payload(args.old), _load_payload(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"m3d-bench: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if old["machine"] != new["machine"]:
        print(
            "m3d-bench: warning: machine fingerprints differ; "
            "ratios include hardware noise",
            file=sys.stderr,
        )
    rows, regressions = compare_payloads(old, new, args.fail_on_regression)
    if not rows:
        print("m3d-bench: no shared (case, workload) entries to compare", file=sys.stderr)
        return EXIT_USAGE
    width = max(len(f"{r['case']}@{r['workload']}") for r in rows)
    for r in rows:
        label = f"{r['case']}@{r['workload']}"
        flag = "  << REGRESSION" if r["regressed"] else ""
        print(
            f"{label:<{width}}  {r['old_median_s'] * 1e3:>10.3f} ms"
            f" -> {r['new_median_s'] * 1e3:>10.3f} ms  ({r['ratio']:.2f}x){flag}"
        )
    if regressions:
        print(
            f"m3d-bench: {len(regressions)} regression(s) past "
            f"{args.fail_on_regression:g}%:",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return EXIT_REGRESSION
    print(f"m3d-bench: {len(rows)} case(s) compared, no regressions past the tripwire")
    return EXIT_CLEAN


def _cmd_cases(args: argparse.Namespace) -> int:
    width = max(len(name) for name in CASES)
    for name in CASES:
        print(f"{name:<{width}}  {CASE_DESCRIPTIONS[name]}")
    return EXIT_CLEAN


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="m3d-bench", description="Offline hot-path benchmark harness."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="time the case catalog, write BENCH_<n>.json")
    run.add_argument("--out", type=Path, default=None,
                     help="output path (default: next BENCH_<n>.json in --dir)")
    run.add_argument("--dir", type=Path, default=Path("."),
                     help="directory for auto-numbered BENCH_<n>.json files")
    run.add_argument("--quick", action="store_true",
                     help="reduced sweep + few repeats (CI smoke; not quotable numbers)")
    run.add_argument("--sizes", default=None,
                     help="comma-separated workload sizes (default: full catalog)")
    run.add_argument("--cases", default=None,
                     help="comma-separated case names (default: all; see `m3d-bench cases`)")
    run.add_argument("--repeats", type=int, default=None,
                     help="recorded samples per case (default: 7, quick: 3)")
    run.add_argument("--warmup", type=int, default=None,
                     help="unrecorded warmup calls per case (default: 2, quick: 1)")
    run.add_argument("--seed", type=int, default=2022, help="global RNG seed")
    run.add_argument("--hidden", type=int, default=32, help="model hidden width")
    run.add_argument("--precision", choices=("float64", "float32"), default="float64",
                     help="model compute dtype")
    run.add_argument("--batch-size", type=int, default=16,
                     help="graphs per batched forward in the batch cases")
    run.add_argument("--concurrency", type=int, default=None,
                     help="client threads in e2e_localize (default: 4, quick: 2)")
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="median ratios between two BENCH files")
    compare.add_argument("old", type=Path)
    compare.add_argument("new", type=Path)
    compare.add_argument("--fail-on-regression", type=float, default=None, metavar="PCT",
                         help="exit 1 if any shared case slowed by more than PCT percent")
    compare.set_defaults(func=_cmd_compare)

    cases = sub.add_parser("cases", help="print the case catalog")
    cases.set_defaults(func=_cmd_cases)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())

"""Timing methodology + the ``BENCH_<n>.json`` result schema.

One bench sample is one call of the case's closure. The harness runs
``warmup`` unrecorded calls (JIT-free Python still has one-time costs:
cache fills, lazy imports, branch-predictor/allocator warmth), then
``repeats`` recorded calls, and reports *trimmed* statistics — the top and
bottom ~20% of samples are dropped for the trimmed mean, and the median is
used as the headline number — so one GC pause or scheduler hiccup cannot
manufacture (or mask) a regression.

Results carry a machine fingerprint. Comparing files from different
fingerprints is allowed (``m3d-bench compare`` warns but proceeds): the
regression tripwire in CI is deliberately generous for exactly that reason.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Callable

import numpy as np
import scipy

BENCH_SCHEMA_VERSION = 1

#: Fraction of samples trimmed from each tail for the trimmed mean.
TRIM_FRACTION = 0.2

#: Keys every per-case ``stats`` block must carry.
STAT_KEYS = ("median_s", "trimmed_mean_s", "p10_s", "p90_s", "min_s", "max_s", "repeats")


def machine_fingerprint() -> dict[str, Any]:
    """Where these numbers came from; compared (loosely) by ``compare``."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "cpu_count": os.cpu_count(),
    }


def time_case(
    fn: Callable[[], Any],
    repeats: int = 7,
    warmup: int = 2,
) -> dict[str, Any]:
    """Run ``fn`` ``warmup + repeats`` times; return trimmed stats in seconds."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = np.empty(repeats, dtype=np.float64)
    for i in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples[i] = time.perf_counter() - t0
    ordered = np.sort(samples)
    trim = int(len(ordered) * TRIM_FRACTION)
    trimmed = ordered[trim : len(ordered) - trim] if trim else ordered
    return {
        "median_s": float(np.median(samples)),
        "trimmed_mean_s": float(trimmed.mean()),
        "p10_s": float(np.quantile(samples, 0.1)),
        "p90_s": float(np.quantile(samples, 0.9)),
        "min_s": float(ordered[0]),
        "max_s": float(ordered[-1]),
        "repeats": repeats,
    }


def validate_payload(payload: Any) -> list[str]:
    """Schema check for a ``BENCH_<n>.json`` payload; returns error strings.

    Used by the test suite, by ``m3d-bench compare`` (both sides must be
    valid before ratios mean anything), and by CI's bench-smoke job.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload must be a JSON object"]
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, got {payload.get('schema_version')!r}"
        )
    for key in ("machine", "config"):
        if not isinstance(payload.get(key), dict):
            errors.append(f"missing or non-object {key!r} block")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        return errors + ["missing or empty 'results' list"]
    seen: set[tuple[str, str]] = set()
    for i, row in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        case, workload = row.get("case"), row.get("workload")
        if not isinstance(case, str) or not case:
            errors.append(f"{where}: missing case name")
        if not isinstance(workload, str) or not workload:
            errors.append(f"{where}: missing workload name")
        if isinstance(case, str) and isinstance(workload, str):
            if (case, workload) in seen:
                errors.append(f"{where}: duplicate entry for {case}@{workload}")
            seen.add((case, workload))
        stats = row.get("stats")
        if not isinstance(stats, dict):
            errors.append(f"{where}: missing stats block")
            continue
        for key in STAT_KEYS:
            value = stats.get(key)
            if not isinstance(value, (int, float)):
                errors.append(f"{where}: stats.{key} missing or non-numeric")
            elif key != "repeats" and (value < 0 or not np.isfinite(value)):
                errors.append(f"{where}: stats.{key} must be finite and >= 0")
    return errors


def index_results(payload: dict[str, Any]) -> dict[tuple[str, str], dict[str, Any]]:
    """``(case, workload) -> result row`` for a validated payload."""
    return {(row["case"], row["workload"]): row for row in payload["results"]}

"""Inline suppression pragmas for the AST lint families.

A finding can be acknowledged in place with::

    self._handle.flush()  # m3dlint: disable=M3D30x reason=leaf lock, no nesting

The pragma applies to the line it sits on — or, when the comment stands
alone on its own line, to the line below it (for statements too long to
carry an inline comment). It names one or more rule IDs (comma-separated)
and **must** carry a ``reason=`` — an unexplained suppression is worse
than the finding it hides. The engine keeps pragmas
honest two ways, both reported under the meta-rule ``M3D300``:

- a pragma without a ``reason=`` suppresses nothing and is itself flagged;
- a pragma naming a rule that is *active in this run* but suppressed no
  finding is stale (the underlying code was fixed) and is flagged so dead
  pragmas cannot accumulate. Rules not active in the current run (e.g. an
  ``M3D3xx`` pragma while ``m3dlint code`` runs only the ``M3D2xx`` family)
  are ignored rather than reported, since the two subcommands share files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from m3d_fault_loc.analysis.violations import Severity, Violation

#: Meta-rule ID for malformed or stale suppression pragmas.
PRAGMA_RULE_ID = "M3D300"

_PRAGMA_RE = re.compile(
    r"#\s*m3dlint:\s*disable=(?P<ids>[A-Za-z0-9_,\s]*?)(?:\s+reason=(?P<reason>.*))?$"
)


@dataclass
class Pragma:
    """One suppression comment.

    ``line`` is where the comment sits; ``target_line`` is the line whose
    findings it covers (the next line for a standalone comment, the same
    line for an inline one).
    """

    line: int
    target_line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = False


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract every ``# m3dlint: disable=...`` pragma with its line number."""
    pragmas: list[Pragma] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group("ids").split(",") if part.strip())
        reason = (match.group("reason") or "").strip()
        standalone = not text[: match.start()].strip()
        pragmas.append(
            Pragma(
                line=lineno,
                target_line=lineno + 1 if standalone else lineno,
                rule_ids=ids,
                reason=reason,
            )
        )
    return pragmas


def _finding_line(violation: Violation, path: Path) -> int | None:
    """Line number of a ``path:line`` location, or ``None`` if unparsable."""
    prefix = f"{path}:"
    if not violation.location.startswith(prefix):
        return None
    try:
        return int(violation.location[len(prefix) :].split(":", 1)[0])
    except ValueError:
        return None


def apply_suppressions(
    findings: list[Violation],
    source: str,
    path: Path,
    active_rule_ids: set[str],
) -> list[Violation]:
    """Filter findings covered by valid same-line pragmas; police the pragmas.

    Returns the surviving findings plus one ``M3D300`` finding per pragma
    that is malformed (no rule IDs, or missing ``reason=``) or stale (names
    an active rule yet suppressed nothing this run).
    """
    pragmas = parse_pragmas(source)
    if not pragmas:
        return findings
    by_line = {p.target_line: p for p in pragmas}

    kept: list[Violation] = []
    for violation in findings:
        line = _finding_line(violation, path)
        pragma = by_line.get(line) if line is not None else None
        if (
            pragma is not None
            and pragma.reason
            and violation.rule_id in pragma.rule_ids
        ):
            pragma.used = True
            continue
        kept.append(violation)

    for pragma in pragmas:
        problem: str | None = None
        if not pragma.rule_ids:
            problem = "names no rule IDs"
        elif not pragma.reason:
            problem = "has no reason= (unexplained suppressions are not honored)"
        elif not pragma.used and any(rid in active_rule_ids for rid in pragma.rule_ids):
            problem = (
                f"suppressed nothing (rules {', '.join(pragma.rule_ids)} raised no "
                "finding on this line); remove the stale pragma"
            )
        if problem is not None:
            kept.append(
                Violation(
                    rule_id=PRAGMA_RULE_ID,
                    severity=Severity.WARNING,
                    message=f"suppression pragma {problem}",
                    location=f"{path}:{pragma.line}",
                )
            )
    return kept

"""Finding model shared by the contract checker and the code lint pass."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.IntEnum):
    """Finding severity; ERROR findings fail gates and flip exit codes."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "ERROR" instead of "Severity.ERROR" in reports
        return self.name


@dataclass(frozen=True)
class Violation:
    """One static-analysis finding.

    ``location`` is a node/edge description for graph findings and a
    ``path:line`` reference for code findings.
    """

    rule_id: str
    severity: Severity
    message: str
    location: str = ""
    context: dict[str, Any] = field(default_factory=dict, compare=False)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location,
            **({"context": self.context} if self.context else {}),
        }

    def render(self) -> str:
        loc = f"{self.location}: " if self.location else ""
        return f"[{self.severity}] {self.rule_id} {loc}{self.message}"


def has_errors(violations: list[Violation]) -> bool:
    return any(v.severity >= Severity.ERROR for v in violations)

"""Declarative rule engine for the netlist contract checker.

Each rule is a small class with an ``id``, a ``severity``, and a
``check(graph, config) -> list[Violation]`` method. The engine owns a
registry of rule instances and runs them in id order; callers (the CLI and
the dataset loader gate) only see the flat finding list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Generic, TypeVar

from m3d_fault_loc.analysis.violations import Severity, Violation
from m3d_fault_loc.graph.schema import CircuitGraph

RuleT = TypeVar("RuleT")


class RuleRegistry(Generic[RuleT]):
    """Duplicate-rejecting ``id -> rule`` registry shared by every rule family.

    Both the graph contract engine and the code/concurrency lint catalogs
    register through this class, so two rules claiming the same ID is a
    loud ``ValueError`` at registration time — never a silent shadow where
    the later registration wins and the earlier rule stops running.
    """

    def __init__(self, rules: list[RuleT] | None = None):
        self._rules: dict[str, RuleT] = {}
        for rule in rules or []:
            self.register(rule)

    def register(self, rule: RuleT) -> None:
        rule_id = getattr(rule, "id", None)
        if not isinstance(rule_id, str) or not rule_id:
            raise ValueError(f"rule {rule!r} has no string 'id' attribute")
        existing = self._rules.get(rule_id)
        if existing is not None:
            raise ValueError(
                f"duplicate rule id: {rule_id} "
                f"({type(existing).__name__} is already registered under it; "
                f"refusing to shadow it with {type(rule).__name__})"
            )
        self._rules[rule_id] = rule

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def ids(self) -> list[str]:
        return sorted(self._rules)

    @property
    def rules(self) -> list[RuleT]:
        return [self._rules[rid] for rid in sorted(self._rules)]


@dataclass(frozen=True)
class RuleConfig:
    """Tunable thresholds shared by all rules."""

    #: Fan-out above this bound is flagged (buffering/electrical concern).
    max_fanout: int = 32


class GraphRule(ABC):
    """One contract rule over a :class:`CircuitGraph`."""

    id: str
    severity: Severity
    description: str

    @abstractmethod
    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        """Return all findings for ``graph`` (empty list when clean)."""

    def violation(self, message: str, location: str = "", **context: object) -> Violation:
        return Violation(
            rule_id=self.id,
            severity=self.severity,
            message=message,
            location=location,
            context=dict(context),
        )


class RuleEngine:
    """Registry + runner for contract rules."""

    def __init__(self, rules: list[GraphRule] | None = None, config: RuleConfig | None = None):
        self.config = config or RuleConfig()
        self._registry: RuleRegistry[GraphRule] = RuleRegistry()
        for rule in rules or []:
            self.register(rule)

    def register(self, rule: GraphRule) -> None:
        self._registry.register(rule)

    @property
    def rules(self) -> list[GraphRule]:
        return self._registry.rules

    def run(self, graph: CircuitGraph) -> list[Violation]:
        """Run every registered rule; structural ERROR findings from earlier
        rules do not stop later ones — callers get the full picture."""
        findings: list[Violation] = []
        for rule in self.rules:
            findings.extend(rule.check(graph, self.config))
        return findings


def default_engine(config: RuleConfig | None = None) -> RuleEngine:
    """Engine with the full built-in rule catalog registered."""
    from m3d_fault_loc.analysis.graph_rules import BUILTIN_GRAPH_RULES

    return RuleEngine(rules=[cls() for cls in BUILTIN_GRAPH_RULES], config=config)

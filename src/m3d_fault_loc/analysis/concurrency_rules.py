"""AST lint pass over the Python stack: lock-discipline footguns (M3D3xx).

The serving tier coordinates a dozen ``threading.Lock``/``Event`` instances
across the micro-batch worker, watchdog, breaker, and metrics registry.
These rules encode the lock discipline that keeps that coordination sound —
statically, as a complement to the runtime lock-order sanitizer in
:mod:`m3d_fault_loc.testing.racecheck`:

- **M3D301** an instance attribute rebound both inside and outside a
  ``with self._lock:`` block in the same class — the unlocked write makes
  the locked ones theater,
- **M3D302** a blocking call (queue get/put, ``time.sleep``, ``.wait()``,
  file/socket I/O) made while holding a lock — every other thread queues
  behind I/O it never asked for,
- **M3D303** a lock/Event constructed outside ``__init__`` (or module
  scope) — a per-call lock guards nothing,
- **M3D304** ``Thread.join()``/``Event.wait()`` without a timeout in
  library code — an unbounded wait is a hang, not a policy,
- **M3D305** a ``threading.Thread`` created without an explicit ``daemon``
  flag — shutdown behavior becomes an accident of the default,
- **M3D306** a callback attribute (``on_*``/``*_hook``/``*_listener``/
  ``*_callback``) invoked — directly or transitively through same-class
  helpers — while holding a lock: user code running under your lock is the
  classic re-entrancy deadlock.

All escalate from WARNING to ERROR inside ``serve/`` sources, where the
multi-worker scale-out depends on this discipline. Findings are suppressed
in place with ``# m3dlint: disable=M3D30x reason=...``
(:mod:`m3d_fault_loc.analysis.suppress`).
"""

from __future__ import annotations

import ast
from pathlib import Path

from m3d_fault_loc.analysis.code_rules import CodeRule, _dotted_name
from m3d_fault_loc.analysis.violations import Severity, Violation

#: Name fragments that mark an attribute/variable as a mutual-exclusion lock.
LOCK_NAME_HINTS = ("lock", "mutex")

#: Constructors of synchronization primitives (M3D303).
_SYNC_FACTORIES = ("Lock", "RLock", "Event", "Condition", "Semaphore", "BoundedSemaphore")

#: Attribute-name fragments that mark a stored callable as an escaping callback.
_CALLBACK_HINTS = ("callback", "listener", "hook", "observer", "subscriber")

#: Receiver-name fragments that mark a handle as file/socket-like I/O (M3D302).
_IO_RECEIVER_HINTS = (
    "handle", "file", "fh", "fp", "sock", "stream", "wfile", "rfile", "conn", "pipe",
)
_IO_METHODS = ("read", "readline", "readlines", "write", "flush", "recv", "send",
               "sendall", "accept", "connect")

#: Receiver-name fragments that mark a ``.get``/``.put`` target as a queue.
_QUEUE_RECEIVER_HINTS = ("queue", "_q")

#: Receiver-name fragments that mark a ``.join`` target as a thread/process.
_THREAD_RECEIVER_HINTS = ("thread", "worker", "watchdog", "proc", "child")

#: Path parts whose modules are process entry points, not library code.
_ENTRY_POINT_PARTS = ("cli", "scripts", "tests")


def _in_serve(path: Path) -> bool:
    return "serve" in path.parts


def _terminal_name(node: ast.AST) -> str:
    """Last identifier of a dotted expression (``self.a.b`` -> ``"b"``)."""
    dotted = _dotted_name(node)
    return dotted[-1] if dotted else ""


def _is_lock_name(name: str) -> bool:
    return any(hint in name.lower() for hint in LOCK_NAME_HINTS)


def _lock_names_of_with(node: ast.With | ast.AsyncWith) -> list[str]:
    """Lock-looking context managers of a ``with`` statement, by name."""
    names = []
    for item in node.items:
        ctx = item.context_expr
        target = ctx.func if isinstance(ctx, ast.Call) else ctx
        name = _terminal_name(target)
        if name and _is_lock_name(name):
            names.append(name)
    return names


def _self_attr_target(node: ast.AST) -> str | None:
    """``self.x`` -> ``"x"``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _has_timeout(call: ast.Call) -> bool:
    return bool(call.args) or any(kw.arg == "timeout" for kw in call.keywords)


class ConcurrencyRule(CodeRule):
    """Shared severity escalation: WARNING everywhere, ERROR under serve/."""

    severity = Severity.WARNING

    def escalated(self, path: Path) -> Severity:
        return Severity.ERROR if _in_serve(path) else Severity.WARNING

    def where(self, path: Path) -> str:
        return " inside serving code" if _in_serve(path) else ""


class _LockScopeVisitor(ast.NodeVisitor):
    """Walks one function body tracking the stack of held (lexical) locks."""

    def __init__(self) -> None:
        self.lock_stack: list[str] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locks = _lock_names_of_with(node)
        self.lock_stack.extend(locks)
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        if locks:
            del self.lock_stack[len(self.lock_stack) - len(locks) :]

    # Nested function/class definitions get their own lock scope: a closure
    # defined under a lock does not *run* under it.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.AST) -> None:
        saved, self.lock_stack = self.lock_stack, []
        self.generic_visit(node)
        self.lock_stack = saved


class LockedAttributeDisciplineRule(ConcurrencyRule):
    """An attribute written under ``with self._lock`` in one method and bare
    in another is only *sometimes* protected — which is never protected.
    ``__init__`` is exempt: construction happens before the object is
    shared."""

    id = "M3D301"
    description = (
        "instance attributes locked anywhere must be locked everywhere "
        "(ERROR inside serve/ code)"
    )

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locked: dict[str, tuple[str, int]] = {}  # attr -> (lock, first line)
            unlocked: dict[str, tuple[str, int]] = {}  # attr -> (method, first line)
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for attr, lock, line in self._attribute_writes(fn):
                    if lock is not None:
                        locked.setdefault(attr, (lock, line))
                    elif fn.name != "__init__":
                        unlocked.setdefault(attr, (fn.name, line))
            for attr in sorted(set(locked) & set(unlocked)):
                lock, locked_line = locked[attr]
                method, bare_line = unlocked[attr]
                findings.append(
                    self.violation(
                        f"attribute 'self.{attr}' of class '{cls.name}' is written "
                        f"under '{lock}' (line {locked_line}) but bare in "
                        f"'{method}' (line {bare_line}){self.where(path)}; "
                        "an unlocked writer defeats every locked one",
                        path,
                        bare_line,
                        self.escalated(path),
                    )
                )
        return findings

    @staticmethod
    def _attribute_writes(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[tuple[str, str | None, int]]:
        """Every ``self.x = ...`` in ``fn`` as (attr, holding lock | None, line)."""
        writes: list[tuple[str, str | None, int]] = []

        class Visitor(_LockScopeVisitor):
            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._note(target, node.lineno)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._note(node.target, node.lineno)
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                if node.value is not None:
                    self._note(node.target, node.lineno)
                self.generic_visit(node)

            def _note(self, target: ast.AST, line: int) -> None:
                attr = _self_attr_target(target)
                if attr is not None and not _is_lock_name(attr):
                    held = self.lock_stack[-1] if self.lock_stack else None
                    writes.append((attr, held, line))

        visitor = Visitor()
        for stmt in fn.body:
            visitor.visit(stmt)
        return writes


class BlockingCallUnderLockRule(ConcurrencyRule):
    """Sleeping, waiting, queue transfers, or file/socket I/O while holding a
    lock serializes every other thread behind work that is not critical
    section — and is one half of most real deadlocks."""

    id = "M3D302"
    description = "no blocking calls (sleep/wait/queue/file I/O) while holding a lock "\
                  "(ERROR inside serve/ code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        rule = self

        class Visitor(_LockScopeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if self.lock_stack:
                    reason = rule._blocking_reason(node)
                    if reason is not None:
                        findings.append(
                            rule.violation(
                                f"{reason} while holding '{self.lock_stack[-1]}'"
                                f"{rule.where(path)}; move the blocking work outside "
                                "the critical section",
                                path,
                                node.lineno,
                                rule.escalated(path),
                            )
                        )
                self.generic_visit(node)

        Visitor().visit(tree)
        return findings

    @staticmethod
    def _blocking_reason(node: ast.Call) -> str | None:
        dotted = _dotted_name(node.func)
        if not dotted:
            return None
        name = dotted[-1]
        receiver = ".".join(dotted[:-1])
        receiver_lower = receiver.lower()
        if dotted == ("open",) or name == "open":
            return f"file open '{'.'.join(dotted)}()'"
        if name == "sleep":
            return f"'{'.'.join(dotted)}()'"
        if name == "wait":
            return f"blocking wait '{'.'.join(dotted)}()'"
        if name == "join" and any(h in receiver_lower for h in _THREAD_RECEIVER_HINTS):
            return f"thread join '{'.'.join(dotted)}()'"
        if name in ("get", "put") and any(
            h in receiver_lower for h in _QUEUE_RECEIVER_HINTS
        ):
            return f"queue transfer '{'.'.join(dotted)}()'"
        if name in _IO_METHODS and any(h in receiver_lower for h in _IO_RECEIVER_HINTS):
            return f"file/socket I/O '{'.'.join(dotted)}()'"
        return None


class LockCreatedOutsideInitRule(ConcurrencyRule):
    """A ``threading.Lock``/``Event`` built inside an ordinary function is a
    fresh, unshared object per call: nothing ever contends on it, so it
    guards nothing. Locks belong in ``__init__`` (or module scope)."""

    id = "M3D303"
    description = "locks/Events must be created in __init__ or module scope "\
                  "(ERROR inside serve/ code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        self._visit(tree, path, fn_stack=[], findings=findings)
        return findings

    def _visit(
        self,
        node: ast.AST,
        path: Path,
        fn_stack: list[str],
        findings: list[Violation],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call) and self._creates_primitive(child) and fn_stack:
                if fn_stack[-1] != "__init__":
                    target = ".".join(_dotted_name(child.func))
                    findings.append(
                        self.violation(
                            f"synchronization primitive '{target}()' created inside "
                            f"'{fn_stack[-1]}'{self.where(path)}; a per-call lock "
                            "guards nothing — create it in __init__ or at module scope",
                            path,
                            child.lineno,
                            self.escalated(path),
                        )
                    )
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit(child, path, fn_stack + [child.name], findings)
            else:
                self._visit(child, path, fn_stack, findings)

    @staticmethod
    def _creates_primitive(call: ast.Call) -> bool:
        dotted = _dotted_name(call.func)
        if len(dotted) == 2 and dotted[0] == "threading" and dotted[1] in _SYNC_FACTORIES:
            return True
        return len(dotted) == 1 and dotted[0] in _SYNC_FACTORIES


class UnboundedJoinWaitRule(ConcurrencyRule):
    """``Thread.join()`` or ``Event.wait()`` without a timeout can wait
    forever; library code must bound every wait so a wedged peer becomes an
    observable failure instead of a hang. Entry points (``cli/``,
    ``scripts/``, ``tests/``) are exempt — blocking is their job."""

    id = "M3D304"
    description = "no unbounded Thread.join()/Event.wait() in library code "\
                  "(ERROR inside serve/ code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        if any(part in _ENTRY_POINT_PARTS for part in path.parts):
            return []
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or _has_timeout(node):
                continue
            dotted = _dotted_name(node.func)
            if not dotted:
                continue
            name = dotted[-1]
            receiver = ".".join(dotted[:-1]).lower()
            unbounded = name == "wait" or (
                name == "join" and any(h in receiver for h in _THREAD_RECEIVER_HINTS)
            )
            if unbounded:
                findings.append(
                    self.violation(
                        f"unbounded '{'.'.join(dotted)}()' in library code"
                        f"{self.where(path)}; pass a timeout so a wedged peer "
                        "fails loudly instead of hanging the caller",
                        path,
                        node.lineno,
                        self.escalated(path),
                    )
                )
        return findings


class ImplicitDaemonThreadRule(ConcurrencyRule):
    """Whether a worker outlives (or blocks) interpreter shutdown must be a
    decision, not a default: every ``threading.Thread(...)`` needs an
    explicit ``daemon=`` (or a ``t.daemon = ...`` before start)."""

    id = "M3D305"
    description = "threads must set daemon= explicitly (ERROR inside serve/ code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        seen: set[int] = set()  # function scopes first; module walk sees them too
        for scope in self._scopes(tree):
            sets_daemon_attr = any(
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Attribute) and t.attr == "daemon"
                    for t in node.targets
                )
                for node in ast.walk(scope)
            )
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                if _dotted_name(node.func)[-1:] != ("Thread",):
                    continue
                seen.add(id(node))
                if any(kw.arg == "daemon" for kw in node.keywords) or sets_daemon_attr:
                    continue
                findings.append(
                    self.violation(
                        f"Thread created without an explicit daemon= flag"
                        f"{self.where(path)}; shutdown behavior must be chosen, "
                        "not inherited",
                        path,
                        node.lineno,
                        self.escalated(path),
                    )
                )
        return findings

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        """Innermost function scopes plus the module body itself."""
        scopes: list[ast.AST] = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes.append(tree)
        return scopes


class CallbackUnderLockRule(ConcurrencyRule):
    """Invoking a stored callback while holding the lock that protects the
    invoker hands *your* lock to *someone else's* code. If that code calls
    back in — or takes another lock — you get re-entrant deadlock or a
    lock-order inversion. Detected transitively: a ``with self._lock:``
    block calling a same-class helper that (eventually) fires a callback is
    flagged at the call site inside the lock."""

    id = "M3D306"
    description = "no callback/listener/hook invocation while holding a lock "\
                  "(ERROR inside serve/ code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                findings.extend(self._check_class(cls, path))
        return findings

    def _check_class(self, cls: ast.ClassDef, path: Path) -> list[Violation]:
        methods = {
            fn.name: fn
            for fn in cls.body
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Methods that directly invoke a callback-looking self attribute.
        direct: dict[str, str] = {}
        calls: dict[str, set[str]] = {name: set() for name in methods}
        for name, fn in methods.items():
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                attr = _self_attr_target(node.func)
                if attr is None:
                    continue
                if attr in methods:
                    calls[name].add(attr)
                elif self._is_callback_name(attr):
                    direct.setdefault(name, attr)
        # Transitive closure: which methods eventually fire a callback?
        tainted: dict[str, str] = dict(direct)
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in tainted:
                    continue
                for callee in calls[name]:
                    if callee in tainted:
                        tainted[name] = tainted[callee]
                        changed = True
                        break

        findings: list[Violation] = []
        rule = self

        class Visitor(_LockScopeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if self.lock_stack:
                    attr = _self_attr_target(node.func)
                    callback: str | None = None
                    via = ""
                    if attr is not None and rule._is_callback_name(attr):
                        callback = attr
                    elif attr in tainted:
                        callback = tainted[attr]  # type: ignore[index]
                        via = f" (via 'self.{attr}()')"
                    if callback is not None:
                        findings.append(
                            rule.violation(
                                f"callback 'self.{callback}' of class '{cls.name}' "
                                f"invoked while holding '{self.lock_stack[-1]}'"
                                f"{via}{rule.where(path)}; release the lock before "
                                "running user code",
                                path,
                                node.lineno,
                                rule.escalated(path),
                            )
                        )
                self.generic_visit(node)

        for fn in methods.values():
            visitor = Visitor()
            for stmt in fn.body:
                visitor.visit(stmt)
        return findings

    @staticmethod
    def _is_callback_name(attr: str) -> bool:
        lowered = attr.lower().lstrip("_")
        if lowered.startswith("on_"):
            return True
        return any(hint in lowered for hint in _CALLBACK_HINTS)


#: Full built-in concurrency catalog, in rule-id order.
BUILTIN_CONCURRENCY_RULES: tuple[type[CodeRule], ...] = (
    LockedAttributeDisciplineRule,
    BlockingCallUnderLockRule,
    LockCreatedOutsideInitRule,
    UnboundedJoinWaitRule,
    ImplicitDaemonThreadRule,
    CallbackUnderLockRule,
)

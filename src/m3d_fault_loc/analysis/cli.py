"""``m3dlint`` — static analysis CLI.

Subcommands:

- ``m3dlint check PATH [PATH...]`` — run the netlist contract checker over
  serialized circuit graphs (``*.json`` files or directories of them).
- ``m3dlint code PATH [PATH...]`` — run the AST lint pass over Python files
  or source trees.
- ``m3dlint rules`` — print the rule catalog.

Exit codes: 0 clean (warnings allowed), 1 at least one ERROR finding,
2 usage or input error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from m3d_fault_loc.analysis.code_rules import BUILTIN_CODE_RULES, lint_paths
from m3d_fault_loc.analysis.engine import RuleConfig, default_engine
from m3d_fault_loc.analysis.violations import Severity, Violation, has_errors
from m3d_fault_loc.graph.schema import CircuitGraph

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _collect_graph_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.json")))
        elif p.exists():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return files


def _report(violations: list[Violation], fmt: str, n_targets: int, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    errors = sum(1 for v in violations if v.severity >= Severity.ERROR)
    warnings = len(violations) - errors
    if fmt == "json":
        payload = {
            "targets": n_targets,
            "counts": {"error": errors, "warning": warnings},
            "violations": [v.to_json_dict() for v in violations],
        }
        print(json.dumps(payload, indent=2), file=stream)
    else:
        for v in violations:
            print(v.render(), file=stream)
        print(
            f"m3dlint: {n_targets} target(s) checked, {errors} error(s), {warnings} warning(s)",
            file=stream,
        )
    return EXIT_FINDINGS if errors else EXIT_CLEAN


def _cmd_check(args: argparse.Namespace) -> int:
    engine = default_engine(RuleConfig(max_fanout=args.max_fanout))
    try:
        files = _collect_graph_files([Path(p) for p in args.paths])
    except FileNotFoundError as exc:
        print(f"m3dlint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not files:
        print("m3dlint: no graph files found", file=sys.stderr)
        return EXIT_USAGE
    violations: list[Violation] = []
    for f in files:
        try:
            graph = CircuitGraph.load(f)
        except Exception as exc:  # corrupt payloads are findings, not crashes
            violations.append(
                Violation(
                    rule_id="M3D100",
                    severity=Severity.ERROR,
                    message=f"unreadable graph payload: {type(exc).__name__}: {exc}",
                    location=str(f),
                )
            )
            continue
        for v in engine.run(graph):
            violations.append(
                Violation(
                    rule_id=v.rule_id,
                    severity=v.severity,
                    message=v.message,
                    location=f"{f}: {v.location}" if v.location else str(f),
                    context=v.context,
                )
            )
    return _report(violations, args.format, len(files))


def _cmd_code(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"m3dlint: no such file or directory: {missing[0]}", file=sys.stderr)
        return EXIT_USAGE
    violations = lint_paths(paths)
    n_files = sum(len(list(p.rglob("*.py"))) if p.is_dir() else 1 for p in paths)
    return _report(violations, args.format, n_files)


def _cmd_rules(args: argparse.Namespace) -> int:
    engine = default_engine()
    rows = [(r.id, str(r.severity), r.description) for r in engine.rules]
    rows += [(cls.id, str(cls.severity), cls.description) for cls in BUILTIN_CODE_RULES]
    if args.format == "json":
        print(
            json.dumps(
                [{"id": i, "severity": s, "description": d} for i, s, d in rows], indent=2
            )
        )
    else:
        for rule_id, severity, description in rows:
            print(f"{rule_id}  {severity:<7}  {description}")
    return EXIT_CLEAN


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="m3dlint",
        description="Static analysis for the M3D fault-localization stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="validate serialized circuit graphs")
    check.add_argument("paths", nargs="+", help="graph JSON files or directories")
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument("--max-fanout", type=int, default=RuleConfig().max_fanout)
    check.set_defaults(func=_cmd_check)

    code = sub.add_parser("code", help="lint Python sources for GNN-stack footguns")
    code.add_argument("paths", nargs="+", help="Python files or directories")
    code.add_argument("--format", choices=("text", "json"), default="text")
    code.set_defaults(func=_cmd_code)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.add_argument("--format", choices=("text", "json"), default="text")
    rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())

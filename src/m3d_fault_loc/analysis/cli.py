"""``m3dlint`` — static analysis CLI.

Subcommands:

- ``m3dlint check PATH [PATH...]`` — run the netlist contract checker over
  serialized circuit graphs (``*.json`` files or directories of them);
  ``--scenario NAME`` composes that scenario's M3D11x payload rules into
  the engine, gating the graphs exactly as ``/localize`` would.
- ``m3dlint code PATH [PATH...]`` — run the AST lint pass over Python files
  or source trees (M3D2xx GNN-stack footguns).
- ``m3dlint concurrency PATH [PATH...]`` — run the lock-discipline lint
  pass (M3D301–M3D306) over Python files or source trees.
- ``m3dlint rules`` — print the rule catalog.

Output formats (``--format``): ``text`` (default), ``json``, and
``github`` — GitHub Actions workflow-command annotations
(``::error file=...,line=...,title=M3D205::message``) so CI findings render
inline on the PR diff.

Exit codes: 0 clean, 1 findings at or above the ``--fail-on`` threshold
(default ``error``; ``warning`` fails on any finding, ``never`` always
exits 0), 2 usage or input error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from m3d_fault_loc.analysis.code_rules import BUILTIN_CODE_RULES, CodeRule, lint_paths
from m3d_fault_loc.analysis.concurrency_rules import BUILTIN_CONCURRENCY_RULES
from m3d_fault_loc.analysis.engine import RuleConfig, RuleRegistry, default_engine
from m3d_fault_loc.analysis.violations import Severity, Violation
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.scenarios import (
    SCENARIO_GRAPH_RULES,
    UnknownScenarioError,
    build_scenario_engine,
    scenario_names,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

FORMATS = ("text", "json", "github")
FAIL_ON = ("error", "warning", "never")


def code_rule_catalog() -> RuleRegistry[CodeRule]:
    """The full AST rule catalog (M3D2xx + M3D3xx), duplicate-checked."""
    registry: RuleRegistry[CodeRule] = RuleRegistry()
    for cls in BUILTIN_CODE_RULES + BUILTIN_CONCURRENCY_RULES:
        registry.register(cls())
    return registry


def _collect_graph_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.json")))
        elif p.exists():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return files


def _github_annotation(v: Violation) -> str:
    """One GitHub Actions workflow command for a finding.

    Locations are ``path``, ``path:line``, or ``path: detail`` — only a
    trailing integer becomes a ``line=`` property.
    """
    level = "error" if v.severity >= Severity.ERROR else "warning"
    path, line = v.location, None
    if ":" in v.location:
        head, _, tail = v.location.rpartition(":")
        if tail.strip().isdigit():
            path, line = head, int(tail)
    props = f"file={path}" if path else ""
    if line is not None:
        props += f",line={line}"
    # Workflow-command syntax: %, CR, LF in the message must be escaped.
    message = v.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    return f"::{level} {f'{props},' if props else ''}title={v.rule_id}::{message}"


def _exit_code(violations: list[Violation], fail_on: str) -> int:
    if fail_on == "never":
        return EXIT_CLEAN
    if fail_on == "warning":
        return EXIT_FINDINGS if violations else EXIT_CLEAN
    errors = any(v.severity >= Severity.ERROR for v in violations)
    return EXIT_FINDINGS if errors else EXIT_CLEAN


def _report(
    violations: list[Violation],
    fmt: str,
    n_targets: int,
    fail_on: str = "error",
    stream=None,
) -> int:
    stream = stream if stream is not None else sys.stdout
    errors = sum(1 for v in violations if v.severity >= Severity.ERROR)
    warnings = len(violations) - errors
    if fmt == "json":
        payload = {
            "targets": n_targets,
            "counts": {"error": errors, "warning": warnings},
            "violations": [v.to_json_dict() for v in violations],
        }
        print(json.dumps(payload, indent=2), file=stream)
    elif fmt == "github":
        for v in violations:
            print(_github_annotation(v), file=stream)
        print(
            f"m3dlint: {n_targets} target(s) checked, {errors} error(s), {warnings} warning(s)",
            file=stream,
        )
    else:
        for v in violations:
            print(v.render(), file=stream)
        print(
            f"m3dlint: {n_targets} target(s) checked, {errors} error(s), {warnings} warning(s)",
            file=stream,
        )
    return _exit_code(violations, fail_on)


def _cmd_check(args: argparse.Namespace) -> int:
    engine = default_engine(RuleConfig(max_fanout=args.max_fanout))
    if args.scenario is not None:
        try:
            engine = build_scenario_engine(args.scenario, base_engine=engine)
        except UnknownScenarioError as exc:
            print(
                f"m3dlint: unknown scenario {exc.name!r}; known: {', '.join(exc.known)}",
                file=sys.stderr,
            )
            return EXIT_USAGE
    try:
        files = _collect_graph_files([Path(p) for p in args.paths])
    except FileNotFoundError as exc:
        print(f"m3dlint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not files:
        print("m3dlint: no graph files found", file=sys.stderr)
        return EXIT_USAGE
    violations: list[Violation] = []
    for f in files:
        try:
            graph = CircuitGraph.load(f)
        except Exception as exc:  # corrupt payloads are findings, not crashes
            violations.append(
                Violation(
                    rule_id="M3D100",
                    severity=Severity.ERROR,
                    message=f"unreadable graph payload: {type(exc).__name__}: {exc}",
                    location=str(f),
                )
            )
            continue
        for v in engine.run(graph):
            violations.append(
                Violation(
                    rule_id=v.rule_id,
                    severity=v.severity,
                    message=v.message,
                    location=f"{f}: {v.location}" if v.location else str(f),
                    context=v.context,
                )
            )
    return _report(violations, args.format, len(files), args.fail_on)


def _lint_tree(args: argparse.Namespace, rules: list[CodeRule]) -> int:
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"m3dlint: no such file or directory: {missing[0]}", file=sys.stderr)
        return EXIT_USAGE
    violations = lint_paths(paths, rules=rules)
    n_files = sum(len(list(p.rglob("*.py"))) if p.is_dir() else 1 for p in paths)
    return _report(violations, args.format, n_files, args.fail_on)


def _cmd_code(args: argparse.Namespace) -> int:
    return _lint_tree(args, [cls() for cls in BUILTIN_CODE_RULES])


def _cmd_concurrency(args: argparse.Namespace) -> int:
    return _lint_tree(args, [cls() for cls in BUILTIN_CONCURRENCY_RULES])


def _cmd_rules(args: argparse.Namespace) -> int:
    engine = default_engine()
    rows = [(r.id, str(r.severity), r.description) for r in engine.rules]
    rows += [(r.id, str(r.severity), r.description) for r in SCENARIO_GRAPH_RULES]
    rows += [(r.id, str(r.severity), r.description) for r in code_rule_catalog().rules]
    if args.format == "json":
        print(
            json.dumps(
                [{"id": i, "severity": s, "description": d} for i, s, d in rows], indent=2
            )
        )
    else:
        for rule_id, severity, description in rows:
            print(f"{rule_id}  {severity:<7}  {description}")
    return EXIT_CLEAN


def _add_common_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--format", choices=FORMATS, default="text")
    sub.add_argument(
        "--fail-on",
        choices=FAIL_ON,
        default="error",
        help="exit 1 on findings at/above this severity (default: error)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="m3dlint",
        description="Static analysis for the M3D fault-localization stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="validate serialized circuit graphs")
    check.add_argument("paths", nargs="+", help="graph JSON files or directories")
    check.add_argument("--max-fanout", type=int, default=RuleConfig().max_fanout)
    check.add_argument(
        "--scenario",
        choices=scenario_names(),
        default=None,
        help="also enforce this scenario's M3D11x payload rules",
    )
    _add_common_flags(check)
    check.set_defaults(func=_cmd_check)

    code = sub.add_parser("code", help="lint Python sources for GNN-stack footguns")
    code.add_argument("paths", nargs="+", help="Python files or directories")
    _add_common_flags(code)
    code.set_defaults(func=_cmd_code)

    concurrency = sub.add_parser(
        "concurrency", help="lint Python sources for lock-discipline footguns"
    )
    concurrency.add_argument("paths", nargs="+", help="Python files or directories")
    _add_common_flags(concurrency)
    concurrency.set_defaults(func=_cmd_concurrency)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.add_argument("--format", choices=("text", "json"), default="text")
    rules.set_defaults(func=_cmd_rules)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())

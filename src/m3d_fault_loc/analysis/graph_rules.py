"""Built-in contract rules for circuit graphs.

Rule IDs are stable and documented in ``docs/analysis.md``. Structural rules
(M3D101–M3D105) encode M3D netlist invariants; schema rules (M3D106–M3D107)
encode the model's data contract; M3D108 is an electrical-quality warning.
"""

from __future__ import annotations

import numpy as np

from m3d_fault_loc.analysis.engine import GraphRule, RuleConfig
from m3d_fault_loc.analysis.violations import Severity, Violation
from m3d_fault_loc.graph.schema import (
    EDGE_FEATURE_COLUMNS,
    EDGE_MIV,
    EDGE_NET,
    FEATURE_COLUMNS,
    INDEX_DTYPE,
    NODE_DTYPE,
    CircuitGraph,
)


def _edges_usable(graph: CircuitGraph) -> bool:
    """True when edge_index is well-formed enough for edge rules to run.

    Malformed edge storage itself is reported by :class:`SchemaConformanceRule`;
    other rules quietly skip rather than crash or double-report.
    """
    ei = graph.edge_index
    if not isinstance(ei, np.ndarray) or ei.ndim != 2 or ei.shape[0] != 2:
        return False
    if ei.shape[1] and (ei.min() < 0 or ei.max() >= graph.num_nodes):
        return False
    return True


def _tiers_usable(graph: CircuitGraph) -> bool:
    """True when the tier array can be indexed per node (else M3D106 reports)."""
    tier = graph.tier
    return isinstance(tier, np.ndarray) and tier.shape == (graph.num_nodes,)


class CyclicTimingGraphRule(GraphRule):
    """Timing graph must be a DAG — arrival/required propagation (and any
    message-passing scheme ordered by it) is undefined on cycles."""

    id = "M3D101"
    severity = Severity.ERROR
    description = "timing graph must be acyclic"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        if not _edges_usable(graph):
            return []
        n = graph.num_nodes
        indeg = graph.in_degrees().copy()
        fanouts: list[list[int]] = [[] for _ in range(n)]
        for u, v in graph.edge_index.T:
            fanouts[int(u)].append(int(v))
        stack = [i for i in range(n) if indeg[i] == 0]
        seen = 0
        while stack:
            u = stack.pop()
            seen += 1
            for v in fanouts[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        if seen == n:
            return []
        cyclic = [graph.node_names[i] for i in range(n) if indeg[i] > 0]
        return [
            self.violation(
                f"combinational cycle through {len(cyclic)} node(s): {', '.join(cyclic[:5])}",
                location=f"graph {graph.name}",
                nodes=cyclic[:16],
            )
        ]


class DanglingNetRule(GraphRule):
    """Every net must be driven and observed: non-PI nodes need fanin,
    non-PO nodes need fanout."""

    id = "M3D102"
    severity = Severity.ERROR
    description = "no dangling (undriven) or floating (unobserved) nets"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        if not _edges_usable(graph):
            return []
        findings: list[Violation] = []
        indeg = graph.in_degrees()
        outdeg = graph.out_degrees()
        for i in range(graph.num_nodes):
            name = graph.node_names[i]
            if indeg[i] == 0 and not graph.is_pi[i]:
                findings.append(
                    self.violation("undriven net: node has no fanin and is not a primary input",
                                   location=f"node {name}")
                )
            if outdeg[i] == 0 and not graph.is_po[i]:
                findings.append(
                    self.violation("floating net: node has no fanout and is not a primary output",
                                   location=f"node {name}")
                )
        return findings


class TierRangeRule(GraphRule):
    """Tier assignments must lie within the declared M3D tier count."""

    id = "M3D103"
    severity = Severity.ERROR
    description = "tier IDs must be in [0, num_tiers)"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        findings: list[Violation] = []
        if graph.num_tiers < 1:
            findings.append(
                self.violation(f"num_tiers must be >= 1, got {graph.num_tiers}",
                               location=f"graph {graph.name}")
            )
        tier = np.asarray(graph.tier).ravel()
        for i in np.nonzero((tier < 0) | (tier >= max(graph.num_tiers, 1)))[0]:
            name = graph.node_names[int(i)] if int(i) < len(graph.node_names) else str(int(i))
            findings.append(
                self.violation(
                    f"tier {int(tier[i])} out of range [0, {graph.num_tiers})",
                    location=f"node {name}",
                )
            )
        return findings


class MivAdjacencyRule(GraphRule):
    """MIV edges must connect adjacent tiers — an MIV physically spans one
    inter-layer dielectric; larger spans indicate corrupt placement data."""

    id = "M3D104"
    severity = Severity.ERROR
    description = "MIV edges must cross exactly one tier boundary"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        if not _edges_usable(graph) or not _tiers_usable(graph):
            return []
        findings: list[Violation] = []
        for e in range(graph.num_edges):
            if int(graph.edge_type[e]) != EDGE_MIV:
                continue
            u, v = int(graph.edge_index[0, e]), int(graph.edge_index[1, e])
            span = abs(int(graph.tier[u]) - int(graph.tier[v]))
            if span != 1:
                findings.append(
                    self.violation(
                        f"MIV edge spans {span} tier boundaries (must be exactly 1)",
                        location=f"edge {graph.node_names[u]}->{graph.node_names[v]}",
                        span=span,
                    )
                )
        return findings


class EdgeTierConsistencyRule(GraphRule):
    """Intra-tier (NET) edges must not cross tiers; edge types must be known."""

    id = "M3D105"
    severity = Severity.ERROR
    description = "edge type must agree with endpoint tiers"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        if not _edges_usable(graph) or not _tiers_usable(graph):
            return []
        findings: list[Violation] = []
        for e in range(graph.num_edges):
            et = int(graph.edge_type[e]) if e < len(graph.edge_type) else EDGE_NET
            u, v = int(graph.edge_index[0, e]), int(graph.edge_index[1, e])
            loc = f"edge {graph.node_names[u]}->{graph.node_names[v]}"
            if et not in (EDGE_NET, EDGE_MIV):
                findings.append(self.violation(f"unknown edge type {et}", location=loc))
            elif et == EDGE_NET and int(graph.tier[u]) != int(graph.tier[v]):
                findings.append(
                    self.violation(
                        "intra-tier edge connects different tiers "
                        f"({int(graph.tier[u])} -> {int(graph.tier[v])}); "
                        "tier-crossing edges must be typed as MIV",
                        location=loc,
                    )
                )
        return findings


class SchemaConformanceRule(GraphRule):
    """Feature matrices must match the schema: shapes, dtypes, index bounds."""

    id = "M3D106"
    severity = Severity.ERROR
    description = "node/edge arrays must conform to the schema (shape + dtype)"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        findings: list[Violation] = []
        n = graph.num_nodes
        loc = f"graph {graph.name}"

        def bad(message: str) -> None:
            findings.append(self.violation(message, location=loc))

        x = graph.x
        if not isinstance(x, np.ndarray) or x.ndim != 2 or x.shape != (n, len(FEATURE_COLUMNS)):
            shape = getattr(x, "shape", None)
            bad(f"node features must have shape ({n}, {len(FEATURE_COLUMNS)}), got {shape}")
        elif x.dtype != NODE_DTYPE:
            bad(f"node features must be {NODE_DTYPE}, got {x.dtype}")

        for label, arr, dtype in (
            ("tier", graph.tier, INDEX_DTYPE),
            ("is_pi", graph.is_pi, np.dtype(bool)),
            ("is_po", graph.is_po, np.dtype(bool)),
        ):
            if not isinstance(arr, np.ndarray) or arr.shape != (n,):
                bad(f"{label} must have shape ({n},), got {getattr(arr, 'shape', None)}")
            elif arr.dtype != dtype:
                bad(f"{label} must be {dtype}, got {arr.dtype}")

        ei = graph.edge_index
        if not isinstance(ei, np.ndarray) or ei.ndim != 2 or ei.shape[0] != 2:
            bad(f"edge_index must have shape (2, E), got {getattr(ei, 'shape', None)}")
        else:
            if ei.dtype != INDEX_DTYPE:
                bad(f"edge_index must be {INDEX_DTYPE}, got {ei.dtype}")
            e = ei.shape[1]
            if e and (ei.min() < 0 or ei.max() >= n):
                bad(f"edge_index references nodes outside [0, {n})")
            et = graph.edge_type
            if not isinstance(et, np.ndarray) or et.shape != (e,):
                bad(f"edge_type must have shape ({e},), got {getattr(et, 'shape', None)}")
            ea = graph.edge_attr
            if (
                not isinstance(ea, np.ndarray)
                or ea.ndim != 2
                or ea.shape != (e, len(EDGE_FEATURE_COLUMNS))
            ):
                bad(
                    f"edge features must have shape ({e}, {len(EDGE_FEATURE_COLUMNS)}), "
                    f"got {getattr(ea, 'shape', None)}"
                )
            elif ea.dtype != NODE_DTYPE:
                bad(f"edge features must be {NODE_DTYPE}, got {ea.dtype}")

        if graph.fault_index is not None and not (0 <= graph.fault_index < n):
            bad(f"fault_index {graph.fault_index} out of range [0, {n})")
        return findings


class NonFiniteFeaturesRule(GraphRule):
    """NaN/Inf features silently poison training; reject them statically."""

    id = "M3D107"
    severity = Severity.ERROR
    description = "node/edge features must be finite"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        findings: list[Violation] = []
        for label, arr in (("node", graph.x), ("edge", graph.edge_attr)):
            if not isinstance(arr, np.ndarray) or not np.issubdtype(arr.dtype, np.floating):
                continue  # shape/dtype problems are M3D106's finding
            n_bad = int(np.count_nonzero(~np.isfinite(arr)))
            if n_bad:
                findings.append(
                    self.violation(
                        f"{n_bad} non-finite value(s) in {label} features",
                        location=f"graph {graph.name}",
                    )
                )
        return findings


class FanoutBoundRule(GraphRule):
    """Excessive fan-out is electrically implausible and usually indicates a
    collapsed net in extraction; warn rather than reject."""

    id = "M3D108"
    severity = Severity.WARNING
    description = "fan-out should not exceed the configured bound"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        if not _edges_usable(graph):
            return []
        findings: list[Violation] = []
        outdeg = graph.out_degrees()
        for i in np.nonzero(outdeg > config.max_fanout)[0]:
            findings.append(
                self.violation(
                    f"fan-out {int(outdeg[i])} exceeds bound {config.max_fanout}",
                    location=f"node {graph.node_names[int(i)]}",
                )
            )
        return findings


#: Full built-in catalog, in rule-id order.
BUILTIN_GRAPH_RULES: tuple[type[GraphRule], ...] = (
    CyclicTimingGraphRule,
    DanglingNetRule,
    TierRangeRule,
    MivAdjacencyRule,
    EdgeTierConsistencyRule,
    SchemaConformanceRule,
    NonFiniteFeaturesRule,
    FanoutBoundRule,
)

"""``m3dlint`` static-analysis subsystem.

Two sides:

- **Contract checker** (:mod:`m3d_fault_loc.analysis.graph_rules`): declarative
  rules validating circuit graphs against the schema contract before they
  reach training or inference.
- **Code lint** (:mod:`m3d_fault_loc.analysis.code_rules`): an AST pass over
  the Python stack itself, targeting GNN-training footguns.
- **Concurrency lint** (:mod:`m3d_fault_loc.analysis.concurrency_rules`):
  the M3D3xx lock-discipline rules over the same AST machinery, the static
  half of the race tooling (the dynamic half is
  :mod:`m3d_fault_loc.testing.racecheck`).

All report :class:`~m3d_fault_loc.analysis.violations.Violation` findings and
are exposed through the ``m3dlint`` CLI (:mod:`m3d_fault_loc.analysis.cli`).
Findings can be acknowledged in place with ``# m3dlint: disable=...``
pragmas (:mod:`m3d_fault_loc.analysis.suppress`).
"""

from m3d_fault_loc.analysis.engine import (
    GraphRule,
    RuleConfig,
    RuleEngine,
    RuleRegistry,
    default_engine,
)
from m3d_fault_loc.analysis.suppress import apply_suppressions, parse_pragmas
from m3d_fault_loc.analysis.violations import Severity, Violation

__all__ = [
    "GraphRule",
    "RuleConfig",
    "RuleEngine",
    "RuleRegistry",
    "Severity",
    "Violation",
    "apply_suppressions",
    "default_engine",
    "parse_pragmas",
]

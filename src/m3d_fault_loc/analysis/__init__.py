"""``m3dlint`` static-analysis subsystem.

Two sides:

- **Contract checker** (:mod:`m3d_fault_loc.analysis.graph_rules`): declarative
  rules validating circuit graphs against the schema contract before they
  reach training or inference.
- **Code lint** (:mod:`m3d_fault_loc.analysis.code_rules`): an AST pass over
  the Python stack itself, targeting GNN-training footguns.

Both report :class:`~m3d_fault_loc.analysis.violations.Violation` findings and
are exposed through the ``m3dlint`` CLI (:mod:`m3d_fault_loc.analysis.cli`).
"""

from m3d_fault_loc.analysis.engine import GraphRule, RuleConfig, RuleEngine, default_engine
from m3d_fault_loc.analysis.violations import Severity, Violation

__all__ = [
    "GraphRule",
    "RuleConfig",
    "RuleEngine",
    "Severity",
    "Violation",
    "default_engine",
]

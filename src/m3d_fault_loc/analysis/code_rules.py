"""AST lint pass over the Python stack: GNN-training footguns.

These rules target silent-failure patterns specific to GNN training/serving
code rather than general style (which ruff covers):

- **M3D201** mixed device targets inside one function,
- **M3D202** inference entry points running the model without
  ``torch.no_grad()``/``torch.inference_mode()``,
- **M3D203** ad-hoc global seeding outside the blessed
  :mod:`m3d_fault_loc.utils.seed` utility,
- **M3D204** bare ``except:`` handlers (escalated to ERROR inside training
  code, where they can swallow OOM/keyboard interrupts mid-epoch),
- **M3D205** unbounded module-level dict caches (escalated to ERROR inside
  the serving layer, where they grow with every unique request),
- **M3D206** thread-target worker loops without a broad exception guard
  (escalated to ERROR inside the serving layer, where a silently dead
  worker strands every queued request),
- **M3D207** ``print()`` or root-``logging`` calls in library code, which
  bypass the structured JSON logger and lose the request trace id
  (escalated to ERROR inside the serving layer; CLI entry points and
  scripts are exempt — stdout is their interface),
- **M3D208** ``scipy.sparse`` block-diagonal construction (escalated to
  ERROR inside the serving layer, whose hot path must use the cached
  segment-offset aggregation operators instead of re-packing a
  block-diagonal matrix per request),
- **M3D209** draws from the process-global numpy stream (``np.random.*``)
  or unseeded ``default_rng()`` (escalated to ERROR inside scenario and
  dataset generators, whose whole contract is byte-identical regeneration
  from a spec'd seed),
- **M3D210** socket/HTTP client constructions without an explicit
  ``timeout`` (escalated to ERROR inside the serving layer: the router and
  health prober must never block forever on a dead replica — an unbounded
  connect turns one sick backend into a hung router thread),
- **M3D211** ``time.time()`` used to measure a duration (``t1 - t0``
  subtraction patterns over wall-clock reads) — the wall clock steps under
  NTP corrections and DST, so elapsed times must come from
  ``time.monotonic()``/``time.perf_counter()`` (escalated to ERROR inside
  ``serve/`` and ``obs/``, where those durations feed latency metrics,
  traces, and SLO math).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from pathlib import Path

from m3d_fault_loc.analysis.suppress import apply_suppressions
from m3d_fault_loc.analysis.violations import Severity, Violation

#: Module basenames allowed to call global seeding primitives directly.
BLESSED_SEED_MODULES = ("seed.py",)

#: Function-name fragments that mark an inference entry point.
INFERENCE_NAME_HINTS = ("predict", "infer", "inference", "evaluate", "eval_step", "score")

#: Global-seeding call targets banned outside the blessed seed utility.
SEEDING_CALLS = {
    ("random", "seed"),
    ("np", "random", "seed"),
    ("numpy", "random", "seed"),
    ("torch", "manual_seed"),
    ("torch", "cuda", "manual_seed"),
    ("torch", "cuda", "manual_seed_all"),
}


class CodeRule(ABC):
    """One AST lint rule over a parsed Python module."""

    id: str
    severity: Severity
    description: str

    @abstractmethod
    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        """Return all findings for the module at ``path``."""

    def violation(
        self, message: str, path: Path, line: int, severity: Severity | None = None
    ) -> Violation:
        return Violation(
            rule_id=self.id,
            severity=self.severity if severity is None else severity,
            message=message,
            location=f"{path}:{line}",
        )


def _dotted_name(node: ast.AST) -> tuple[str, ...]:
    """Flatten ``a.b.c`` attribute chains to ``("a", "b", "c")``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _imports_torch(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and any(a.name.split(".")[0] == "torch" for a in node.names):
            return True
        if isinstance(node, ast.ImportFrom) and (node.module or "").split(".")[0] == "torch":
            return True
    return False


class MixedDeviceTransferRule(CodeRule):
    """Tensor transfers inside one function must agree on a device family —
    mixing ``.to("cuda")`` with ``.cpu()`` in one code path is the classic
    source of cross-device matmul crashes that only fire on GPU hosts."""

    id = "M3D201"
    severity = Severity.ERROR
    description = "no mixed .to(device)/.cuda()/.cpu() targets within a function"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            devices: dict[str, int] = {}  # device family -> first line seen
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                    continue
                family: str | None = None
                if node.func.attr == "cuda" and not node.args:
                    family = "cuda"
                elif node.func.attr == "cpu" and not node.args:
                    family = "cpu"
                elif node.func.attr == "to" and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        family = arg.value.split(":")[0].lower()
                if family and family not in devices:
                    devices[family] = node.lineno
            if len(devices) > 1:
                listing = ", ".join(f"{d} (line {ln})" for d, ln in sorted(devices.items()))
                findings.append(
                    self.violation(
                        f"function '{fn.name}' moves tensors to multiple devices: {listing}",
                        path,
                        fn.lineno,
                    )
                )
        return findings


class MissingNoGradRule(CodeRule):
    """Inference entry points must run the model under ``torch.no_grad()``
    (or ``inference_mode``) — otherwise autograd silently builds graphs and
    serving memory grows without bound."""

    id = "M3D202"
    severity = Severity.ERROR
    description = "inference entry points must disable autograd"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        if not _imports_torch(tree):
            return []
        findings: list[Violation] = []
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = fn.name.lower()
            if not any(hint in name for hint in INFERENCE_NAME_HINTS):
                continue
            if self._decorated_no_grad(fn) or not self._calls_model(fn):
                continue
            if not self._has_no_grad_block(fn):
                findings.append(
                    self.violation(
                        f"inference entry point '{fn.name}' runs the model without "
                        "torch.no_grad()/torch.inference_mode()",
                        path,
                        fn.lineno,
                    )
                )
        return findings

    @staticmethod
    def _is_no_grad_expr(node: ast.AST) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        return _dotted_name(target)[-1:] in (("no_grad",), ("inference_mode",))

    def _decorated_no_grad(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        return any(self._is_no_grad_expr(d) for d in fn.decorator_list)

    def _has_no_grad_block(self, fn: ast.AST) -> bool:
        return any(
            isinstance(node, (ast.With, ast.AsyncWith))
            and any(self._is_no_grad_expr(item.context_expr) for item in node.items)
            for node in ast.walk(fn)
        )

    @staticmethod
    def _calls_model(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            last = dotted[-1] if dotted else ""
            if last == "forward" or "model" in last:
                return True
        return False


class AdHocSeedingRule(CodeRule):
    """Global RNG seeding belongs in one place (``utils/seed.py``); scattered
    ``random.seed``/``torch.manual_seed`` calls make runs irreproducible the
    moment two call sites disagree."""

    id = "M3D203"
    severity = Severity.ERROR
    description = "global seeding only inside the blessed seed utility"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        if path.name in BLESSED_SEED_MODULES:
            return []
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted in SEEDING_CALLS:
                    findings.append(
                        self.violation(
                            f"ad-hoc global seeding via {'.'.join(dotted)}(); "
                            "call m3d_fault_loc.utils.seed.seed_everything() instead",
                            path,
                            node.lineno,
                        )
                    )
        return findings


class BareExceptRule(CodeRule):
    """Bare ``except:`` swallows SystemExit/KeyboardInterrupt; inside training
    code it can silently eat a mid-epoch failure and corrupt the checkpoint,
    so it escalates from WARNING to ERROR there."""

    id = "M3D204"
    severity = Severity.WARNING
    description = "no bare except handlers (ERROR inside training code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        findings: list[Violation] = []
        self._visit(tree, path, in_train=False, findings=findings)
        return findings

    def _visit(
        self, node: ast.AST, path: Path, in_train: bool, findings: list[Violation]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_train = in_train
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_in_train = in_train or "train" in child.name.lower()
            if isinstance(child, ast.ExceptHandler) and child.type is None:
                severity = Severity.ERROR if in_train else Severity.WARNING
                where = " inside training code" if in_train else ""
                findings.append(
                    self.violation(f"bare except handler{where}", path, child.lineno, severity)
                )
            self._visit(child, path, child_in_train, findings)


class UnboundedModuleCacheRule(CodeRule):
    """A module-level ``dict`` named like a cache never evicts: in serving
    code it grows with every unique request — a slow memory leak under
    production traffic — so it escalates from WARNING to ERROR inside
    ``serve/`` sources, where the bounded
    :class:`~m3d_fault_loc.serve.cache.LRUResultCache` is the blessed tool."""

    id = "M3D205"
    severity = Severity.WARNING
    description = "no unbounded module-level dict caches (ERROR inside serve/ code)"

    #: Name fragments marking a binding as a cache.
    CACHE_NAME_HINTS = ("cache", "memo")
    #: Call targets that build a plain (unbounded) mapping.
    _DICT_CALLS = (("dict",), ("collections", "defaultdict"), ("defaultdict",), ("OrderedDict",))

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        in_serve = "serve" in path.parts
        findings: list[Violation] = []
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not self._is_unbounded_dict(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id.lower()
                if any(hint in name for hint in self.CACHE_NAME_HINTS):
                    where = " inside serving code" if in_serve else ""
                    findings.append(
                        self.violation(
                            f"module-level dict cache '{target.id}' is unbounded{where}; "
                            "use a bounded LRU (m3d_fault_loc.serve.cache.LRUResultCache)",
                            path,
                            node.lineno,
                            Severity.ERROR if in_serve else Severity.WARNING,
                        )
                    )
        return findings

    @classmethod
    def _is_unbounded_dict(cls, value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return True
        return isinstance(value, ast.Call) and _dotted_name(value.func) in cls._DICT_CALLS


class UnguardedThreadLoopRule(CodeRule):
    """A function used as a ``threading.Thread`` target whose loop body has
    no broad exception guard dies silently on the first unexpected error —
    in serving code that strands every queued future forever, so it
    escalates from WARNING to ERROR inside ``serve/`` sources. The guard
    must catch ``Exception`` (or broader); typed handlers like
    ``except queue.Empty`` do not count."""

    id = "M3D206"
    severity = Severity.WARNING
    description = "thread-target loops need a broad exception guard (ERROR inside serve/ code)"

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        targets = self._thread_target_names(tree)
        if not targets:
            return []
        in_serve = "serve" in path.parts
        findings: list[Violation] = []
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name not in targets:
                continue
            for loop in ast.walk(fn):
                if isinstance(loop, ast.While) and not self._loop_guarded(loop):
                    where = " inside serving code" if in_serve else ""
                    findings.append(
                        self.violation(
                            f"thread target '{fn.name}' has a loop without a broad "
                            f"exception guard{where}; one uncaught error kills the "
                            "worker thread and strands its queue",
                            path,
                            loop.lineno,
                            Severity.ERROR if in_serve else Severity.WARNING,
                        )
                    )
        return findings

    @staticmethod
    def _thread_target_names(tree: ast.Module) -> set[str]:
        """Base names of every ``target=`` passed to a ``Thread(...)`` call."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _dotted_name(node.func)[-1:] != ("Thread",):
                continue
            for kw in node.keywords:
                if kw.arg == "target":
                    dotted = _dotted_name(kw.value)
                    if dotted:
                        names.add(dotted[-1])
        return names

    @staticmethod
    def _loop_guarded(loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    return True
                if _dotted_name(handler.type)[-1:] in (("Exception",), ("BaseException",)):
                    return True
        return False


class UnstructuredOutputRule(CodeRule):
    """Library code must log through the structured JSON logger
    (``m3d_fault_loc.obs.logging.get_logger``) — a bare ``print()`` or a
    root-``logging`` call (``logging.info(...)``, ``logging.basicConfig``)
    bypasses the trace-id-carrying formatter, so the line can never be
    correlated with the request that produced it. Escalates from WARNING to
    ERROR inside ``serve/`` sources, where log/trace correlation is the
    whole point. CLI entry points, scripts, and tests are exempt: stdout is
    their user interface."""

    id = "M3D207"
    severity = Severity.WARNING
    description = "no print()/root-logging in library code (ERROR inside serve/ code)"

    #: Path parts whose modules talk to a terminal on purpose.
    EXEMPT_PARTS = ("cli", "scripts", "tests")
    #: Module-level ``logging.<attr>(...)`` calls that hit the root logger.
    _ROOT_LOGGING_ATTRS = (
        "debug", "info", "warning", "warn", "error", "exception", "critical",
        "log", "basicConfig",
    )

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        if any(part in self.EXEMPT_PARTS for part in path.parts) or path.stem == "cli":
            return []
        in_serve = "serve" in path.parts
        severity = Severity.ERROR if in_serve else Severity.WARNING
        where = " inside serving code" if in_serve else ""
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted == ("print",):
                findings.append(
                    self.violation(
                        f"print() in library code{where}; use "
                        "m3d_fault_loc.obs.logging.get_logger(__name__) so the "
                        "line carries the request trace id",
                        path,
                        node.lineno,
                        severity,
                    )
                )
            elif len(dotted) == 2 and dotted[0] == "logging" and dotted[1] in (
                self._ROOT_LOGGING_ATTRS
            ):
                findings.append(
                    self.violation(
                        f"root-logger call logging.{dotted[1]}() in library code{where}; "
                        "use m3d_fault_loc.obs.logging.get_logger(__name__) instead",
                        path,
                        node.lineno,
                        severity,
                    )
                )
        return findings


class SparseBlockDiagRule(CodeRule):
    """Re-packing per-graph sparse operators with ``scipy.sparse.block_diag``
    on every call is the batching anti-pattern the cached aggregation layer
    (:mod:`m3d_fault_loc.model.aggregate`) exists to replace: it round-trips
    through COO and rebuilds arrays that a digest-keyed cache plus
    segment-offset concatenation produce for free. In serving code a
    per-request rebuild burns the latency budget of the whole forward pass,
    so the finding escalates from WARNING to ERROR inside ``serve/``
    sources."""

    id = "M3D208"
    severity = Severity.WARNING
    description = "no scipy.sparse block_diag construction (ERROR inside serve/ code)"

    #: Names a ``scipy.sparse`` module commonly travels under.
    _MODULE_ROOTS = ("scipy", "sparse", "sp")

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        aliases = self._block_diag_aliases(tree)
        in_serve = "serve" in path.parts
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if not dotted or dotted[-1] not in aliases | {"block_diag"}:
                continue
            if len(dotted) == 1 and dotted[0] not in aliases:
                continue  # a bare block_diag() not imported from scipy.sparse
            if len(dotted) > 1 and dotted[0] not in self._MODULE_ROOTS:
                continue  # e.g. someone's own linalg.block_diag helper
            where = " inside serving code" if in_serve else ""
            findings.append(
                self.violation(
                    f"scipy.sparse block-diagonal construction{where}; use the "
                    "digest-keyed AggregationOperatorCache.batch_operator / "
                    "stack_block_diagonal (m3d_fault_loc.model.aggregate) instead "
                    "of re-packing operators per call",
                    path,
                    node.lineno,
                    Severity.ERROR if in_serve else Severity.WARNING,
                )
            )
        return findings

    @staticmethod
    def _block_diag_aliases(tree: ast.Module) -> set[str]:
        """Local names bound to ``scipy.sparse.block_diag`` by imports."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "scipy.sparse":
                for a in node.names:
                    if a.name == "block_diag":
                        aliases.add(a.asname or a.name)
        return aliases


class ScenarioRngDisciplineRule(CodeRule):
    """Scenario and dataset generators promise byte-identical regeneration
    from ``ScenarioSpec.seed`` — a draw from the process-global numpy stream
    (``np.random.uniform(...)``) or an unseeded ``default_rng()`` silently
    breaks that promise: the output depends on import order and whatever ran
    before. Thread an explicitly seeded ``numpy.random.Generator``
    (``ScenarioSpec.rng()``) through instead. WARNING elsewhere, ERROR under
    ``scenarios/`` and ``data/`` sources. ``np.random.seed`` is M3D203's
    finding, not this rule's; the blessed seed utility is exempt."""

    id = "M3D209"
    severity = Severity.WARNING
    description = (
        "no global-stream np.random draws or unseeded default_rng() "
        "(ERROR under scenarios/ and data/ code)"
    )

    #: Path parts where determinism is the module's contract.
    STRICT_PARTS = ("scenarios", "data")
    #: ``np.random`` attributes that are not global-stream draws.
    _NON_DRAW_ATTRS = {
        "default_rng", "seed", "get_state", "set_state",
        "Generator", "RandomState", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    }
    _NP_ROOTS = ("np", "numpy")

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        if path.name in BLESSED_SEED_MODULES:
            return []
        strict = any(part in self.STRICT_PARTS for part in path.parts)
        severity = Severity.ERROR if strict else Severity.WARNING
        where = " inside generator code" if strict else ""
        rng_aliases = self._default_rng_aliases(tree)
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            unseeded = not node.args and not node.keywords
            if len(dotted) == 1 and dotted[0] in rng_aliases:
                if unseeded:
                    findings.append(self._unseeded_rng(path, node.lineno, severity, where))
                continue
            if len(dotted) != 3 or dotted[0] not in self._NP_ROOTS or dotted[1] != "random":
                continue
            attr = dotted[2]
            if attr == "default_rng":
                if unseeded:
                    findings.append(self._unseeded_rng(path, node.lineno, severity, where))
            elif attr not in self._NON_DRAW_ATTRS:
                findings.append(
                    self.violation(
                        f"np.random.{attr}() draws from the process-global "
                        f"stream{where}; thread a seeded numpy.random.Generator "
                        "(e.g. ScenarioSpec.rng()) instead",
                        path,
                        node.lineno,
                        severity,
                    )
                )
        return findings

    def _unseeded_rng(
        self, path: Path, line: int, severity: Severity, where: str
    ) -> Violation:
        return self.violation(
            f"unseeded default_rng(){where} makes output depend on entropy, "
            "not the spec; pass an explicit seed (e.g. ScenarioSpec.rng())",
            path,
            line,
            severity,
        )

    @staticmethod
    def _default_rng_aliases(tree: ast.Module) -> set[str]:
        """Local names bound to ``numpy.random.default_rng`` by imports."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for a in node.names:
                    if a.name == "default_rng":
                        aliases.add(a.asname or a.name)
        return aliases


class MissingClientTimeoutRule(CodeRule):
    """A network client call without an explicit ``timeout`` inherits the
    global socket default — usually *no* timeout — so one dead peer parks
    the calling thread forever. In the serving layer that is how a single
    unreachable replica wedges the router (or its health prober), which is
    why the finding escalates from WARNING to ERROR inside ``serve/``
    sources. Pass ``timeout=`` (or the documented positional slot) on every
    ``HTTPConnection``/``HTTPSConnection``, ``socket.create_connection``,
    and ``urllib.request.urlopen`` call."""

    id = "M3D210"
    severity = Severity.WARNING
    description = (
        "socket/HTTP client calls must pass an explicit timeout "
        "(ERROR inside serve/ code)"
    )

    #: Canonical dotted call target → index of the positional slot that can
    #: carry the timeout (``HTTPConnection(host, port, timeout)`` etc.).
    _TARGETS: dict[tuple[str, ...], int] = {
        ("http", "client", "HTTPConnection"): 2,
        ("http", "client", "HTTPSConnection"): 2,
        ("socket", "create_connection"): 1,
        ("urllib", "request", "urlopen"): 2,
    }

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        in_serve = "serve" in path.parts
        severity = Severity.ERROR if in_serve else Severity.WARNING
        where = " inside serving code" if in_serve else ""
        module_aliases = self._module_aliases(tree)
        name_aliases = self._from_import_aliases(tree)
        findings: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve(node.func, module_aliases, name_aliases)
            if target is None:
                continue
            timeout_pos = self._TARGETS[target]
            explicit_kw = any(kw.arg == "timeout" or kw.arg is None for kw in node.keywords)
            explicit_pos = len(node.args) > timeout_pos
            if explicit_kw or explicit_pos:
                continue
            pretty = ".".join(target)
            findings.append(
                self.violation(
                    f"{pretty}() without an explicit timeout{where} blocks "
                    "forever on a dead peer; pass timeout= so the failure is "
                    "a bounded error, not a hung thread",
                    path,
                    node.lineno,
                    severity,
                )
            )
        return findings

    def _resolve(
        self,
        func: ast.AST,
        module_aliases: dict[str, tuple[str, ...]],
        name_aliases: dict[str, tuple[str, ...]],
    ) -> tuple[str, ...] | None:
        """Canonical target for a call expression, alias-aware; else None."""
        dotted = _dotted_name(func)
        if not dotted:
            return None
        if len(dotted) == 1:
            target = name_aliases.get(dotted[0])
            return target if target in self._TARGETS else None
        expanded = module_aliases.get(dotted[0], (dotted[0],)) + dotted[1:]
        return expanded if expanded in self._TARGETS else None

    @staticmethod
    def _module_aliases(tree: ast.Module) -> dict[str, tuple[str, ...]]:
        """``import http.client as hc`` → ``{"hc": ("http", "client")}``."""
        aliases: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    local = a.asname or a.name.split(".")[0]
                    canonical = tuple(a.name.split(".")) if a.asname else (local,)
                    aliases[local] = canonical
        return aliases

    def _from_import_aliases(self, tree: ast.Module) -> dict[str, tuple[str, ...]]:
        """``from socket import create_connection as cc`` → canonical path."""
        by_module: dict[str, list[tuple[str, ...]]] = {}
        for target in self._TARGETS:
            by_module.setdefault(".".join(target[:-1]), []).append(target)
        aliases: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom) or node.module not in by_module:
                continue
            for target in by_module[node.module]:
                for a in node.names:
                    if a.name == target[-1]:
                        aliases[a.asname or a.name] = target
        return aliases


class WallClockDurationRule(CodeRule):
    """``time.time()`` answers "what o'clock is it", not "how long did this
    take": the wall clock steps backwards/forwards under NTP slew and leap
    adjustments, so subtracting two wall-clock reads yields durations that
    can be negative or wildly wrong. Duration measurement must use
    ``time.monotonic()`` or ``time.perf_counter()``. Flagged patterns: a
    ``-`` subtraction where both operands are wall-clock values (a direct
    ``time.time()`` call or a local name assigned from one), or a direct
    ``time.time()`` call minus any non-constant operand. Subtracting a
    numeric literal (``time.time() - 300``, a cutoff timestamp) is fine —
    that is timestamp arithmetic, not elapsed-time measurement. Bare
    ``time.time()`` reads used as timestamps are never flagged."""

    id = "M3D211"
    severity = Severity.WARNING
    description = (
        "time.time() must not measure durations; use time.monotonic()/"
        "perf_counter() (ERROR inside serve/ and obs/ code)"
    )

    _TARGET = ("time", "time")

    def check(self, tree: ast.Module, path: Path) -> list[Violation]:
        in_hot = "serve" in path.parts or "obs" in path.parts
        severity = Severity.ERROR if in_hot else Severity.WARNING
        where = " inside latency-critical code" if in_hot else ""
        module_aliases = self._module_aliases(tree)
        name_aliases = self._from_import_aliases(tree)
        findings: list[Violation] = []
        for scope in self._scopes(tree):
            tainted = self._tainted_names(scope, module_aliases, name_aliases)
            for node in self._scope_walk(scope):
                if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)):
                    continue
                left = self._time_value(node.left, module_aliases, name_aliases, tainted)
                right = self._time_value(node.right, module_aliases, name_aliases, tainted)
                if left is None and right is None:
                    continue
                # A numeric-literal operand is cutoff/timestamp arithmetic
                # (e.g. ``time.time() - 3600``), not a duration.
                other = node.right if left is not None else node.left
                if isinstance(other, ast.Constant) and isinstance(other.value, (int, float)):
                    continue
                # Flag when both sides are wall-clock values, or when one
                # side is a *direct* time.time() call (t - time.time() is a
                # duration however t was made).
                if not (
                    (left is not None and right is not None)
                    or left == "call"
                    or right == "call"
                ):
                    continue
                findings.append(
                    self.violation(
                        "duration measured by subtracting time.time() values"
                        f"{where}; the wall clock steps under NTP — use "
                        "time.monotonic() or time.perf_counter() for elapsed time",
                        path,
                        node.lineno,
                        severity,
                    )
                )
        return findings

    # -- scope handling ----------------------------------------------------

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        return [tree] + [
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    @staticmethod
    def _scope_walk(scope: ast.AST):
        """Walk a scope's nodes without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    def _tainted_names(
        self,
        scope: ast.AST,
        module_aliases: dict[str, tuple[str, ...]],
        name_aliases: set[str],
    ) -> set[str]:
        """Local names assigned directly from a wall-clock read."""
        tainted: set[str] = set()
        for node in self._scope_walk(scope):
            value: ast.AST | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            if value is None or not self._is_wallclock_call(
                value, module_aliases, name_aliases
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
        return tainted

    # -- wall-clock detection ----------------------------------------------

    def _time_value(
        self,
        node: ast.AST,
        module_aliases: dict[str, tuple[str, ...]],
        name_aliases: set[str],
        tainted: set[str],
    ) -> str | None:
        """``"call"`` for a direct time.time() call, ``"name"`` for a
        tainted local, ``None`` otherwise."""
        if self._is_wallclock_call(node, module_aliases, name_aliases):
            return "call"
        if isinstance(node, ast.Name) and node.id in tainted:
            return "name"
        return None

    def _is_wallclock_call(
        self,
        node: ast.AST,
        module_aliases: dict[str, tuple[str, ...]],
        name_aliases: set[str],
    ) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted_name(node.func)
        if not dotted:
            return False
        if len(dotted) == 1:
            return dotted[0] in name_aliases
        expanded = module_aliases.get(dotted[0], (dotted[0],)) + dotted[1:]
        return expanded == self._TARGET

    @staticmethod
    def _module_aliases(tree: ast.Module) -> dict[str, tuple[str, ...]]:
        """``import time as t`` → ``{"t": ("time",)}``."""
        aliases: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    local = a.asname or a.name.split(".")[0]
                    canonical = tuple(a.name.split(".")) if a.asname else (local,)
                    aliases[local] = canonical
        return aliases

    @staticmethod
    def _from_import_aliases(tree: ast.Module) -> set[str]:
        """``from time import time [as now]`` → the local callable names."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for a in node.names:
                    if a.name == "time":
                        names.add(a.asname or a.name)
        return names


#: Full built-in catalog, in rule-id order.
BUILTIN_CODE_RULES: tuple[type[CodeRule], ...] = (
    MixedDeviceTransferRule,
    MissingNoGradRule,
    AdHocSeedingRule,
    BareExceptRule,
    UnboundedModuleCacheRule,
    UnguardedThreadLoopRule,
    UnstructuredOutputRule,
    SparseBlockDiagRule,
    ScenarioRngDisciplineRule,
    MissingClientTimeoutRule,
    WallClockDurationRule,
)


def lint_source(source: str, path: Path, rules: list[CodeRule] | None = None) -> list[Violation]:
    """Lint one module's source text; syntax errors become findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule_id="M3D200",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{path}:{exc.lineno or 0}",
            )
        ]
    active = rules if rules is not None else [cls() for cls in BUILTIN_CODE_RULES]
    findings: list[Violation] = []
    for rule in active:
        findings.extend(rule.check(tree, path))
    return apply_suppressions(
        findings, source, path, active_rule_ids={rule.id for rule in active}
    )


def lint_paths(paths: list[Path], rules: list[CodeRule] | None = None) -> list[Violation]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: list[Violation] = []
    for f in files:
        findings.extend(lint_source(f.read_text(), f, rules=rules))
    return findings

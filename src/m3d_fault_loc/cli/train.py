"""Train the delay-fault localizer on synthetic M3D netlists.

Usage::

    PYTHONPATH=src python -m m3d_fault_loc.cli.train --n-graphs 200 --epochs 30 \
        --out runs/localizer.npz [--data-dir graphs/] [--scenario multi_delay]

``--scenario`` picks the fault scenario whose registered generator
synthesizes the training set (default ``single_delay``, the paper's
workload). Every graph — synthetic or loaded — passes through the
``m3dlint`` contract gate inside :class:`CircuitGraphDataset`, composed
with the scenario's M3D11x payload rules; a contract violation aborts the
run before the first epoch rather than after it.

``--metrics-log runs/train.jsonl`` appends one JSONL record per epoch
(loss, pre-clip gradient norm, learning rate, wall time) plus a final record
with the held-out accuracy — the stream ``m3d-obs train`` summarizes.
``--profile`` adds per-epoch per-phase ``profile`` rows (data_gen / forward /
backward / optimizer_step / eval wall time; ``--profile-memory`` adds
tracemalloc allocation peaks) to the same stream.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from m3d_fault_loc.data.dataset import CircuitGraphDataset, GraphContractError
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.model.optim import (
    Adam,
    NonFiniteLossError,
    clip_by_global_norm,
    global_grad_norm,
)
from m3d_fault_loc.obs.profile import PhaseProfiler, phase
from m3d_fault_loc.obs.telemetry import TelemetryWriter
from m3d_fault_loc.scenarios import (
    DEFAULT_SCENARIO,
    ScenarioSpec,
    build_scenario_engine,
    get_scenario,
    scenario_names,
)
from m3d_fault_loc.utils.seed import seed_everything


def localization_accuracy(model: DelayFaultLocalizer, dataset: CircuitGraphDataset) -> float:
    """Fraction of graphs whose top-scored node is the true fault origin."""
    if len(dataset) == 0:
        return 0.0
    hits = sum(1 for g in dataset if model.predict(g) == g.fault_index)
    return hits / len(dataset)


def train(
    dataset: CircuitGraphDataset,
    rng: np.random.Generator,
    epochs: int = 30,
    batch_size: int = 8,
    lr: float = 1e-2,
    hidden: int = 32,
    seed: int = 0,
    clip_norm: float | None = None,
    log=print,
    telemetry: TelemetryWriter | None = None,
    scenario: str | None = None,
    profiler: PhaseProfiler | None = None,
) -> DelayFaultLocalizer:
    """Full-batch-per-graph training with minibatch gradient accumulation.

    A NaN/inf loss raises :class:`NonFiniteLossError` immediately — a model
    trained past that point is garbage, and saving it would poison every
    downstream registry/serving step. ``clip_norm`` (optional) clips each
    accumulated minibatch gradient to that global L2 norm before the
    optimizer step. ``telemetry`` (optional) receives one ``epoch`` event
    per epoch: mean loss, max pre-clip gradient norm, lr, wall time —
    tagged with ``scenario`` when one is named. ``profiler`` (optional,
    ``--profile``) is drained once per epoch into per-phase ``profile``
    telemetry rows (data_gen / forward / backward / optimizer_step / eval).
    """
    model = DelayFaultLocalizer(hidden=hidden, seed=seed)
    optimizer = Adam(model.params, lr=lr)
    with profiler if profiler is not None else nullcontext():
        for epoch in range(epochs):
            epoch_t0 = time.perf_counter()
            order = rng.permutation(len(dataset))
            total_loss = 0.0
            max_norm = 0.0
            for start in range(0, len(order), batch_size):
                batch = order[start : start + batch_size]
                grads = {k: np.zeros_like(v) for k, v in model.params.items()}
                for i in batch:
                    with phase("data_gen"):
                        graph = dataset[int(i)]
                    loss, g = model.loss_and_grads(graph)
                    if not np.isfinite(loss):
                        raise NonFiniteLossError(
                            f"non-finite loss {loss!r} at epoch {epoch}, graph index "
                            f"{int(i)} ({graph.name}); lower --lr or pass --clip-norm"
                        )
                    total_loss += loss
                    for k in grads:
                        grads[k] += g[k] / len(batch)
                with phase("optimizer_step"):
                    if clip_norm is not None:
                        norm = clip_by_global_norm(grads, clip_norm)
                    elif telemetry is not None:
                        norm = global_grad_norm(grads)
                    else:
                        norm = 0.0
                    max_norm = max(max_norm, norm)
                    optimizer.step(grads)
            if telemetry is not None:
                tagged = {} if scenario is None else {"scenario": scenario}
                telemetry.emit(
                    "epoch",
                    epoch=epoch,
                    loss=round(total_loss / max(len(dataset), 1), 6),
                    grad_norm=round(max_norm, 6),
                    lr=lr,
                    wall_s=round(time.perf_counter() - epoch_t0, 6),
                    **tagged,
                )
            if log is not None and (epoch == epochs - 1 or epoch % 5 == 0):
                with phase("eval"):
                    acc = localization_accuracy(model, dataset)
                log(
                    f"epoch {epoch:3d}  loss {total_loss / max(len(dataset), 1):.4f}  "
                    f"train-acc {acc:.3f}"
                )
            if profiler is not None and telemetry is not None:
                for name, row in profiler.drain().items():
                    telemetry.emit("profile", epoch=epoch, phase=name, **row)
    return model


def _fraction(value: str) -> float:
    f = float(value)
    if not 0.0 < f < 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1), got {value}")
    return f


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-graphs", type=int, default=200)
    parser.add_argument("--n-gates", type=int, default=40)
    parser.add_argument("--n-inputs", type=int, default=6)
    parser.add_argument("--num-tiers", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=30)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--lr", type=float, default=1e-2)
    parser.add_argument("--clip-norm", type=float, default=None,
                        help="clip accumulated gradients to this global L2 norm")
    parser.add_argument("--hidden", type=int, default=32)
    parser.add_argument("--test-fraction", type=_fraction, default=0.2)
    parser.add_argument("--scenario", choices=scenario_names(), default=DEFAULT_SCENARIO,
                        help="fault scenario whose generator synthesizes the dataset")
    parser.add_argument("--data-dir", type=Path, default=None,
                        help="load graphs from a directory instead of synthesizing")
    parser.add_argument("--save-data-dir", type=Path, default=None,
                        help="also serialize the training graphs for m3dlint check / reuse")
    parser.add_argument("--out", type=Path, default=Path("localizer.npz"))
    parser.add_argument("--metrics-log", type=Path, default=None,
                        help="append per-epoch telemetry (JSONL) for m3d-obs train")
    parser.add_argument("--profile", action="store_true",
                        help="per-epoch phase profiling (data_gen/forward/backward/"
                             "optimizer_step/eval) emitted as profile telemetry rows")
    parser.add_argument("--profile-memory", action="store_true",
                        help="also track per-phase allocation high-water via "
                             "tracemalloc (implies --profile; slows the loop)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rng = seed_everything(args.seed)
    scenario = get_scenario(args.scenario)
    engine = build_scenario_engine(scenario.name)
    try:
        if args.data_dir is not None:
            dataset = CircuitGraphDataset.load_dir(args.data_dir, engine=engine)
        else:
            graphs = scenario.generate(
                ScenarioSpec(
                    n_graphs=args.n_graphs,
                    n_gates=args.n_gates,
                    n_inputs=args.n_inputs,
                    num_tiers=args.num_tiers,
                    seed=args.seed,
                )
            )
            dataset = CircuitGraphDataset.from_graphs(graphs, engine=engine)
    except GraphContractError as exc:
        print(f"contract gate rejected the dataset: {exc}", file=sys.stderr)
        return 1
    for warning in dataset.warnings:
        print(f"contract warning: {warning.render()}", file=sys.stderr)
    if args.save_data_dir is not None:
        dataset.save_dir(args.save_data_dir)

    train_set, test_set = dataset.split(rng, test_fraction=args.test_fraction)
    print(f"training on {len(train_set)} graphs, holding out {len(test_set)}")
    telemetry = None if args.metrics_log is None else TelemetryWriter(args.metrics_log)
    profiler = (
        PhaseProfiler(memory=args.profile_memory)
        if (args.profile or args.profile_memory)
        else None
    )
    try:
        model = train(
            train_set,
            rng,
            epochs=args.epochs,
            batch_size=args.batch_size,
            lr=args.lr,
            hidden=args.hidden,
            seed=args.seed,
            clip_norm=args.clip_norm,
            telemetry=telemetry,
            scenario=scenario.name,
            profiler=profiler,
        )
    except NonFiniteLossError as exc:
        print(f"training aborted: {exc}", file=sys.stderr)
        if telemetry is not None:
            telemetry.emit(
                "aborted", reason="non_finite_loss", detail=str(exc), scenario=scenario.name
            )
            telemetry.close()
        return 1
    test_acc = localization_accuracy(model, test_set)
    print(f"held-out localization accuracy: {test_acc:.3f}")
    if telemetry is not None:
        telemetry.emit(
            "final",
            epochs=args.epochs,
            train_graphs=len(train_set),
            test_graphs=len(test_set),
            test_accuracy=round(test_acc, 4),
            scenario=scenario.name,
        )
        telemetry.close()
    saved = model.save(
        args.out,
        metadata={
            "seed": args.seed,
            "epochs": args.epochs,
            "hidden": args.hidden,
            "lr": args.lr,
            "train_graphs": len(train_set),
            "test_graphs": len(test_set),
            "test_accuracy": round(test_acc, 4),
            "scenario": scenario.name,
            "data_dir": str(args.data_dir) if args.data_dir is not None else None,
        },
    )
    print(f"model saved to {saved}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry points (training and evaluation)."""

"""Command-line entry points (training, evaluation, and serving)."""

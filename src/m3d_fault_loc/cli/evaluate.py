"""Evaluate a trained localizer on fresh (or saved) fault graphs.

Usage::

    PYTHONPATH=src python -m m3d_fault_loc.cli.evaluate --model runs/localizer.npz \
        [--data-dir graphs/] [--top-k 3] [--scenario seu_bitflip]

Reports top-1 and top-k localization accuracy plus the scenario's own
metrics (e.g. ``coverage_at_k`` for ``multi_delay``, ``pearson_r`` for
``aging_drift``); the dataset passes through the same contract gate as
training, composed with the scenario's M3D11x rules. ``--metrics-log``
appends the numbers as an ``eval`` JSONL record tagged with the scenario —
the same stream ``m3d-train --metrics-log`` writes, summarized by
``m3d-obs train``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from m3d_fault_loc.data.dataset import CircuitGraphDataset, GraphContractError
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.obs.telemetry import TelemetryWriter
from m3d_fault_loc.scenarios import (
    DEFAULT_SCENARIO,
    ScenarioSpec,
    build_scenario_engine,
    get_scenario,
    scenario_names,
)
from m3d_fault_loc.utils.seed import seed_everything


def top_k_accuracy(model: DelayFaultLocalizer, dataset: CircuitGraphDataset, k: int) -> float:
    """Fraction of graphs whose fault origin ranks in the top-k node scores."""
    if len(dataset) == 0:
        return 0.0
    hits = 0
    for graph in dataset:
        scores = model.node_scores(graph)
        top = np.argsort(scores)[::-1][:k]
        hits += int(graph.fault_index in top)
    return hits / len(dataset)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", type=Path, required=True)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--n-graphs", type=int, default=50)
    parser.add_argument("--n-gates", type=int, default=40)
    parser.add_argument("--n-inputs", type=int, default=6)
    parser.add_argument("--num-tiers", type=int, default=2)
    parser.add_argument("--top-k", type=int, default=3)
    parser.add_argument("--scenario", choices=scenario_names(), default=DEFAULT_SCENARIO,
                        help="fault scenario: picks the generator, contract rules, and metric")
    parser.add_argument("--data-dir", type=Path, default=None,
                        help="evaluate on saved graphs instead of synthesizing")
    parser.add_argument("--metrics-log", type=Path, default=None,
                        help="append the hit@k numbers as an eval JSONL record")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    seed_everything(args.seed)
    scenario = get_scenario(args.scenario)
    engine = build_scenario_engine(scenario.name)
    if not args.model.exists():
        print(f"no such model file: {args.model}", file=sys.stderr)
        return 2
    model = DelayFaultLocalizer.load(args.model)
    try:
        if args.data_dir is not None:
            dataset = CircuitGraphDataset.load_dir(args.data_dir, engine=engine)
        else:
            dataset = CircuitGraphDataset.from_graphs(
                scenario.generate(
                    ScenarioSpec(
                        n_graphs=args.n_graphs,
                        n_gates=args.n_gates,
                        n_inputs=args.n_inputs,
                        num_tiers=args.num_tiers,
                        seed=args.seed,
                    )
                ),
                engine=engine,
            )
    except GraphContractError as exc:
        print(f"contract gate rejected the dataset: {exc}", file=sys.stderr)
        return 1
    # Legacy hit@k on fault_index stays unconditional — every scenario labels a
    # primary site — so downstream telemetry consumers keep their fields.
    top1 = top_k_accuracy(model, dataset, 1)
    topk = top_k_accuracy(model, dataset, args.top_k)
    scenario_metrics = scenario.evaluate(model, list(dataset), k=args.top_k)
    print(f"evaluated {len(dataset)} graphs (scenario: {scenario.name})")
    print(f"top-1 localization accuracy: {top1:.3f}")
    print(f"top-{args.top_k} localization accuracy: {topk:.3f}")
    for key in sorted(scenario_metrics):
        print(f"{scenario.name} {key}: {scenario_metrics[key]:.4f}")
    if args.metrics_log is not None:
        with TelemetryWriter(args.metrics_log) as telemetry:
            telemetry.emit(
                "eval",
                model=str(args.model),
                scenario=scenario.name,
                n_graphs=len(dataset),
                top1=round(top1, 4),
                k=args.top_k,
                top_k_accuracy=round(topk, 4),
                **{k: round(v, 4) for k, v in sorted(scenario_metrics.items())},
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())

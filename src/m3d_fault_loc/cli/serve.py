"""Serve the delay-fault localizer over HTTP.

Usage::

    PYTHONPATH=src python -m m3d_fault_loc.cli.serve --model runs/localizer.npz
    PYTHONPATH=src python -m m3d_fault_loc.cli.serve --registry runs/registry --port 8080

Exactly one model source is required: ``--model`` serves a fixed ``.npz``
artifact, ``--registry`` serves the registry's active version and hot-reloads
whenever the activation pointer changes. ``--port 0`` binds an ephemeral
port; the chosen address is printed as ``serving on http://host:port`` so
harnesses (CI smoke, tests) can parse it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry, ModelRegistryError
from m3d_fault_loc.serve.server import create_server
from m3d_fault_loc.serve.service import LocalizationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--model", type=Path, default=None,
                        help="serve a fixed .npz localizer artifact")
    source.add_argument("--registry", type=Path, default=None,
                        help="serve the registry's active model, with hot reload")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8361,
                        help="TCP port (0 binds an ephemeral port)")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="largest micro-batch per forward pass")
    parser.add_argument("--batch-window-ms", type=float, default=5.0,
                        help="how long the worker waits to fill a batch")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="result-cache capacity (content-hash LRU entries)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.model is not None:
            if not args.model.exists():
                print(f"no such model file: {args.model}", file=sys.stderr)
                return 2
            service = LocalizationService(
                model=DelayFaultLocalizer.load(args.model),
                max_batch=args.max_batch,
                batch_window_s=args.batch_window_ms / 1e3,
                cache_size=args.cache_size,
            )
        else:
            service = LocalizationService(
                registry=ModelRegistry(args.registry),
                max_batch=args.max_batch,
                batch_window_s=args.batch_window_ms / 1e3,
                cache_size=args.cache_size,
            )
    except ModelRegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2

    server = create_server(service, host=args.host, port=args.port)
    info = service.describe_model()
    print(f"model: {info['name']}/{info['version']} (sha256 {info['sha256'][:12]}…)", flush=True)
    print(f"serving on http://{args.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

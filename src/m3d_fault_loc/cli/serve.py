"""Serve the delay-fault localizer over HTTP.

Usage::

    PYTHONPATH=src python -m m3d_fault_loc.cli.serve --model runs/localizer.npz
    PYTHONPATH=src python -m m3d_fault_loc.cli.serve --registry runs/registry --port 8080

Exactly one model source is required: ``--model`` serves a fixed ``.npz``
artifact, ``--registry`` serves the registry's active version and hot-reloads
whenever the activation pointer changes. ``--port 0`` binds an ephemeral
port; the chosen address is printed as ``serving on http://host:port`` so
harnesses (CI smoke, tests) can parse it.

``SIGTERM`` (and ``SIGINT``/Ctrl-C) triggers a graceful drain: admission
stops (new requests get 503), the listener stops accepting, queued requests
complete — or fail deterministically — within ``--drain-deadline-s``, and
the process exits 0. That is the contract a rolling restart relies on.

Observability: structured JSON logs go to stderr (``--log-level`` picks the
threshold), completed request traces can be appended as JSONL with
``--trace-log``, and requests slower than ``--slow-ms`` land in the
slow-request ring exposed by ``GET /debug/traces``.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from types import FrameType

from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.obs.logging import configure_json_logging
from m3d_fault_loc.obs.trace import JsonlTraceExporter, Tracer
from m3d_fault_loc.serve.registry import ModelRegistry, ModelRegistryError
from m3d_fault_loc.serve.server import DEFAULT_MAX_BODY_BYTES, LocalizationHTTPServer, create_server
from m3d_fault_loc.serve.service import LocalizationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--model", type=Path, default=None,
                        help="serve a fixed .npz localizer artifact")
    source.add_argument("--registry", type=Path, default=None,
                        help="serve the registry's active model, with hot reload")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8361,
                        help="TCP port (0 binds an ephemeral port)")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="largest micro-batch per forward pass")
    parser.add_argument("--batch-window-ms", type=float, default=5.0,
                        help="how long the worker waits to fill a batch")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="result-cache capacity (content-hash LRU entries)")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="admission queue bound; beyond it requests are shed (429)")
    parser.add_argument("--workers", type=int, default=1,
                        help="batch workers in the pool (digest-sharded; 1 = single worker)")
    parser.add_argument("--request-timeout-s", type=float, default=30.0,
                        help="default per-request deadline (504 past it)")
    parser.add_argument("--max-body-bytes", type=int, default=DEFAULT_MAX_BODY_BYTES,
                        help="largest accepted request body (413 beyond it)")
    parser.add_argument("--drain-deadline-s", type=float, default=10.0,
                        help="graceful-shutdown drain budget on SIGTERM/SIGINT")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="structured-log threshold (JSON lines on stderr)")
    parser.add_argument("--trace-log", type=Path, default=None,
                        help="append completed request traces to this JSONL file")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="requests slower than this land in the slow-request ring")
    parser.add_argument("--trace-capacity", type=int, default=256,
                        help="completed traces kept in memory for /debug/traces")
    return parser


def build_tracer(args: argparse.Namespace) -> Tracer:
    """The request tracer implied by ``--trace-log``/``--slow-ms``/capacity."""
    exporter = None if args.trace_log is None else JsonlTraceExporter(args.trace_log)
    slow_s = None if args.slow_ms is None else args.slow_ms / 1e3
    return Tracer(
        capacity=args.trace_capacity, exporter=exporter, slow_threshold_s=slow_s
    )


def drain_and_stop(
    server: LocalizationHTTPServer, service: LocalizationService, drain_deadline_s: float
) -> None:
    """The graceful-shutdown sequence (shared by signal handlers and tests).

    Order matters: stop admission first (late requests get a structured
    503), then stop the accept loop, then drain the queue within the
    deadline — leftovers are failed deterministically, never stranded.
    """
    service.begin_drain()
    server.shutdown()
    service.await_drain(drain_deadline_s)


def install_signal_handlers(
    server: LocalizationHTTPServer, service: LocalizationService, drain_deadline_s: float
) -> None:
    """Route SIGTERM/SIGINT into one graceful drain (idempotent)."""
    # m3dlint: disable=M3D303 reason=one-shot process-lifetime latch, installed once
    triggered = threading.Event()

    def handle(signum: int, frame: FrameType | None) -> None:
        if triggered.is_set():
            return
        triggered.set()
        print(f"received signal {signum}; draining...", flush=True)
        # A thread, not inline: server.shutdown() must not run on the
        # serve_forever thread the signal interrupted.
        threading.Thread(
            target=drain_and_stop,
            args=(server, service, drain_deadline_s),
            name="m3d-serve-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, handle)
    signal.signal(signal.SIGINT, handle)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_json_logging(stream=sys.stderr, level=args.log_level.upper())
    tracer = build_tracer(args)
    try:
        if args.model is not None:
            if not args.model.exists():
                print(f"no such model file: {args.model}", file=sys.stderr)
                return 2
            service = LocalizationService(
                model=DelayFaultLocalizer.load(args.model),
                max_batch=args.max_batch,
                batch_window_s=args.batch_window_ms / 1e3,
                cache_size=args.cache_size,
                max_queue=args.max_queue,
                request_timeout_s=args.request_timeout_s,
                drain_deadline_s=args.drain_deadline_s,
                tracer=tracer,
                num_workers=args.workers,
            )
        else:
            service = LocalizationService(
                registry=ModelRegistry(args.registry),
                max_batch=args.max_batch,
                batch_window_s=args.batch_window_ms / 1e3,
                cache_size=args.cache_size,
                max_queue=args.max_queue,
                request_timeout_s=args.request_timeout_s,
                drain_deadline_s=args.drain_deadline_s,
                tracer=tracer,
                num_workers=args.workers,
            )
    except ModelRegistryError as exc:
        print(f"registry error: {exc}", file=sys.stderr)
        return 2

    server = create_server(
        service, host=args.host, port=args.port, max_body_bytes=args.max_body_bytes
    )
    # Identity tags for cross-process stitching; the bound port is only
    # known here (``--port 0`` resolves at bind time).
    tracer.tags.update({"process": "replica", "addr": f"{args.host}:{server.port}"})
    install_signal_handlers(server, service, args.drain_deadline_s)
    info = service.describe_model()
    print(f"model: {info['name']}/{info['version']} (sha256 {info['sha256'][:12]}…)", flush=True)
    print(f"serving on http://{args.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        drain_and_stop(server, service, args.drain_deadline_s)
    finally:
        server.server_close()
        service.close()
        if tracer.exporter is not None:
            tracer.exporter.close()
    print("drained; exiting", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Front multiple ``m3d-serve`` replicas with a consistent-hash router.

Usage::

    PYTHONPATH=src python -m m3d_fault_loc.cli.route \\
        --replica 127.0.0.1:8361 --replica 127.0.0.1:8362 --port 8360

Requests are routed by payload hash (repeat graphs hit the replica whose
caches already hold them); a failed replica is retried on the next in
preference order under the idempotency and deadline rules documented in
:mod:`m3d_fault_loc.serve.router`, ejected after consecutive failures, and
readmitted through a half-open health probe. Router-own endpoints live
under ``/router/`` (``/router/healthz``, ``/router/metrics``, and the
federated ``/router/fleet`` snapshot); everything else is proxied.
``--trace-log`` appends one ``route`` trace per proxied request (tagged
``process=router``) for ``m3d-obs stitch`` to join with replica logs.

``SIGTERM``/``SIGINT`` starts the drain cascade's front half: admission
stops (new requests get a structured 503), the accept loop stops, in-flight
proxied requests finish within ``--drain-deadline-s``, and the process
exits 0. The replicas behind it drain the same way on their own SIGTERM —
drain the router first, then the replicas, and no client sees a dropped
connection.

``--port 0`` binds an ephemeral port; the chosen address is printed as
``routing on http://host:port`` so harnesses can parse it.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from types import FrameType

from m3d_fault_loc.obs.logging import configure_json_logging
from m3d_fault_loc.obs.trace import JsonlTraceExporter, Tracer
from m3d_fault_loc.serve.resilience import ExponentialBackoff
from m3d_fault_loc.serve.router import (
    ReplicaRouter,
    RouterHTTPServer,
    RouterPolicy,
    create_router_server,
    parse_replica_spec,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replica", action="append", required=True, metavar="HOST:PORT",
                        help="backend m3d-serve address (repeat per replica)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8360,
                        help="TCP port (0 binds an ephemeral port)")
    parser.add_argument("--attempt-timeout-s", type=float, default=30.0,
                        help="per-attempt socket timeout against a replica")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="attempts across the failover preference list")
    parser.add_argument("--eject-after", type=int, default=3,
                        help="consecutive failures before a replica is ejected")
    parser.add_argument("--cooldown-s", type=float, default=2.0,
                        help="ejection cooldown before the half-open trial")
    parser.add_argument("--probe-interval-s", type=float, default=0.5,
                        help="health-probe cadence (0 disables the prober)")
    parser.add_argument("--probe-timeout-s", type=float, default=2.0,
                        help="socket timeout per health probe")
    parser.add_argument("--default-deadline-s", type=float, default=30.0,
                        help="deadline for requests without X-M3D-Deadline-Ms")
    parser.add_argument("--drain-deadline-s", type=float, default=10.0,
                        help="graceful-shutdown drain budget on SIGTERM/SIGINT")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="structured-log threshold (JSON lines on stderr)")
    parser.add_argument("--trace-log", type=Path, default=None,
                        help="append completed route traces to this JSONL file")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="routes slower than this land in the slow-trace ring")
    parser.add_argument("--trace-capacity", type=int, default=256,
                        help="completed route traces kept in memory")
    return parser


def build_tracer(args: argparse.Namespace) -> Tracer:
    """Router-side tracer tagged for cross-process stitching."""
    exporter = None if args.trace_log is None else JsonlTraceExporter(args.trace_log)
    slow_s = None if args.slow_ms is None else args.slow_ms / 1e3
    return Tracer(
        capacity=args.trace_capacity,
        exporter=exporter,
        slow_threshold_s=slow_s,
        tags={"process": "router"},
    )


def build_router(args: argparse.Namespace, tracer: Tracer | None = None) -> ReplicaRouter:
    replicas = [parse_replica_spec(spec) for spec in args.replica]
    policy = RouterPolicy(
        attempt_timeout_s=args.attempt_timeout_s,
        max_attempts=args.max_attempts,
        eject_after=args.eject_after,
        cooldown_s=args.cooldown_s,
        probe_interval_s=args.probe_interval_s if args.probe_interval_s > 0 else None,
        probe_timeout_s=args.probe_timeout_s,
        backoff=ExponentialBackoff(base_s=0.02, max_s=0.5),
        default_deadline_s=args.default_deadline_s,
    )
    return ReplicaRouter(replicas, policy=policy, tracer=tracer)


def drain_and_stop(
    server: RouterHTTPServer, router: ReplicaRouter, drain_deadline_s: float
) -> None:
    """Front half of the drain cascade: admission off, then in-flight out."""
    router.begin_drain()
    server.shutdown()
    router.await_drain(drain_deadline_s)
    router.close()


def install_signal_handlers(
    server: RouterHTTPServer, router: ReplicaRouter, drain_deadline_s: float
) -> None:
    """Route SIGTERM/SIGINT into one graceful drain (idempotent)."""
    # m3dlint: disable=M3D303 reason=one-shot process-lifetime latch, installed once
    triggered = threading.Event()

    def handle(signum: int, frame: FrameType | None) -> None:
        if triggered.is_set():
            return
        triggered.set()
        print(f"received signal {signum}; draining...", flush=True)
        threading.Thread(
            target=drain_and_stop,
            args=(server, router, drain_deadline_s),
            name="m3d-route-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, handle)
    signal.signal(signal.SIGINT, handle)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_json_logging(stream=sys.stderr, level=args.log_level.upper())
    tracer = build_tracer(args)
    try:
        router = build_router(args, tracer=tracer)
    except ValueError as exc:
        print(f"bad replica spec: {exc}", file=sys.stderr)
        return 2
    server = create_router_server(router, host=args.host, port=args.port)
    install_signal_handlers(server, router, args.drain_deadline_s)
    print(f"replicas: {', '.join(r.key for r in router.replicas)}", flush=True)
    print(f"routing on http://{args.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        drain_and_stop(server, router, args.drain_deadline_s)
    finally:
        server.server_close()
        router.close()
        if tracer.exporter is not None:
            tracer.exporter.close()
    print("drained; exiting", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic seeding — the single blessed place for global RNG setup.

Every CLI entry point calls :func:`seed_everything` exactly once; the
``m3dlint`` code rule M3D203 flags any other call site that touches global
seeding primitives directly.
"""

from __future__ import annotations

import os
import random

import numpy as np


def seed_everything(seed: int) -> np.random.Generator:
    """Seed every RNG the stack can touch and return a fresh numpy Generator.

    Seeds the ``random`` module, numpy's legacy global RNG, ``PYTHONHASHSEED``,
    and — when torch is importable — torch's CPU and CUDA RNGs. The returned
    ``np.random.Generator`` is the preferred source of randomness for new
    code; the global seeding exists for third-party code paths.
    """
    if not 0 <= seed < 2**32:
        raise ValueError(f"seed must be in [0, 2**32), got {seed}")
    os.environ["PYTHONHASHSEED"] = str(seed)
    random.seed(seed)
    np.random.seed(seed)
    try:  # torch is optional in this environment; seed it when present.
        import torch

        torch.manual_seed(seed)
        if torch.cuda.is_available():
            torch.cuda.manual_seed_all(seed)
    except ImportError:
        pass
    return np.random.default_rng(seed)

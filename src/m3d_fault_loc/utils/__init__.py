"""Shared utilities."""

from m3d_fault_loc.utils.seed import seed_everything

__all__ = ["seed_everything"]

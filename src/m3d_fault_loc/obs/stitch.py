"""Cross-process trace stitching: router + replica logs → per-request waterfalls.

The router (``m3d-route --trace-log``) emits one ``route`` trace per proxied
request — route decision, per-attempt upstream call, retry backoff — and
each replica (``m3d-serve --trace-log``) emits its own ``localize`` trace
for the same ``X-M3D-Trace-Id`` the router forwarded. Every process stamps
its traces with identity ``tags`` (``{"process": "router"}`` /
``{"process": "replica", "addr": "host:port"}``), so joining the files on
trace id reconstructs the request's fleet-wide story: which replica each
attempt hit, where the failover happened, and how the replica spent the
time the router was waiting.

Robustness is the point, not a bonus: trace files are written live by
independent processes, so the reader tolerates torn trailing lines (via
:func:`~m3d_fault_loc.obs.telemetry.read_jsonl`), exact-duplicate records
(shipped twice, or the same file listed twice), hops arriving in any file
order, and missing hops — a SIGKILLed replica never flushes its last trace,
so its attempt shows up from the router's side only and is reported under
``missing_attempts`` instead of breaking the join. Hop ordering uses the
router's attempt metadata, never cross-process wall clocks, so clock skew
between hosts cannot reorder a waterfall.

Health-prober traffic carries a stable synthetic ``probe-…`` trace id and
is filtered out by default (``include_probes`` keeps it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from m3d_fault_loc.obs.telemetry import read_jsonl

#: Trace-id prefix the router's health prober stamps on its synthetic
#: requests, so probe traffic is distinguishable from user traffic in
#: replica logs and stitch output.
PROBE_TRACE_PREFIX = "probe-"

#: Router span stage naming one try against one replica.
ATTEMPT_STAGE = "upstream_attempt"


def read_trace_files(paths: Sequence[Path | str]) -> list[dict[str, Any]]:
    """All trace records across the given JSONL files, deduplicated.

    Files may interleave arbitrarily (one request's hops can live in any
    subset of the files, in any order); a torn final line from a crashed or
    killed writer is skipped; an exact duplicate record — same id, identity
    tags, start, and duration — is kept once.
    """
    records: list[dict[str, Any]] = []
    seen: set[tuple[Any, ...]] = set()
    for path in paths:
        for record in read_jsonl(path):
            if "trace_id" not in record or "duration_ms" not in record:
                continue  # telemetry row or foreign JSONL, not a trace
            key = (
                str(record["trace_id"]),
                json.dumps(record.get("tags", {}), sort_keys=True),
                record.get("name"),
                record.get("started_at"),
                record.get("duration_ms"),
            )
            if key in seen:
                continue
            seen.add(key)
            records.append(record)
    return records


def _process_of(record: dict[str, Any]) -> str:
    return str(record.get("tags", {}).get("process", "replica"))


def _attempt_summaries(router_hop: dict[str, Any] | None) -> list[dict[str, Any]]:
    """Per-attempt summaries from the router hop's ``upstream_attempt`` spans."""
    if router_hop is None:
        return []
    attempts: list[dict[str, Any]] = []
    for span in router_hop.get("spans", ()):
        if span.get("stage") != ATTEMPT_STAGE:
            continue
        meta = span.get("meta", {})
        attempts.append(
            {
                "attempt": int(meta.get("attempt", len(attempts) + 1)),
                "replica": meta.get("replica"),
                "rank": meta.get("rank"),
                "outcome": meta.get("outcome"),
                "offset_ms": span.get("offset_ms", 0.0),
                "duration_ms": span.get("duration_ms", 0.0),
            }
        )
    attempts.sort(key=lambda a: a["attempt"])
    return attempts


def _stitch_one(trace_id: str, hops: list[dict[str, Any]]) -> dict[str, Any]:
    router_hops = sorted(
        (h for h in hops if _process_of(h) == "router"),
        key=lambda h: h.get("started_at", 0.0),
    )
    replica_hops = sorted(
        (h for h in hops if _process_of(h) != "router"),
        key=lambda h: h.get("started_at", 0.0),
    )
    router_hop = router_hops[0] if router_hops else None
    attempts = _attempt_summaries(router_hop)

    # Match replica hops to router attempts by replica address, in attempt
    # order — never by cross-process timestamps, which skew. Replica hops
    # the router never logged (direct traffic, lost router log) stay
    # unmatched and are ordered by their own start time after the matched.
    unclaimed = list(attempts)
    matched: list[tuple[int, dict[str, Any]]] = []
    unmatched: list[dict[str, Any]] = []
    for hop in replica_hops:
        addr = hop.get("tags", {}).get("addr")
        claim = next((a for a in unclaimed if a["replica"] == addr), None)
        if claim is None and addr is None and unclaimed:
            claim = unclaimed[0]  # untagged legacy hop: best-effort order
        if claim is None:
            unmatched.append(hop)
            continue
        unclaimed.remove(claim)
        matched.append((claim["attempt"], hop))

    ordered: list[dict[str, Any]] = []
    if router_hop is not None:
        ordered.append(_hop_view(router_hop, attempt=None))
    ordered.extend(extra for extra in (_hop_view(h, attempt=None) for h in router_hops[1:]))
    for attempt_no, hop in sorted(matched, key=lambda pair: pair[0]):
        ordered.append(_hop_view(hop, attempt=attempt_no))
    ordered.extend(_hop_view(h, attempt=None) for h in unmatched)

    matched_attempts = {attempt_no for attempt_no, _ in matched}
    missing = [a for a in attempts if a["attempt"] not in matched_attempts]

    if router_hop is not None:
        duration_ms = float(router_hop.get("duration_ms", 0.0))
        status = str(router_hop.get("status", "unknown"))
    else:
        duration_ms = max((float(h.get("duration_ms", 0.0)) for h in hops), default=0.0)
        bad = [str(h.get("status")) for h in hops if h.get("status") not in ("ok", None)]
        status = bad[0] if bad else "ok"
    return {
        "trace_id": trace_id,
        "started_at": min((h.get("started_at", 0.0) for h in hops), default=0.0),
        "duration_ms": duration_ms,
        "status": status,
        "hops": ordered,
        "attempts": attempts,
        "missing_attempts": missing,
        "processes": sorted({_process_of(h) for h in hops}),
    }


def _hop_view(record: dict[str, Any], attempt: int | None) -> dict[str, Any]:
    tags = record.get("tags", {})
    view = {
        "process": _process_of(record),
        "addr": tags.get("addr"),
        "name": record.get("name"),
        "status": record.get("status", "unknown"),
        "started_at": record.get("started_at"),
        "duration_ms": record.get("duration_ms", 0.0),
        "meta": record.get("meta", {}),
        "spans": record.get("spans", []),
    }
    if attempt is not None:
        view["attempt"] = attempt
    return view


def stitch_traces(
    records: Iterable[dict[str, Any]], include_probes: bool = False
) -> list[dict[str, Any]]:
    """Join trace records into per-request waterfalls, oldest first."""
    by_id: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        trace_id = str(record["trace_id"])
        if not include_probes and trace_id.startswith(PROBE_TRACE_PREFIX):
            continue
        by_id.setdefault(trace_id, []).append(record)
    stitched = [_stitch_one(trace_id, hops) for trace_id, hops in by_id.items()]
    stitched.sort(key=lambda s: s["started_at"])
    return stitched


def stitch_files(
    paths: Sequence[Path | str],
    include_probes: bool = False,
    slow_ms: float | None = None,
) -> list[dict[str, Any]]:
    """Read, join, and (optionally) filter: the ``m3d-obs stitch`` pipeline."""
    stitched = stitch_traces(read_trace_files(paths), include_probes=include_probes)
    if slow_ms is not None:
        stitched = [s for s in stitched if s["duration_ms"] >= slow_ms]
    return stitched


# -- renderers ----------------------------------------------------------------


def _span_line(span: dict[str, Any]) -> str:
    meta = span.get("meta", {})
    detail = ""
    if span.get("stage") == ATTEMPT_STAGE:
        detail = f"  ({meta.get('attempt')}: {meta.get('replica')} -> {meta.get('outcome')})"
    elif meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        detail = f"  ({pairs})"
    return (
        f"      {span.get('stage', '?'):<20} {float(span.get('duration_ms', 0.0)):>9.3f} ms"
        f" @ {float(span.get('offset_ms', 0.0)):>8.3f}{detail}"
    )


def render_waterfall_text(stitched: dict[str, Any]) -> str:
    """One request's cross-process waterfall as indented text."""
    served = next(
        (h for h in stitched["hops"] if h["process"] != "router" and "attempt" in h), None
    )
    head = (
        f"trace {stitched['trace_id']}  {len(stitched['hops'])} hops  "
        f"{stitched['status']}  {stitched['duration_ms']:.3f} ms"
    )
    if served is not None:
        head += f"  served-by {served['addr']} (attempt {served['attempt']})"
    lines = [head]
    for hop in stitched["hops"]:
        where = hop["process"] if hop["addr"] is None else f"{hop['process']} {hop['addr']}"
        suffix = f"  (attempt {hop['attempt']})" if "attempt" in hop else ""
        lines.append(
            f"  [{where}] {hop['name']} {float(hop['duration_ms']):.3f} ms"
            f"  {hop['status']}{suffix}"
        )
        for span in sorted(hop["spans"], key=lambda s: s.get("offset_ms", 0.0)):
            lines.append(_span_line(span))
    for gone in stitched["missing_attempts"]:
        lines.append(
            f"  ! attempt {gone['attempt']} on {gone['replica']} has no replica-side "
            f"hop (outcome: {gone['outcome']})"
        )
    return "\n".join(lines)


def render_stitched_text(stitched_list: Sequence[dict[str, Any]]) -> str:
    """Waterfalls for every stitched request, blank-line separated."""
    if not stitched_list:
        return "no stitched requests"
    return "\n\n".join(render_waterfall_text(s) for s in stitched_list)

"""Run telemetry: JSONL event streams from training/eval, plus summarizers.

``m3d-train --metrics-log runs/train.jsonl`` appends one record per epoch
(loss, gradient norm, learning rate, wall time) and a final record with the
held-out accuracy; ``m3d-evaluate --metrics-log`` appends its hit@k
numbers. The same file format is what ``m3d-obs`` summarizes, and the
summarizers double as the analysis layer for serving trace logs
(``--trace-log`` JSONL from :class:`~m3d_fault_loc.obs.trace.Tracer`).

Everything is line-oriented JSON on purpose: appends are atomic enough for
crash-resumed runs, and ``grep``/``jq`` keep working when ``m3d-obs`` is
not around.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Any

#: Percentiles reported for every stage/latency summary.
SUMMARY_PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0)


class TelemetryWriter:
    """Append-only JSONL event stream (``{"ts": ..., "event": ..., **fields}``)."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle: Any = None
        self.events_written = 0

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        line = json.dumps(record, default=str)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # m3dlint: disable=M3D302 reason=leaf lock lazily opening its own sink
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")  # m3dlint: disable=M3D302 reason=leaf lock
            self._handle.flush()  # m3dlint: disable=M3D302 reason=leaf lock
            self.events_written += 1
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> TelemetryWriter:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: Path | str) -> list[dict[str, Any]]:
    """Parse a JSONL file, skipping blank and torn (half-written) lines."""
    records: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn tail line from a crashed writer
            if isinstance(parsed, dict):
                records.append(parsed)
    return records


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile; 0.0 for an empty sequence."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _stage_summary(durations_ms: Sequence[float]) -> dict[str, float | int]:
    summary: dict[str, float | int] = {"count": len(durations_ms)}
    for q in SUMMARY_PERCENTILES:
        summary[f"p{q:g}_ms"] = round(percentile(durations_ms, q), 4)
    summary["max_ms"] = round(max(durations_ms, default=0.0), 4)
    return summary


def summarize_traces(traces: Iterable[dict[str, Any]], top: int = 5) -> dict[str, Any]:
    """Per-stage latency percentiles + slowest requests over a trace stream.

    Accepts the dicts produced by :class:`~m3d_fault_loc.obs.trace.Tracer`
    (ring buffer entries or ``--trace-log`` JSONL lines).
    """
    totals: list[float] = []
    stages: dict[str, list[float]] = {}
    statuses: dict[str, int] = {}
    slowest: list[dict[str, Any]] = []
    n = 0
    for trace in traces:
        n += 1
        duration_ms = float(trace.get("duration_ms", 0.0))
        totals.append(duration_ms)
        status = str(trace.get("status", "unknown"))
        statuses[status] = statuses.get(status, 0) + 1
        for span in trace.get("spans", ()):
            stages.setdefault(str(span.get("stage", "?")), []).append(
                float(span.get("duration_ms", 0.0))
            )
        slowest.append(
            {
                "trace_id": trace.get("trace_id"),
                "duration_ms": duration_ms,
                "status": status,
                "name": trace.get("name"),
            }
        )
    slowest.sort(key=lambda t: t["duration_ms"], reverse=True)
    return {
        "traces": n,
        "total": _stage_summary(totals),
        "stages": {stage: _stage_summary(ds) for stage, ds in sorted(stages.items())},
        "statuses": dict(sorted(statuses.items())),
        "slowest": slowest[: max(0, top)],
    }


def summarize_training(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Loss/grad-norm/wall-time trajectory over a ``--metrics-log`` stream."""
    epochs: list[dict[str, Any]] = []
    final: dict[str, Any] | None = None
    evals: list[dict[str, Any]] = []
    profiles: list[dict[str, Any]] = []
    for record in records:
        event = record.get("event")
        if event == "epoch":
            epochs.append(record)
        elif event == "final":
            final = record
        elif event == "eval":
            evals.append(record)
        elif event == "profile":
            profiles.append(record)
    losses = [float(e["loss"]) for e in epochs if "loss" in e]
    walls = [float(e["wall_s"]) for e in epochs if "wall_s" in e]
    norms = [float(e["grad_norm"]) for e in epochs if "grad_norm" in e]
    summary: dict[str, Any] = {
        "epochs": len(epochs),
        "first_loss": losses[0] if losses else None,
        "last_loss": losses[-1] if losses else None,
        "best_loss": min(losses) if losses else None,
        "mean_epoch_wall_s": round(sum(walls) / len(walls), 4) if walls else None,
        "max_grad_norm": round(max(norms), 4) if norms else None,
    }
    if final is not None:
        summary["final"] = {
            k: v for k, v in final.items() if k not in ("ts", "event")
        }
    if evals:
        summary["evals"] = [
            {k: v for k, v in e.items() if k not in ("ts", "event")} for e in evals
        ]
    if profiles:
        summary["profile"] = _summarize_profile(profiles)
    return summary


def _summarize_profile(profiles: Sequence[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Aggregate per-epoch ``profile`` rows (``m3d-train --profile``) by phase."""
    by_phase: dict[str, dict[str, Any]] = {}
    for row in profiles:
        name = str(row.get("phase", "?"))
        agg = by_phase.setdefault(
            name, {"wall_s": 0.0, "calls": 0, "epochs": 0, "peak_kb": None}
        )
        agg["wall_s"] += float(row.get("wall_s", 0.0))
        agg["calls"] += int(row.get("calls", 0))
        agg["epochs"] += 1
        if "peak_kb" in row:
            peak = float(row["peak_kb"])
            if agg["peak_kb"] is None or peak > agg["peak_kb"]:
                agg["peak_kb"] = peak
    total_wall = sum(agg["wall_s"] for agg in by_phase.values())
    for agg in by_phase.values():
        agg["wall_s"] = round(agg["wall_s"], 6)
        agg["share"] = round(agg["wall_s"] / total_wall, 4) if total_wall > 0 else 0.0
        if agg["peak_kb"] is None:
            del agg["peak_kb"]
    return dict(sorted(by_phase.items(), key=lambda kv: kv[1]["wall_s"], reverse=True))

"""Observability spine: structured logging, tracing, and run telemetry.

Layers, bottom up:

- :mod:`m3d_fault_loc.obs.context` — contextvar-based trace-id propagation,
  so every log line and span a request touches carries the same id.
- :mod:`m3d_fault_loc.obs.logging` — JSON-lines structured logger over the
  stdlib logging tree (``get_logger(__name__).info("event", field=...)``).
- :mod:`m3d_fault_loc.obs.trace` — per-stage span tracer with a completed-
  trace ring buffer (``/debug/traces``), JSONL export (``--trace-log``), a
  slow-request ring, and a <5 µs no-op fast path when disabled.
- :mod:`m3d_fault_loc.obs.telemetry` — JSONL event streams from training
  and evaluation plus the percentile summarizers behind ``m3d-obs``.
- :mod:`m3d_fault_loc.obs.cli` — the ``m3d-obs`` summarizer CLI.
"""

from m3d_fault_loc.obs.context import (
    current_trace_id,
    new_trace_id,
    sanitize_trace_id,
    trace_context,
)
from m3d_fault_loc.obs.logging import (
    JSONLineFormatter,
    StructuredLogger,
    configure_json_logging,
    get_logger,
)
from m3d_fault_loc.obs.telemetry import (
    TelemetryWriter,
    percentile,
    read_jsonl,
    summarize_traces,
    summarize_training,
)
from m3d_fault_loc.obs.trace import NULL_TRACER, JsonlTraceExporter, Tracer

__all__ = [
    "NULL_TRACER",
    "JSONLineFormatter",
    "JsonlTraceExporter",
    "StructuredLogger",
    "TelemetryWriter",
    "Tracer",
    "configure_json_logging",
    "current_trace_id",
    "get_logger",
    "new_trace_id",
    "percentile",
    "read_jsonl",
    "sanitize_trace_id",
    "summarize_traces",
    "summarize_training",
    "trace_context",
]

"""Metrics federation: one fleet-wide snapshot from N replica ``/metrics``.

The router (and the ``m3d-obs fleet`` CLI) poll every member's
``GET /metrics?format=json`` and ``GET /healthz`` with short per-member
timeouts, then merge the per-replica instruments into a single fleet view:
counters and gauges sum, histograms bucket-merge via
:meth:`~m3d_fault_loc.serve.metrics.Histogram.merge` (identical bounds are
required, so fleet percentiles stay as meaningful as any single replica's).
The per-replica breakdown is kept alongside the merged section — the
federation invariant, pinned by tests, is that the merged counter values
equal the sum of the per-replica values.

Each scrape also feeds a sliding window of snapshots from which the SLO
section is derived: request availability (success ratio from the counters'
deltas across the window), latency-objective attainment (fraction of
requests at or under the objective, interpolated from the merged latency
histogram), and a simple burn rate (observed error rate over the budgeted
error rate). Window timing uses ``time.monotonic()`` — wall clocks are for
display only, never for durations (see m3dlint M3D211).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from m3d_fault_loc.serve.metrics import Histogram, _fmt

#: Instrument whose merged buckets drive the latency SLO attainment.
LATENCY_METRIC = "m3d_request_latency_seconds"
REQUESTS_METRIC = "m3d_requests_total"
ERRORS_METRIC = "m3d_request_errors_total"


def fetch_json(addr: str, path: str, timeout_s: float) -> Any | None:
    """``GET http://addr{path}`` parsed as JSON; ``None`` on any failure."""
    host, _, port = addr.rpartition(":")
    try:
        conn = http.client.HTTPConnection(host, int(port), timeout=timeout_s)
    except (OSError, ValueError):
        return None
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            return None
        return json.loads(body)
    except (OSError, ValueError, http.client.HTTPException):
        return None
    finally:
        conn.close()


def _fraction_le(snap: dict[str, Any], bound_s: float) -> float | None:
    """Fraction of a histogram snapshot's observations at or under ``bound_s``.

    Linear interpolation inside the straddling bucket, same model the
    percentile estimator uses — cumulative counts in, a ratio out.
    """
    count = int(snap.get("count", 0))
    if count <= 0:
        return None
    buckets = snap.get("buckets") or {}
    bounds = sorted(float(key) for key in buckets if key != "+Inf")
    previous_bound = 0.0
    previous_cum = 0
    for bound in bounds:
        cumulative = int(buckets[_fmt(bound)])
        if bound >= bound_s:
            width = bound - previous_bound
            frac = (bound_s - previous_bound) / width if width > 0 else 1.0
            inside = previous_cum + (cumulative - previous_cum) * max(0.0, min(1.0, frac))
            return inside / count
        previous_bound = bound
        previous_cum = cumulative
    return previous_cum / count


class FleetScraper:
    """Polls fleet members and folds their metrics into one snapshot.

    ``members`` is the router's replica key list (``host:port`` strings).
    ``router_metrics_fn`` lets an in-process host (the router serving
    ``/router/fleet``) contribute its own registry without an HTTP hop;
    ``router_addr`` does the same over HTTP for the CLI.
    """

    def __init__(
        self,
        members: Sequence[str],
        timeout_s: float = 2.0,
        window: int = 32,
        availability_objective: float = 0.99,
        latency_objective_ms: float = 250.0,
        router_metrics_fn: Callable[[], dict[str, Any]] | None = None,
        router_addr: str | None = None,
    ):
        if not 0.0 < availability_objective < 1.0:
            raise ValueError("availability objective must be in (0, 1)")
        self.members = list(members)
        self.timeout_s = timeout_s
        self.availability_objective = availability_objective
        self.latency_objective_ms = latency_objective_ms
        self.router_metrics_fn = router_metrics_fn
        self.router_addr = router_addr
        self._window: deque[dict[str, float]] = deque(maxlen=max(2, window))
        self._lock = threading.Lock()

    # -- scraping ----------------------------------------------------------

    def _scrape_member(self, addr: str) -> dict[str, Any]:
        metrics = fetch_json(addr, "/metrics?format=json", self.timeout_s)
        health = fetch_json(addr, "/healthz", self.timeout_s)
        reachable = metrics is not None
        status = "unreachable"
        if isinstance(health, dict):
            status = str(health.get("status", "unknown"))
        elif reachable:
            status = "unknown"
        return {
            "replica": addr,
            "reachable": reachable,
            "status": status,
            "metrics": metrics if isinstance(metrics, dict) else {},
        }

    @staticmethod
    def merge_metrics(replicas: Sequence[dict[str, Any]]) -> dict[str, Any]:
        """Sum counters/gauges and bucket-merge histograms across replicas."""
        merged: dict[str, Any] = {}
        histograms: dict[str, Histogram] = {}
        for entry in replicas:
            for name, inst in entry.get("metrics", {}).items():
                kind = inst.get("type")
                if kind in ("counter", "gauge"):
                    if name not in merged:
                        merged[name] = {"type": kind, "value": 0.0}
                    merged[name]["value"] += float(inst.get("value", 0.0))
                elif kind == "histogram":
                    incoming = Histogram.from_snapshot(name, inst)
                    if name in histograms:
                        histograms[name].merge(incoming)
                    else:
                        histograms[name] = incoming
                elif kind == "state_gauge":
                    if name not in merged:
                        merged[name] = {"type": kind, "states": {}}
                    state = str(inst.get("state", "unknown"))
                    states = merged[name]["states"]
                    states[state] = states.get(state, 0) + 1
        for name, histogram in histograms.items():
            snap = histogram.snapshot()
            merged[name] = {
                "type": "histogram",
                **snap,
                "p50_ms": round(histogram.percentile(50.0) * 1e3, 3),
                "p99_ms": round(histogram.percentile(99.0) * 1e3, 3),
            }
        return dict(sorted(merged.items()))

    def scrape(self) -> dict[str, Any]:
        """One federation pass: poll members, merge, derive status + SLO."""
        replicas = [self._scrape_member(addr) for addr in self.members]
        merged = self.merge_metrics(replicas)

        total = len(replicas)
        down = sum(1 for r in replicas if not r["reachable"])
        if total == 0:
            status = "empty"
        elif down == total:
            status = "unhealthy"
        elif down > 0:
            status = f"degraded-{down}-of-{total}"
        else:
            status = "ok"

        router: dict[str, Any] | None = None
        if self.router_metrics_fn is not None:
            router = self.router_metrics_fn()
        elif self.router_addr is not None:
            fetched = fetch_json(self.router_addr, "/router/metrics", self.timeout_s)
            router = fetched if isinstance(fetched, dict) else None

        snapshot = {
            "ts": round(time.time(), 6),
            "members": total,
            "reachable": total - down,
            "status": status,
            "replicas": replicas,
            "merged": merged,
            "router": router,
            "slo": self._update_slo(replicas, merged),
        }
        return snapshot

    # -- SLO window --------------------------------------------------------

    def _update_slo(
        self, replicas: Sequence[dict[str, Any]], merged: dict[str, Any]
    ) -> dict[str, Any]:
        requests = float(merged.get(REQUESTS_METRIC, {}).get("value", 0.0))
        errors = float(merged.get(ERRORS_METRIC, {}).get("value", 0.0))
        point = {
            "mono": time.monotonic(),
            "requests": requests,
            "errors": errors,
            "reachable_frac": (
                sum(1 for r in replicas if r["reachable"]) / len(replicas)
                if replicas
                else 0.0
            ),
        }
        with self._lock:
            self._window.append(point)
            window = list(self._window)

        # Availability over the window from counter deltas (falls back to
        # the reachability fraction before any requests have flowed).
        oldest, newest = window[0], window[-1]
        d_requests = max(0.0, newest["requests"] - oldest["requests"])
        d_errors = max(0.0, newest["errors"] - oldest["errors"])
        if d_requests > 0:
            availability = 1.0 - min(1.0, d_errors / d_requests)
        elif newest["requests"] > 0:
            availability = 1.0 - min(1.0, newest["errors"] / newest["requests"])
        else:
            availability = sum(p["reachable_frac"] for p in window) / len(window)

        latency_snap = merged.get(LATENCY_METRIC)
        attainment = (
            _fraction_le(latency_snap, self.latency_objective_ms / 1e3)
            if isinstance(latency_snap, dict)
            else None
        )

        budget = 1.0 - self.availability_objective
        burn_rate = round((1.0 - availability) / budget, 3)
        slo: dict[str, Any] = {
            "availability": round(availability, 6),
            "availability_objective": self.availability_objective,
            "burn_rate": burn_rate,
            "latency_objective_ms": self.latency_objective_ms,
            "window_points": len(window),
            "window_span_s": round(newest["mono"] - oldest["mono"], 3),
        }
        if attainment is not None:
            slo["latency_attainment"] = round(attainment, 6)
        return slo


def render_fleet_text(snapshot: dict[str, Any]) -> str:
    """Human-oriented fleet summary for ``m3d-obs fleet``."""
    lines = [
        f"fleet: {snapshot['status']}  "
        f"({snapshot['reachable']}/{snapshot['members']} reachable)"
    ]
    for replica in snapshot["replicas"]:
        requests = replica.get("metrics", {}).get(REQUESTS_METRIC, {}).get("value")
        extra = f"  requests={_fmt(requests)}" if requests is not None else ""
        lines.append(
            f"  {replica['replica']:<22} "
            f"{'up' if replica['reachable'] else 'DOWN':<5} {replica['status']}{extra}"
        )
    merged = snapshot.get("merged", {})
    latency = merged.get(LATENCY_METRIC)
    if isinstance(latency, dict) and latency.get("count"):
        lines.append(
            f"latency (merged): p50={latency['p50_ms']} ms  "
            f"p99={latency['p99_ms']} ms  n={latency['count']}"
        )
    for name in (REQUESTS_METRIC, ERRORS_METRIC):
        if name in merged:
            lines.append(f"{name}: {_fmt(merged[name]['value'])}")
    slo = snapshot.get("slo", {})
    if slo:
        attainment = slo.get("latency_attainment")
        attain_txt = (
            f"  latency<= {slo['latency_objective_ms']} ms: {attainment:.2%}"
            if attainment is not None
            else ""
        )
        lines.append(
            f"slo: availability={slo['availability']:.4f} "
            f"(objective {slo['availability_objective']})  "
            f"burn-rate={slo['burn_rate']}{attain_txt}"
        )
    return "\n".join(lines)

"""Request-scoped trace-context propagation.

One :mod:`contextvars` variable carries the current trace id from the HTTP
handler thread into everything it calls on that thread — the contract gate,
the cache lookup, the structured logger — without threading a ``trace_id``
parameter through every signature. Code that runs on *other* threads on a
request's behalf (the batch worker, the watchdog) cannot see the caller's
context; it tags spans and log lines with the trace id stored on the
queued request instead.

Trace ids are opaque lowercase hex strings. Inbound ids (from an
``X-M3D-Trace-Id`` request header) pass through :func:`sanitize_trace_id`
so a hostile client cannot inject log/JSON payloads through the id.
"""

from __future__ import annotations

import contextvars
import re
import uuid
from collections.abc import Iterator
from contextlib import contextmanager

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "m3d_trace_id", default=None
)

#: Accepted inbound trace ids: 8-64 URL-safe characters, nothing else.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{8,64}$")


def new_trace_id() -> str:
    """A fresh 32-char hex trace id."""
    return uuid.uuid4().hex


def current_trace_id() -> str | None:
    """The trace id bound to this thread/context, if any."""
    return _TRACE_ID.get()


def sanitize_trace_id(raw: str | None) -> str | None:
    """Return ``raw`` if it is a well-formed trace id, else ``None``."""
    if raw is None or not _TRACE_ID_RE.match(raw):
        return None
    return raw


@contextmanager
def trace_context(trace_id: str | None = None) -> Iterator[str]:
    """Bind ``trace_id`` (or a fresh one) for the duration of the block."""
    tid = trace_id or new_trace_id()
    token = _TRACE_ID.set(tid)
    try:
        yield tid
    finally:
        _TRACE_ID.reset(token)

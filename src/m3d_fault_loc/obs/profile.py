"""Training-loop phase profiler: per-epoch wall-time and memory splits.

``m3d-train --profile`` activates a :class:`PhaseProfiler` for the run;
instrumented code brackets its work with the module-level :func:`phase`
context manager (``data_gen``, ``forward``, ``backward``, ``optimizer_step``,
``eval``). The active profiler is carried in a :mod:`contextvars` variable,
so the instrumentation can live *permanently* in library code (e.g. the
localizer's ``loss_and_grads``): with no profiler active, :func:`phase`
returns a shared null context manager after one ``ContextVar.get`` — well
under 5 µs per phase boundary, asserted by a micro-benchmark in
``tests/test_obs_profile.py``, the same bar the tracer's no-op path meets.

Memory attribution (``--profile-memory``) uses :mod:`tracemalloc` behind a
flag because tracing allocations slows the loop; the peak is reset on entry
to each **outermost** phase and read back on exit, so nested phases (``forward``
inside a batch loop) never double-count and the per-phase high-water marks
stay comparable.

The profiler is deliberately single-context: one training loop, one
profiler, no locks. Per-epoch results are drained with :meth:`PhaseProfiler.drain`
and land as ``"profile"`` rows on the ``--metrics-log`` telemetry stream.
"""

from __future__ import annotations

import time
import tracemalloc
from contextvars import ContextVar
from typing import Any

#: The profiler active in this context, if any. ``phase()`` consults it on
#: every call; ``None`` (the overwhelmingly common case outside ``--profile``
#: runs) short-circuits to the shared null context manager.
_ACTIVE: ContextVar["PhaseProfiler | None"] = ContextVar(
    "m3d_phase_profiler", default=None
)

#: Canonical phase names used by the training loop, in waterfall order.
TRAIN_PHASES: tuple[str, ...] = (
    "data_gen", "forward", "backward", "optimizer_step", "eval",
)


class _NullPhase:
    """Shared do-nothing context manager: the profiler-off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_PHASE = _NullPhase()


class _PhaseContext:
    """Times one phase and records it into the owning profiler on exit."""

    __slots__ = ("_profiler", "_name", "_t0", "_outermost")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_PhaseContext":
        self._outermost = self._profiler._enter()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter() - self._t0
        self._profiler._exit(self._name, duration, self._outermost)
        return False


class PhaseProfiler:
    """Accumulates per-phase wall time (and optional allocation peaks).

    Use as a context manager to bind/unbind the ambient profiler::

        profiler = PhaseProfiler(memory=True)
        with profiler:
            with phase("forward"):
                ...
        rows = profiler.drain()

    ``drain()`` returns and clears the accumulated totals — the training
    loop calls it once per epoch so each telemetry row covers exactly one
    epoch. Single-threaded by design (one training loop owns it); the
    contextvar binding keeps concurrent loops in separate contexts.
    """

    def __init__(self, memory: bool = False):
        self.memory = memory
        self._wall_s: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._peak_bytes: dict[str, int] = {}
        self._depth = 0
        self._started_tracemalloc = False
        self._token: Any = None

    # -- ambient binding ---------------------------------------------------

    def __enter__(self) -> "PhaseProfiler":
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- recording ---------------------------------------------------------

    def phase(self, name: str) -> _PhaseContext:
        return _PhaseContext(self, name)

    def _enter(self) -> bool:
        """Bump nesting depth; True when this is the outermost phase."""
        self._depth += 1
        outermost = self._depth == 1
        if outermost and self.memory and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        return outermost

    def _exit(self, name: str, duration_s: float, outermost: bool) -> None:
        self._depth -= 1
        self._wall_s[name] = self._wall_s.get(name, 0.0) + duration_s
        self._calls[name] = self._calls.get(name, 0) + 1
        if outermost and self.memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if peak > self._peak_bytes.get(name, 0):
                self._peak_bytes[name] = peak

    # -- readers -----------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-phase totals accumulated since the last :meth:`drain`."""
        out: dict[str, dict[str, Any]] = {}
        for name in self._wall_s:
            row: dict[str, Any] = {
                "wall_s": round(self._wall_s[name], 6),
                "calls": self._calls.get(name, 0),
            }
            if name in self._peak_bytes:
                row["peak_kb"] = round(self._peak_bytes[name] / 1024.0, 1)
            out[name] = row
        return out

    def drain(self) -> dict[str, dict[str, Any]]:
        """Return the per-phase totals and reset for the next epoch."""
        out = self.snapshot()
        self._wall_s.clear()
        self._calls.clear()
        self._peak_bytes.clear()
        return out


def phase(name: str) -> _PhaseContext | _NullPhase:
    """Bracket one phase of the active profiler; no-op when none is active.

    Safe to leave in hot library code unconditionally: the inactive path is
    one ``ContextVar.get`` plus a shared null context manager.
    """
    profiler = _ACTIVE.get()
    if profiler is None:
        return NULL_PHASE
    return profiler.phase(name)


def active_profiler() -> PhaseProfiler | None:
    """The profiler bound to the current context, if any."""
    return _ACTIVE.get()

"""``m3d-obs`` — summarize observability artifacts from serving and training.

Subcommands:

- ``m3d-obs trace TRACE.jsonl [--top N] [--format json]`` — per-stage
  latency percentiles (p50/p95/p99/max), status counts, and the slowest
  requests from a ``--trace-log`` file written by the serving tracer.
- ``m3d-obs train METRICS.jsonl [--format json]`` (alias: ``summarize``) —
  loss / grad-norm / epoch-wall-time trajectory, final held-out accuracy,
  and the per-phase profiler table (``m3d-train --profile``) from a
  ``--metrics-log`` file.
- ``m3d-obs stitch ROUTER.jsonl REPLICA.jsonl ... [--slow-ms N]
  [--include-probes] [--format json]`` — join router + replica trace logs
  into per-request cross-process waterfalls (hop order from the router's
  attempt metadata; killed replicas show as missing attempts).
- ``m3d-obs fleet --router HOST:PORT | --replica HOST:PORT ...`` — merged
  fleet metrics snapshot with per-replica breakdown and SLO section, either
  fetched from a router's ``/router/fleet`` or scraped directly.

Exit codes: 0 ok, 2 unreadable/empty input or unreachable fleet.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from m3d_fault_loc.obs.fleet import FleetScraper, fetch_json, render_fleet_text
from m3d_fault_loc.obs.stitch import render_stitched_text, stitch_files
from m3d_fault_loc.obs.telemetry import read_jsonl, summarize_traces, summarize_training


def _load(path: Path) -> list[dict[str, Any]] | None:
    if not path.exists():
        print(f"m3d-obs: no such file: {path}", file=sys.stderr)
        return None
    records = read_jsonl(path)
    if not records:
        print(f"m3d-obs: no records in {path}", file=sys.stderr)
        return None
    return records


def _print_stage_table(stages: dict[str, dict[str, Any]]) -> None:
    header = f"{'stage':<16} {'count':>6} {'p50ms':>9} {'p95ms':>9} {'p99ms':>9} {'maxms':>9}"
    print(header)
    print("-" * len(header))
    for stage, s in stages.items():
        print(
            f"{stage:<16} {s['count']:>6} {s['p50_ms']:>9.3f} {s['p95_ms']:>9.3f} "
            f"{s['p99_ms']:>9.3f} {s['max_ms']:>9.3f}"
        )


def _cmd_trace(args: argparse.Namespace) -> int:
    records = _load(args.path)
    if records is None:
        return 2
    summary = summarize_traces(records, top=args.top)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
        return 0
    total = summary["total"]
    print(
        f"{summary['traces']} traces  "
        f"p50 {total['p50_ms']:.3f} ms  p95 {total['p95_ms']:.3f} ms  "
        f"p99 {total['p99_ms']:.3f} ms  max {total['max_ms']:.3f} ms"
    )
    print(f"statuses: {summary['statuses']}")
    print()
    _print_stage_table(summary["stages"])
    if summary["slowest"]:
        print()
        print(f"slowest {len(summary['slowest'])}:")
        for t in summary["slowest"]:
            print(
                f"  {t['duration_ms']:>10.3f} ms  {t['status']:<20} "
                f"{t['trace_id']}  ({t['name']})"
            )
    return 0


def _print_profile_table(profile: dict[str, dict[str, Any]]) -> None:
    has_memory = any("peak_kb" in row for row in profile.values())
    header = f"{'phase':<16} {'wall_s':>10} {'share':>7} {'calls':>8}"
    if has_memory:
        header += f" {'peak_kb':>10}"
    print(header)
    print("-" * len(header))
    for name, row in profile.items():
        line = f"{name:<16} {row['wall_s']:>10.4f} {row['share']:>6.1%} {row['calls']:>8}"
        if has_memory:
            peak = row.get("peak_kb")
            line += f" {peak:>10.1f}" if peak is not None else f" {'-':>10}"
        print(line)


def _cmd_train(args: argparse.Namespace) -> int:
    records = _load(args.path)
    if records is None:
        return 2
    summary = summarize_training(records)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"{summary['epochs']} epochs  "
        f"loss {summary['first_loss']} -> {summary['last_loss']} "
        f"(best {summary['best_loss']})"
    )
    if summary["mean_epoch_wall_s"] is not None:
        print(f"mean epoch wall time: {summary['mean_epoch_wall_s']} s")
    if summary["max_grad_norm"] is not None:
        print(f"max grad norm: {summary['max_grad_norm']}")
    if "final" in summary:
        print(f"final: {summary['final']}")
    for ev in summary.get("evals", ()):
        print(f"eval: {ev}")
    if "profile" in summary:
        print()
        _print_profile_table(summary["profile"])
    return 0


def _cmd_stitch(args: argparse.Namespace) -> int:
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"m3d-obs: no such file: {path}", file=sys.stderr)
        return 2
    stitched = stitch_files(
        args.paths, include_probes=args.include_probes, slow_ms=args.slow_ms
    )
    if args.trace_id is not None:
        stitched = [s for s in stitched if s["trace_id"] == args.trace_id]
    if args.format == "json":
        print(json.dumps(stitched, indent=2))
    else:
        print(render_stitched_text(stitched))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if not args.replica and args.router is None:
        print("m3d-obs: fleet needs --router and/or --replica", file=sys.stderr)
        return 2
    if args.replica:
        scraper = FleetScraper(
            members=args.replica,
            timeout_s=args.timeout_s,
            availability_objective=args.availability_objective,
            latency_objective_ms=args.latency_objective_ms,
            router_addr=args.router,
        )
        snapshot = scraper.scrape()
    else:
        # No member list: reuse the router's own config via /router/fleet.
        snapshot = fetch_json(args.router, "/router/fleet", args.timeout_s)
        if not isinstance(snapshot, dict):
            print(f"m3d-obs: router unreachable: {args.router}", file=sys.stderr)
            return 2
    if args.format == "json":
        print(json.dumps(snapshot, indent=2))
    else:
        print(render_fleet_text(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="m3d-obs", description="Summarize m3d trace and training telemetry logs."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="summarize a serving trace log (JSONL)")
    trace.add_argument("path", type=Path)
    trace.add_argument("--top", type=int, default=5, help="slowest requests to list")
    trace.add_argument("--format", choices=("text", "json"), default="text")
    trace.set_defaults(func=_cmd_trace)

    for name, help_text in (
        ("train", "summarize a training metrics log (JSONL)"),
        ("summarize", "alias for train: summarize a training metrics log"),
    ):
        train = sub.add_parser(name, help=help_text)
        train.add_argument("path", type=Path)
        train.add_argument("--format", choices=("text", "json"), default="text")
        train.set_defaults(func=_cmd_train)

    stitch = sub.add_parser(
        "stitch", help="join router + replica trace logs into per-request waterfalls"
    )
    stitch.add_argument("paths", nargs="+", type=Path,
                        help="trace-log JSONL files from any mix of processes")
    stitch.add_argument("--slow-ms", type=float, default=None,
                        help="only requests at least this slow end-to-end")
    stitch.add_argument("--include-probes", action="store_true",
                        help="keep health-prober traffic (probe-… trace ids)")
    stitch.add_argument("--trace-id", default=None, help="only this trace id")
    stitch.add_argument("--format", choices=("text", "json"), default="text")
    stitch.set_defaults(func=_cmd_stitch)

    fleet = sub.add_parser(
        "fleet", help="merged fleet metrics snapshot with SLO section"
    )
    fleet.add_argument("--router", default=None, metavar="HOST:PORT",
                       help="router address; without --replica its /router/fleet "
                            "is fetched directly (reusing its member config)")
    fleet.add_argument("--replica", action="append", default=[], metavar="HOST:PORT",
                       help="replica to scrape (repeatable)")
    fleet.add_argument("--timeout-s", type=float, default=2.0,
                       help="per-member scrape timeout")
    fleet.add_argument("--availability-objective", type=float, default=0.99)
    fleet.add_argument("--latency-objective-ms", type=float, default=250.0)
    fleet.add_argument("--format", choices=("text", "json"), default="text")
    fleet.set_defaults(func=_cmd_fleet)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())

"""``m3d-obs`` — summarize observability artifacts from serving and training.

Subcommands:

- ``m3d-obs trace TRACE.jsonl [--top N] [--format json]`` — per-stage
  latency percentiles (p50/p95/p99/max), status counts, and the slowest
  requests from a ``--trace-log`` file written by the serving tracer.
- ``m3d-obs train METRICS.jsonl [--format json]`` — loss / grad-norm /
  epoch-wall-time trajectory and final held-out accuracy from a
  ``--metrics-log`` file written by ``m3d-train`` / ``m3d-evaluate``.

Exit codes: 0 ok, 2 unreadable or empty input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from m3d_fault_loc.obs.telemetry import read_jsonl, summarize_traces, summarize_training


def _load(path: Path) -> list[dict[str, Any]] | None:
    if not path.exists():
        print(f"m3d-obs: no such file: {path}", file=sys.stderr)
        return None
    records = read_jsonl(path)
    if not records:
        print(f"m3d-obs: no records in {path}", file=sys.stderr)
        return None
    return records


def _print_stage_table(stages: dict[str, dict[str, Any]]) -> None:
    header = f"{'stage':<16} {'count':>6} {'p50ms':>9} {'p95ms':>9} {'p99ms':>9} {'maxms':>9}"
    print(header)
    print("-" * len(header))
    for stage, s in stages.items():
        print(
            f"{stage:<16} {s['count']:>6} {s['p50_ms']:>9.3f} {s['p95_ms']:>9.3f} "
            f"{s['p99_ms']:>9.3f} {s['max_ms']:>9.3f}"
        )


def _cmd_trace(args: argparse.Namespace) -> int:
    records = _load(args.path)
    if records is None:
        return 2
    summary = summarize_traces(records, top=args.top)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
        return 0
    total = summary["total"]
    print(
        f"{summary['traces']} traces  "
        f"p50 {total['p50_ms']:.3f} ms  p95 {total['p95_ms']:.3f} ms  "
        f"p99 {total['p99_ms']:.3f} ms  max {total['max_ms']:.3f} ms"
    )
    print(f"statuses: {summary['statuses']}")
    print()
    _print_stage_table(summary["stages"])
    if summary["slowest"]:
        print()
        print(f"slowest {len(summary['slowest'])}:")
        for t in summary["slowest"]:
            print(
                f"  {t['duration_ms']:>10.3f} ms  {t['status']:<20} "
                f"{t['trace_id']}  ({t['name']})"
            )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    records = _load(args.path)
    if records is None:
        return 2
    summary = summarize_training(records)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
        return 0
    print(
        f"{summary['epochs']} epochs  "
        f"loss {summary['first_loss']} -> {summary['last_loss']} "
        f"(best {summary['best_loss']})"
    )
    if summary["mean_epoch_wall_s"] is not None:
        print(f"mean epoch wall time: {summary['mean_epoch_wall_s']} s")
    if summary["max_grad_norm"] is not None:
        print(f"max grad norm: {summary['max_grad_norm']}")
    if "final" in summary:
        print(f"final: {summary['final']}")
    for ev in summary.get("evals", ()):
        print(f"eval: {ev}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="m3d-obs", description="Summarize m3d trace and training telemetry logs."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="summarize a serving trace log (JSONL)")
    trace.add_argument("path", type=Path)
    trace.add_argument("--top", type=int, default=5, help="slowest requests to list")
    trace.add_argument("--format", choices=("text", "json"), default="text")
    trace.set_defaults(func=_cmd_trace)

    train = sub.add_parser("train", help="summarize a training metrics log (JSONL)")
    train.add_argument("path", type=Path)
    train.add_argument("--format", choices=("text", "json"), default="text")
    train.set_defaults(func=_cmd_train)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())

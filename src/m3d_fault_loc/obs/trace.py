"""Lightweight span tracer: per-stage wall times for every request.

A *trace* is one request's journey through the pipeline; a *span* is one
named stage inside it (``contract_gate``, ``cache_lookup``, ``queue_wait``,
``batch_infer``, …). The service opens a trace per ``localize()`` call;
code on the request's own thread records spans with the :meth:`Tracer.span`
context manager (the trace id comes from the ambient context), and the
batch worker — which acts on many requests from one thread — records with
:meth:`Tracer.record`, passing each victim's trace id explicitly.

Completed traces land in a bounded ring buffer (served by
``GET /debug/traces``), are appended as JSONL through an optional exporter
(``--trace-log``), and, when they exceed ``slow_threshold_s``, are kept in
a separate slow-request ring so the tail survives buffer churn.

The no-op fast path matters: with ``enabled=False`` (or the shared
:data:`NULL_TRACER`), :meth:`Tracer.span` returns a singleton null context
manager and :meth:`Tracer.record` returns immediately — well under 5 µs per
span, asserted by a micro-benchmark in ``tests/test_obs_trace.py`` — so
tracing can stay in the hot path unconditionally.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from types import TracebackType
from typing import Any

from m3d_fault_loc.obs.context import current_trace_id, new_trace_id


class _NullSpan:
    """Shared do-nothing context manager: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _ActiveTrace:
    """Mutable per-request accumulator; finished into a plain JSON dict."""

    __slots__ = ("trace_id", "name", "meta", "started_at", "started_mono", "spans", "lock")

    def __init__(self, trace_id: str, name: str, meta: dict[str, Any]):
        self.trace_id = trace_id
        self.name = name
        self.meta = meta
        self.started_at = time.time()
        self.started_mono = time.perf_counter()
        self.spans: list[dict[str, Any]] = []
        self.lock = threading.Lock()


class _SpanContext:
    """Times one stage and records it into the owning tracer on exit."""

    __slots__ = ("_tracer", "_trace_id", "_stage", "_parent", "_meta", "_t0")

    def __init__(
        self,
        tracer: Tracer,
        trace_id: str,
        stage: str,
        parent: str | None,
        meta: dict[str, Any],
    ):
        self._tracer = tracer
        self._trace_id = trace_id
        self._stage = stage
        self._parent = parent
        self._meta = meta

    def __enter__(self) -> _SpanContext:
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self._meta = {**self._meta, "error": exc_type.__name__}
        self._tracer.record(
            self._trace_id, self._stage, duration, parent=self._parent, **self._meta
        )
        return False


class _TraceContext:
    """Opens a trace on entry, finishes it (status from the outcome) on exit."""

    __slots__ = ("_tracer", "trace_id", "_name", "_meta")

    def __init__(self, tracer: Tracer, trace_id: str, name: str, meta: dict[str, Any]):
        self._tracer = tracer
        self.trace_id = trace_id
        self._name = name
        self._meta = meta

    def __enter__(self) -> _TraceContext:
        self._tracer._begin(self.trace_id, self._name, self._meta)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        status = "ok" if exc_type is None else exc_type.__name__
        self._tracer._finish(self.trace_id, status)
        return False


class JsonlTraceExporter:
    """Appends one JSON line per completed trace to ``path`` (lazily opened)."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle: Any = None

    def export(self, trace: dict[str, Any]) -> None:
        line = json.dumps(trace, default=str)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # m3dlint: disable=M3D302 reason=leaf lock lazily opening its own sink
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")  # m3dlint: disable=M3D302 reason=leaf lock
            self._handle.flush()  # m3dlint: disable=M3D302 reason=leaf lock

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class Tracer:
    """Thread-safe trace/span recorder with a bounded completed-trace ring."""

    def __init__(
        self,
        capacity: int = 256,
        exporter: JsonlTraceExporter | None = None,
        slow_threshold_s: float | None = None,
        slow_capacity: int = 64,
        enabled: bool = True,
        tags: dict[str, Any] | None = None,
    ):
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("tracer ring capacities must be >= 1")
        self.enabled = enabled
        self.exporter = exporter
        self.slow_threshold_s = slow_threshold_s
        #: Process-identity tags stamped on every finished trace (e.g.
        #: ``{"process": "router"}`` / ``{"process": "replica", "addr": ...}``)
        #: so cross-process stitching can tell hops apart without relying on
        #: which file a record came from. Mutable until serving starts.
        self.tags: dict[str, Any] = dict(tags or {})
        self._lock = threading.Lock()
        self._active: dict[str, _ActiveTrace] = {}
        self._completed: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._slow: deque[dict[str, Any]] = deque(maxlen=slow_capacity)
        self._dropped_spans = 0

    # -- trace lifecycle ---------------------------------------------------

    def trace(
        self, name: str, trace_id: str | None = None, **meta: Any
    ) -> _TraceContext | _NullSpan:
        """Context manager spanning one request; ``NULL_SPAN`` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        tid = trace_id or current_trace_id() or new_trace_id()
        return _TraceContext(self, tid, name, meta)

    def _begin(self, trace_id: str, name: str, meta: dict[str, Any]) -> None:
        active = _ActiveTrace(trace_id, name, meta)
        with self._lock:
            self._active[trace_id] = active

    def _finish(self, trace_id: str, status: str) -> dict[str, Any] | None:
        with self._lock:
            active = self._active.pop(trace_id, None)
        if active is None:
            return None
        duration = time.perf_counter() - active.started_mono
        with active.lock:
            spans = list(active.spans)
            meta = dict(active.meta)
        finished = {
            "trace_id": trace_id,
            "name": active.name,
            "status": status,
            "started_at": round(active.started_at, 6),
            "duration_ms": round(duration * 1e3, 4),
            "meta": meta,
            "spans": spans,
        }
        if self.tags:
            finished["tags"] = dict(self.tags)
        with self._lock:
            self._completed.append(finished)
            if self.slow_threshold_s is not None and duration >= self.slow_threshold_s:
                self._slow.append(finished)
        if self.exporter is not None:
            try:
                self.exporter.export(finished)
            except OSError:  # a full disk must never fail the request
                pass
        return finished

    # -- span recording ----------------------------------------------------

    def span(
        self,
        stage: str,
        trace_id: str | None = None,
        parent: str | None = None,
        **meta: Any,
    ) -> _SpanContext | _NullSpan:
        """Time one stage of the ambient (or explicit) trace."""
        if not self.enabled:
            return NULL_SPAN
        tid = trace_id or current_trace_id()
        if tid is None:
            return NULL_SPAN
        return _SpanContext(self, tid, stage, parent, meta)

    def record(
        self,
        trace_id: str,
        stage: str,
        duration_s: float,
        parent: str | None = None,
        **meta: Any,
    ) -> None:
        """Record an already-measured stage (worker-side: queue_wait, infer).

        The span's start offset is derived as *now − duration*, so records
        made right after the measured section land in the right place on
        the trace timeline. Records for unknown/finished traces are dropped
        (counted, never raised): the watchdog may fail a request before its
        worker-side spans arrive.
        """
        if not self.enabled:
            return
        with self._lock:
            active = self._active.get(trace_id)
        if active is None:
            with self._lock:
                self._dropped_spans += 1
            return
        now = time.perf_counter()
        span: dict[str, Any] = {
            "stage": stage,
            "offset_ms": round(max(0.0, now - duration_s - active.started_mono) * 1e3, 4),
            "duration_ms": round(duration_s * 1e3, 4),
        }
        if parent is not None:
            span["parent"] = parent
        if meta:
            span["meta"] = meta
        with active.lock:
            active.spans.append(span)

    def annotate(self, trace_id: str, **fields: Any) -> None:
        """Merge fields into an active trace's meta (late-arriving facts).

        Lets code that only learns an outcome mid-flight — which replica
        finally served a routed request, which pool shard ran the batch —
        stamp it on the trace without owning the trace lifecycle.
        Annotations for unknown/finished traces are dropped silently, same
        contract as :meth:`record`.
        """
        if not self.enabled or not fields:
            return
        with self._lock:
            active = self._active.get(trace_id)
        if active is None:
            return
        with active.lock:
            active.meta.update(fields)

    # -- readers -----------------------------------------------------------

    def recent(self, n: int = 20) -> list[dict[str, Any]]:
        """The ``n`` most recent completed traces, newest first."""
        with self._lock:
            items = list(self._completed)
        return list(reversed(items))[: max(0, n)]

    def slow(self, n: int = 20) -> list[dict[str, Any]]:
        """The ``n`` most recent slow traces (past the threshold), newest first."""
        with self._lock:
            items = list(self._slow)
        return list(reversed(items))[: max(0, n)]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "active": len(self._active),
                "completed": len(self._completed),
                "slow": len(self._slow),
                "dropped_spans": self._dropped_spans,
            }


#: Shared disabled tracer: the zero-configuration no-op fast path.
NULL_TRACER = Tracer(enabled=False)

"""Structured JSON logging with automatic trace-id propagation.

Library code logs *events with fields*, not prose::

    log = get_logger(__name__)
    log.warning("breaker_transition", old="closed", new="open")

Each call renders as one JSON object per line — timestamp, level, logger,
event name, the fields, and the trace id bound to the current context (or
passed explicitly as ``trace_id=`` by code running on another thread, such
as the watchdog failing a victim request's future). Every line a request
touches is greppable by one id.

Everything funnels through the stdlib :mod:`logging` tree, so existing
handlers, ``caplog``, and level configuration keep working; only the
formatting and the field transport are new. m3dlint rule ``M3D207``
(WARN repo-wide, ERROR under ``serve/``) keeps bare ``print()`` and
root-``logging`` calls from bypassing this module.
"""

from __future__ import annotations

import json
import logging
from typing import Any, TextIO

from m3d_fault_loc.obs.context import current_trace_id

#: The logging-tree root every structured logger hangs off.
ROOT_LOGGER_NAME = "m3d_fault_loc"

#: Marker attribute identifying handlers installed by configure_json_logging.
_HANDLER_MARK = "_m3d_json_handler"


class JSONLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, trace id, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        trace_id = getattr(record, "m3d_trace_id", None)
        if trace_id:
            payload["trace_id"] = trace_id
        fields = getattr(record, "m3d_fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = str(record.exc_info[1])
        return json.dumps(payload, default=str)


class StructuredLogger:
    """Event-style front end over one stdlib logger.

    The trace id is captured at *call* time from the ambient context (so the
    formatter never races a context switch); pass ``trace_id=`` explicitly
    when logging about a request from a thread that never entered its
    context (worker, watchdog).
    """

    __slots__ = ("name", "_logger")

    def __init__(self, name: str):
        self.name = name
        self._logger = logging.getLogger(name)

    def _log(
        self, level: int, event: str, fields: dict[str, Any], exc_info: bool = False
    ) -> None:
        if not self._logger.isEnabledFor(level):
            return
        trace_id = fields.pop("trace_id", None) or current_trace_id()
        self._logger.log(
            level,
            event,
            extra={"m3d_fields": fields, "m3d_trace_id": trace_id},
            exc_info=exc_info,
        )

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields, exc_info=True)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for ``name`` (usually ``__name__``)."""
    return StructuredLogger(name)


def configure_json_logging(
    stream: TextIO | None = None,
    level: int | str = logging.INFO,
    logger_name: str = ROOT_LOGGER_NAME,
) -> logging.Handler:
    """Attach one JSON-lines handler to the package logger tree.

    Idempotent: a second call replaces the previously installed JSON handler
    instead of stacking a duplicate. Returns the installed handler so
    callers (the serve CLI, tests) can flush or remove it.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(logger_name)
    for existing in list(root.handlers):
        if getattr(existing, _HANDLER_MARK, False):
            root.removeHandler(existing)
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler.setFormatter(JSONLineFormatter())
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(level)
    return handler

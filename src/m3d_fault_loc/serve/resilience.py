"""Resilience primitives for the serving stack.

Everything here exists to make failure modes *explicit, bounded, and
observable* instead of hanging callers or silently degrading:

- :class:`Deadline` — absolute-monotonic request deadlines propagated from
  the HTTP handler through :meth:`LocalizationService.localize` into the
  batch worker, so an expired request is dropped instead of occupying a
  forward pass.
- Structured exceptions (:class:`DeadlineExceededError`,
  :class:`LoadSheddedError`, :class:`CircuitOpenError`,
  :class:`WorkerCrashedError`, :class:`ServiceDrainingError`) that the HTTP
  layer maps onto 504/429/503 responses with machine-readable bodies.
- :class:`CircuitBreaker` — a half-open breaker that trips after
  consecutive batch failures and lets a bounded number of probes through
  before closing again.
- :class:`HealthMonitor` — the ``ok -> degraded -> unhealthy`` state
  machine behind ``/healthz``, driven by worker restarts and recoveries.
- :class:`ExponentialBackoff` / :func:`retry_with_backoff` — the retry
  policy used for worker restarts and transient registry I/O.

None of these classes know about HTTP or the model; they are small,
lock-protected state machines that the service wires together.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable, Iterator
from typing import Any, TypeVar

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "ExponentialBackoff",
    "HealthMonitor",
    "LoadSheddedError",
    "ResilienceError",
    "ServiceDrainingError",
    "WorkerCrashedError",
    "jittered",
    "retry_with_backoff",
]

T = TypeVar("T")


# -- deadlines -------------------------------------------------------------


class Deadline:
    """An absolute point on the monotonic clock a request must finish by.

    Deadlines are created once at admission and *propagated* (never
    re-derived) so every layer — admission, queue wait, batch worker —
    measures the same budget. ``Deadline.after(None)`` is an infinite
    deadline that never expires.
    """

    __slots__ = ("budget_s", "expires_at")

    def __init__(self, expires_at: float | None, budget_s: float | None):
        self.expires_at = expires_at
        self.budget_s = budget_s

    @classmethod
    def after(cls, seconds: float | None) -> Deadline:
        if seconds is None:
            return cls(None, None)
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        return cls(time.monotonic() + seconds, seconds)

    def remaining(self) -> float | None:
        """Seconds left (may be negative), or ``None`` for no deadline."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at


# -- structured failures ---------------------------------------------------


class ResilienceError(RuntimeError):
    """Base class for structured serving failures (never a silent hang)."""


class DeadlineExceededError(ResilienceError):
    """The request's deadline elapsed before a result was produced."""

    def __init__(self, deadline_s: float | None, where: str = "queue"):
        self.deadline_s = deadline_s
        self.where = where
        budget = f"{deadline_s:.3f}s" if deadline_s is not None else "?"
        super().__init__(f"deadline of {budget} exceeded in {where}")


class LoadSheddedError(ResilienceError):
    """Admission queue full: the request was shed instead of queued."""

    def __init__(self, queue_limit: int, retry_after_s: float):
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s
        super().__init__(f"admission queue full ({queue_limit} waiting); request shed")


class CircuitOpenError(ResilienceError):
    """The batch circuit breaker is open; request refused at admission."""

    def __init__(self, retry_after_s: float):
        self.retry_after_s = retry_after_s
        super().__init__(f"circuit breaker open; retry after {retry_after_s:.1f}s")


class WorkerCrashedError(ResilienceError):
    """The batch worker died (or stalled) while this request was pending."""


class ServiceDrainingError(ResilienceError):
    """The service is draining/closed and no longer admits requests.

    The message intentionally contains ``closed``/``draining`` so callers
    matching on either word keep working.
    """

    def __init__(self, phase: str = "draining"):
        self.phase = phase
        super().__init__(f"service is {phase}; request refused")


# -- circuit breaker -------------------------------------------------------


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe state.

    States: ``closed`` (normal) → ``open`` after ``failure_threshold``
    consecutive failures (admission refused) → ``half_open`` once
    ``reset_timeout_s`` has elapsed (up to ``half_open_probes`` requests are
    let through) → ``closed`` on a probe success, or back to ``open`` on a
    probe failure. All transitions are lock-protected and observable via
    :meth:`snapshot` and the optional ``on_transition`` callback.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    STATES: tuple[str, ...] = (CLOSED, OPEN, HALF_OPEN)

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        half_open_probes: int = 1,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._trips = 0

    def set_transition_listener(self, listener: Callable[[str, str], None]) -> None:
        """Install/replace the transition callback (e.g. a metrics hook)."""
        self._on_transition = listener

    def _transition(self, new_state: str, events: list[tuple[str, str]]) -> None:
        """Apply a state change under ``_lock``; the callback is deferred.

        Transitions are recorded into ``events`` and fired by
        :meth:`_notify` only after the lock is released — listener code must
        never run under the breaker's own lock (re-entrancy deadlock).
        """
        old, self._state = self._state, new_state
        if old != new_state:
            events.append((old, new_state))

    def _notify(self, events: list[tuple[str, str]]) -> None:
        listener = self._on_transition
        if listener is not None:
            for old, new in events:
                listener(old, new)

    @property
    def state(self) -> str:
        events: list[tuple[str, str]] = []
        with self._lock:
            self._maybe_half_open(events)
            state = self._state
        self._notify(events)
        return state

    def _maybe_half_open(self, events: list[tuple[str, str]]) -> None:
        if self._state == self.OPEN and (
            time.monotonic() - self._opened_at >= self.reset_timeout_s
        ):
            self._probes_in_flight = 0  # m3dlint: disable=M3D301 reason=callers hold _lock
            self._transition(self.HALF_OPEN, events)

    def allow(self) -> bool:
        """Admission check: may one more request enter the pipeline now?"""
        events: list[tuple[str, str]] = []
        with self._lock:
            self._maybe_half_open(events)
            if self._state == self.CLOSED:
                admitted = True
            elif self._state == self.HALF_OPEN and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                admitted = True
            else:
                admitted = False
        self._notify(events)
        return admitted

    def retry_after_s(self) -> float:
        """How long a refused caller should wait before retrying."""
        with self._lock:
            waited = time.monotonic() - self._opened_at
            return max(0.1, self.reset_timeout_s - waited)

    def record_success(self) -> None:
        events: list[tuple[str, str]] = []
        with self._lock:
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._transition(self.CLOSED, events)
        self._notify(events)

    def record_failure(self) -> None:
        events: list[tuple[str, str]] = []
        with self._lock:
            self._maybe_half_open(events)
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = time.monotonic()
                self._trips += 1
                self._transition(self.OPEN, events)
        self._notify(events)

    def snapshot(self) -> dict[str, Any]:
        events: list[tuple[str, str]] = []
        with self._lock:
            self._maybe_half_open(events)
            snap = {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
            }
        self._notify(events)
        return snap


# -- health state machine --------------------------------------------------


class HealthMonitor:
    """``ok`` / ``degraded`` / ``unhealthy`` state machine for ``/healthz``.

    - a worker failure (crash or stall) moves ``ok -> degraded``;
    - ``unhealthy_after`` consecutive failures without an intervening
      success move ``degraded -> unhealthy``;
    - any successful batch moves the state back to ``ok`` and resets the
      failure streak (recovery is observable, not just collapse).
    """

    OK = "ok"
    DEGRADED = "degraded"
    UNHEALTHY = "unhealthy"
    STATES: tuple[str, ...] = (OK, DEGRADED, UNHEALTHY)

    def __init__(
        self,
        unhealthy_after: int = 3,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if unhealthy_after < 1:
            raise ValueError(f"unhealthy_after must be >= 1, got {unhealthy_after}")
        self.unhealthy_after = unhealthy_after
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._status = self.OK
        self._consecutive_failures = 0
        self._worker_restarts = 0
        self._last_failure: str | None = None

    def _transition(self, new_status: str, events: list[tuple[str, str]]) -> None:
        """Apply a status change under ``_lock``; the callback is deferred.

        As in :class:`CircuitBreaker`, transitions accumulate in ``events``
        and :meth:`_notify` fires the listener only after the lock is
        released, so listener code never runs under the monitor's lock.
        """
        old, self._status = self._status, new_status
        if old != new_status:
            events.append((old, new_status))

    def _notify(self, events: list[tuple[str, str]]) -> None:
        listener = self._on_transition
        if listener is not None:
            for old, new in events:
                listener(old, new)

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    def record_worker_failure(self, reason: str) -> None:
        events: list[tuple[str, str]] = []
        with self._lock:
            self._consecutive_failures += 1
            self._worker_restarts += 1
            self._last_failure = reason
            if self._consecutive_failures >= self.unhealthy_after:
                self._transition(self.UNHEALTHY, events)
            else:
                self._transition(self.DEGRADED, events)
        self._notify(events)

    def record_success(self) -> None:
        events: list[tuple[str, str]] = []
        with self._lock:
            self._consecutive_failures = 0
            if self._status != self.OK:
                self._transition(self.OK, events)
        self._notify(events)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "status": self._status,
                "consecutive_worker_failures": self._consecutive_failures,
                "worker_restarts": self._worker_restarts,
                "last_failure": self._last_failure,
            }


# -- backoff + retry -------------------------------------------------------

#: Process-wide jitter source. Deliberately unseeded: jitter exists to
#: de-synchronize *different* clients, so reproducibility would defeat it.
#: Retry *schedules* (ExponentialBackoff) stay deterministic; only advertised
#: retry *hints* are jittered.
_JITTER_RNG = random.Random()


def jittered(value_s: float, fraction: float = 0.2, rng: random.Random | None = None) -> float:
    """``value_s`` spread uniformly over ``±fraction`` (default ±20 %).

    Applied to ``Retry-After`` hints on 429/503 responses so a burst of shed
    clients does not stampede back in lockstep at the same instant. Callers
    asserting behavior should test the bounds, never the exact value.
    """
    if value_s < 0:
        raise ValueError(f"value_s must be >= 0, got {value_s}")
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    source = _JITTER_RNG if rng is None else rng
    return value_s * (1.0 + fraction * (2.0 * source.random() - 1.0))


class ExponentialBackoff:
    """Deterministic exponential backoff schedule (no jitter: tests and
    chaos replays must be reproducible)."""

    def __init__(self, base_s: float = 0.1, factor: float = 2.0, max_s: float = 5.0):
        if base_s <= 0 or factor < 1.0 or max_s < base_s:
            raise ValueError(
                f"invalid backoff (base {base_s}, factor {factor}, max {max_s})"
            )
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self._attempt = 0

    def next_delay(self) -> float:
        delay = min(self.base_s * (self.factor**self._attempt), self.max_s)
        self._attempt += 1
        return delay

    def reset(self) -> None:
        self._attempt = 0

    def delays(self, attempts: int) -> Iterator[float]:
        for _ in range(attempts):
            yield self.next_delay()


def retry_with_backoff(
    fn: Callable[[], T],
    attempts: int = 3,
    backoff: ExponentialBackoff | None = None,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` up to ``attempts`` times, backing off between failures.

    Only exceptions in ``retryable`` are retried; anything else propagates
    on first raise. The final retryable failure propagates unchanged so
    callers see the real error, not a wrapper.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    schedule = backoff or ExponentialBackoff(base_s=0.05)
    for attempt in range(attempts):
        try:
            return fn()
        except retryable:
            if attempt == attempts - 1:
                raise
            sleep(schedule.next_delay())
    raise AssertionError("unreachable")  # pragma: no cover

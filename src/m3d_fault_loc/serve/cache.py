"""Content-addressed LRU cache for localization results.

Cache keys are *canonical graph digests*: a SHA-256 over every array that
can influence the model's output (features, topology, tiers, edge types),
deliberately excluding presentation fields (``name``, ``meta``) and the
label (``fault_index``) so the same netlist submitted under different names
hits the same entry. The service prefixes keys with the active model's
fingerprint, so a hot-reload can never serve results computed by a previous
model version.

The cache is a bounded, thread-safe LRU — the m3dlint rule M3D205 exists
precisely so nobody replaces it with a module-level dict that grows with
every unique request.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from m3d_fault_loc.graph.schema import CircuitGraph

#: Bump when the digest recipe changes; keys from different recipes never mix.
_DIGEST_RECIPE = b"m3d-graph-digest-v1"


def graph_digest(graph: CircuitGraph) -> str:
    """Canonical content hash of everything that determines model output."""
    h = hashlib.sha256(_DIGEST_RECIPE)
    h.update(str(graph.num_tiers).encode())
    for field in ("x", "tier", "is_pi", "is_po", "edge_index", "edge_type", "edge_attr"):
        arr = np.ascontiguousarray(getattr(graph, field))
        h.update(field.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


class LRUResultCache:
    """Bounded thread-safe LRU mapping digest keys to localization results."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Any | None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (hot-reload path); hit/miss stats are kept."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

"""Stdlib JSON API over :class:`LocalizationService`.

Endpoints:

- ``POST /localize`` — body ``{"graph": <CircuitGraph JSON dict>,
  "top_k": 5, "scenario": "single_delay", "deadline_ms": 2000}``
  (``scenario`` optional, default ``single_delay``; ``deadline_ms``
  optional, also accepted as an ``X-M3D-Deadline-Ms`` header); ``200`` with
  the ranked localization, ``400`` on malformed payloads, ``413`` when the
  body exceeds the configured size limit, ``422`` with the m3dlint findings
  when the scenario's contract gate rejects the graph **or** with the known
  scenario list when ``scenario`` is unregistered, ``429``
  (+ ``Retry-After``) when the
  admission queue sheds the request, ``503`` while the circuit breaker is
  open, the worker just crashed, or the service is draining, and ``504``
  when the request's deadline elapses.
- ``GET /healthz`` — the ``ok``/``degraded``/``unhealthy``/``draining``
  state machine with worker, breaker, and queue detail (HTTP 200 while
  ``ok``/``degraded``, 503 otherwise).
- ``GET /metrics`` — Prometheus text by default, JSON with ``?format=json``.
- ``GET /model`` — active model manifest + cache statistics.
- ``GET /debug/traces`` — the N most recent completed request traces (and
  the slow-request ring) from the service tracer, for latency triage
  without log archaeology.

Every request is assigned a trace id (a well-formed inbound
``X-M3D-Trace-Id`` header is honored, anything else replaced) that is bound
to the handler thread's context — so the service's spans, every structured
log line, and the response all carry the same id. The id is returned in the
``X-M3D-Trace-Id`` response header on **every** outcome (200/4xx/5xx) and
echoed in JSON error bodies, making a client-observed 504/429/503 directly
correlatable with the server-side trace.

Built on ``ThreadingHTTPServer`` so each connection blocks on its own future
while the service worker micro-batches across connections — concurrency
without any dependency beyond the standard library.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from m3d_fault_loc.data.dataset import GraphContractError
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.obs.context import current_trace_id, new_trace_id, sanitize_trace_id
from m3d_fault_loc.obs.context import trace_context as _trace_context
from m3d_fault_loc.obs.logging import get_logger
from m3d_fault_loc.scenarios import UnknownScenarioError, scenario_names
from m3d_fault_loc.serve.resilience import (
    CircuitOpenError,
    DeadlineExceededError,
    LoadSheddedError,
    ServiceDrainingError,
    WorkerCrashedError,
)
from m3d_fault_loc.serve.service import LocalizationService

log = get_logger(__name__)

#: Response header carrying the request's trace id on every outcome.
TRACE_HEADER = "X-M3D-Trace-Id"

#: Default (and maximum) number of traces returned by ``/debug/traces``.
DEFAULT_DEBUG_TRACES = 20
MAX_DEBUG_TRACES = 256

#: Default cap on request bodies; override per server with ``max_body_bytes``.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

DEFAULT_TOP_K = 5

#: Health statuses that still answer 200 (serving, possibly at reduced
#: capacity); anything else is 503 so load balancers rotate traffic away.
_SERVING_STATUSES = ("ok", "degraded")


class _BadRequest(ValueError):
    """Client payload error; message is safe to echo back."""


class _PayloadTooLarge(ValueError):
    """Request body over the configured limit (413, never read)."""

    def __init__(self, length: int, limit: int):
        self.length = length
        self.limit = limit
        super().__init__(f"request body of {length} bytes exceeds the {limit}-byte limit")


class LocalizationHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that owns a running :class:`LocalizationService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: LocalizationService,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        super().__init__(address, _Handler)
        self.service = service
        self.max_body_bytes = max_body_bytes

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class _Handler(BaseHTTPRequestHandler):
    server_version = "m3d-serve/0.2"
    protocol_version = "HTTP/1.1"
    server: LocalizationHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("http_access", client=self.address_string(), line=format % args)

    def _request_trace_id(self) -> str:
        """Honor a well-formed inbound trace id; mint one otherwise."""
        return sanitize_trace_id(self.headers.get(TRACE_HEADER)) or new_trace_id()

    def _send_json(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        trace_id = current_trace_id()
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = current_trace_id()
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("request body required (Content-Length missing or zero)")
        if length > self.server.max_body_bytes:
            raise _PayloadTooLarge(length, self.server.max_body_bytes)
        return self.rfile.read(length)

    def _deadline_s(self, payload: dict[str, Any]) -> float | None:
        """Per-request deadline: ``deadline_ms`` in the body wins over the
        ``X-M3D-Deadline-Ms`` header; absent means the service default."""
        raw = payload.get("deadline_ms", self.headers.get("X-M3D-Deadline-Ms"))
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except (TypeError, ValueError):
            raise _BadRequest(f'"deadline_ms" must be a positive number, got {raw!r}') from None
        if deadline_ms <= 0:
            raise _BadRequest(f'"deadline_ms" must be a positive number, got {raw!r}')
        return deadline_ms / 1e3

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        with _trace_context(self._request_trace_id()):
            self._handle_get()

    def _handle_get(self) -> None:
        url = urlparse(self.path)
        if url.path == "/healthz":
            health = self.server.service.health_snapshot()
            status = 200 if health["status"] in _SERVING_STATUSES else 503
            self._send_json(status, health)
        elif url.path == "/metrics":
            fmt = parse_qs(url.query).get("format", ["prometheus"])[0]
            if fmt == "json":
                self._send_json(200, self.server.service.metrics.to_json_dict())
            else:
                self._send_text(
                    200,
                    self.server.service.metrics.render_prometheus(),
                    "text/plain; version=0.0.4",
                )
        elif url.path == "/model":
            self._send_json(
                200,
                {
                    "model": self.server.service.describe_model(),
                    "cache": self.server.service.cache_stats(),
                },
            )
        elif url.path == "/debug/traces":
            try:
                n = int(parse_qs(url.query).get("n", [str(DEFAULT_DEBUG_TRACES)])[0])
            except ValueError:
                self._send_json(400, {"error": "bad_request", "detail": '"n" must be an integer'})
                return
            n = max(1, min(n, MAX_DEBUG_TRACES))
            tracer = self.server.service.tracer
            self._send_json(
                200,
                {
                    "traces": tracer.recent(n),
                    "slow": tracer.slow(n),
                    "stats": tracer.stats(),
                },
            )
        else:
            self._send_json(404, {"error": "not_found", "path": url.path})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        with _trace_context(self._request_trace_id()) as trace_id:
            self._handle_post(trace_id)

    def _handle_post(self, trace_id: str) -> None:
        if urlparse(self.path).path != "/localize":
            self._send_json(404, {"error": "not_found", "path": self.path})
            return
        try:
            payload = self._parse_json_body(self._read_body())
            graph, top_k, scenario = self._parse_localize_payload(payload)
            timeout_s = self._deadline_s(payload)
        except _PayloadTooLarge as exc:
            self._send_json(
                413,
                {
                    "error": "payload_too_large",
                    "detail": str(exc),
                    "limit_bytes": exc.limit,
                    "got_bytes": exc.length,
                    "trace_id": trace_id,
                },
            )
            return
        except _BadRequest as exc:
            self._send_json(
                400, {"error": "bad_request", "detail": str(exc), "trace_id": trace_id}
            )
            return
        try:
            result = self.server.service.localize(
                graph, top_k=top_k, timeout_s=timeout_s, scenario=scenario
            )
        except UnknownScenarioError as exc:
            self._send_json(
                422,
                {
                    "error": "unknown_scenario",
                    "scenario": str(exc.name),
                    "known": exc.known,
                    "trace_id": trace_id,
                },
            )
            return
        except GraphContractError as exc:
            self._send_json(
                422,
                {
                    "error": "contract_violation",
                    "graph": exc.graph_name,
                    "violations": [v.to_json_dict() for v in exc.violations],
                    "trace_id": trace_id,
                },
            )
            return
        except LoadSheddedError as exc:
            self._send_json(
                429,
                {
                    "error": "load_shed",
                    "detail": str(exc),
                    "retry_after_s": exc.retry_after_s,
                    "trace_id": trace_id,
                },
                headers={"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
            )
            return
        except CircuitOpenError as exc:
            self._send_json(
                503,
                {
                    "error": "circuit_open",
                    "detail": str(exc),
                    "retry_after_s": exc.retry_after_s,
                    "trace_id": trace_id,
                },
                headers={"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
            )
            return
        except (DeadlineExceededError, FutureTimeoutError) as exc:
            deadline_s = getattr(exc, "deadline_s", None)
            self._send_json(
                504,
                {
                    "error": "deadline_exceeded",
                    "detail": str(exc) or "localization timed out",
                    "deadline_ms": None if deadline_s is None else round(deadline_s * 1e3, 3),
                    "trace_id": trace_id,
                },
            )
            return
        except WorkerCrashedError as exc:
            self._send_json(
                503, {"error": "worker_crashed", "detail": str(exc), "trace_id": trace_id}
            )
            return
        except (ServiceDrainingError, RuntimeError) as exc:
            if isinstance(exc, ServiceDrainingError) or "closed" in str(exc):
                self._send_json(
                    503, {"error": "draining", "detail": str(exc), "trace_id": trace_id}
                )
                return
            log.exception("localization_failed")
            self._send_json(
                500,
                {"error": "internal", "detail": "localization failed", "trace_id": trace_id},
            )
            return
        except Exception:
            log.exception("localization_failed")
            self._send_json(
                500,
                {"error": "internal", "detail": "localization failed", "trace_id": trace_id},
            )
            return
        self._send_json(200, result.to_json_dict())

    @staticmethod
    def _parse_json_body(body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "graph" not in payload:
            raise _BadRequest('payload must be an object with a "graph" field')
        return payload

    @staticmethod
    def _parse_localize_payload(payload: dict[str, Any]) -> tuple[CircuitGraph, int, str | None]:
        top_k = payload.get("top_k", DEFAULT_TOP_K)
        if not isinstance(top_k, int) or top_k < 1:
            raise _BadRequest(f'"top_k" must be a positive integer, got {top_k!r}')
        scenario = payload.get("scenario")
        if scenario is not None and (not isinstance(scenario, str) or not scenario):
            raise _BadRequest(
                f'"scenario" must be a non-empty string, got {scenario!r} '
                f"(known: {', '.join(scenario_names())})"
            )
        try:
            graph = CircuitGraph.from_json_dict(payload["graph"])
        except Exception as exc:
            raise _BadRequest(f"unreadable graph payload: {type(exc).__name__}: {exc}") from exc
        return graph, top_k, scenario


def create_server(
    service: LocalizationService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> LocalizationHTTPServer:
    """Bind the API (``port=0`` picks an ephemeral port) and start the
    service worker; call ``serve_forever()`` on the result to run."""
    server = LocalizationHTTPServer((host, port), service, max_body_bytes=max_body_bytes)
    service.start()
    return server

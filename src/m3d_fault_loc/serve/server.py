"""Stdlib JSON API over :class:`LocalizationService`.

Endpoints:

- ``POST /localize`` — body ``{"graph": <CircuitGraph JSON dict>, "top_k": 5}``;
  ``200`` with the ranked localization, ``400`` on malformed payloads,
  ``422`` with the m3dlint findings when the contract gate rejects the graph,
  ``504`` when the request times out in the batch queue.
- ``GET /healthz`` — liveness plus the active model identity.
- ``GET /metrics`` — Prometheus text by default, JSON with ``?format=json``.
- ``GET /model`` — active model manifest + cache statistics.

Built on ``ThreadingHTTPServer`` so each connection blocks on its own future
while the service worker micro-batches across connections — concurrency
without any dependency beyond the standard library.
"""

from __future__ import annotations

import json
import logging
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from m3d_fault_loc.data.dataset import GraphContractError
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.serve.service import LocalizationService

logger = logging.getLogger(__name__)

#: Request bodies above this size are refused outright (413).
MAX_BODY_BYTES = 64 * 1024 * 1024

DEFAULT_TOP_K = 5


class _BadRequest(ValueError):
    """Client payload error; message is safe to echo back."""


class LocalizationHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that owns a running :class:`LocalizationService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: LocalizationService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class _Handler(BaseHTTPRequestHandler):
    server_version = "m3d-serve/0.1"
    protocol_version = "HTTP/1.1"
    server: LocalizationHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("request body required (Content-Length missing or zero)")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body too large ({length} > {MAX_BODY_BYTES} bytes)")
        return self.rfile.read(length)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        if url.path == "/healthz":
            info = self.server.service.describe_model()
            self._send_json(
                200,
                {"status": "ok", "model": {"name": info["name"], "version": info["version"]}},
            )
        elif url.path == "/metrics":
            fmt = parse_qs(url.query).get("format", ["prometheus"])[0]
            if fmt == "json":
                self._send_json(200, self.server.service.metrics.to_json_dict())
            else:
                self._send_text(
                    200,
                    self.server.service.metrics.render_prometheus(),
                    "text/plain; version=0.0.4",
                )
        elif url.path == "/model":
            self._send_json(
                200,
                {
                    "model": self.server.service.describe_model(),
                    "cache": self.server.service.cache_stats(),
                },
            )
        else:
            self._send_json(404, {"error": "not_found", "path": url.path})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if urlparse(self.path).path != "/localize":
            self._send_json(404, {"error": "not_found", "path": self.path})
            return
        try:
            graph, top_k = self._parse_localize_payload(self._read_body())
        except _BadRequest as exc:
            self._send_json(400, {"error": "bad_request", "detail": str(exc)})
            return
        try:
            result = self.server.service.localize(graph, top_k=top_k)
        except GraphContractError as exc:
            self._send_json(
                422,
                {
                    "error": "contract_violation",
                    "graph": exc.graph_name,
                    "violations": [v.to_json_dict() for v in exc.violations],
                },
            )
            return
        except FutureTimeoutError:
            self._send_json(504, {"error": "timeout", "detail": "localization timed out"})
            return
        except Exception:
            logger.exception("localization failed")
            self._send_json(500, {"error": "internal", "detail": "localization failed"})
            return
        self._send_json(200, result.to_json_dict())

    @staticmethod
    def _parse_localize_payload(body: bytes) -> tuple[CircuitGraph, int]:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "graph" not in payload:
            raise _BadRequest('payload must be an object with a "graph" field')
        top_k = payload.get("top_k", DEFAULT_TOP_K)
        if not isinstance(top_k, int) or top_k < 1:
            raise _BadRequest(f'"top_k" must be a positive integer, got {top_k!r}')
        try:
            graph = CircuitGraph.from_json_dict(payload["graph"])
        except Exception as exc:
            raise _BadRequest(f"unreadable graph payload: {type(exc).__name__}: {exc}") from exc
        return graph, top_k


def create_server(
    service: LocalizationService, host: str = "127.0.0.1", port: int = 0
) -> LocalizationHTTPServer:
    """Bind the API (``port=0`` picks an ephemeral port) and start the
    service worker; call ``serve_forever()`` on the result to run."""
    server = LocalizationHTTPServer((host, port), service)
    service.start()
    return server

"""Replica tier: consistent-hash router over multiple ``m3d-serve`` processes.

One process can only scale so far; the replica tier fronts N independent
``m3d-serve`` replicas with a stdlib-only HTTP router (``m3d-route`` CLI):

- **Consistent-hash routing.** Requests are placed on a vnode hash ring
  keyed by the request body's sha256 (path for bodyless requests), so a
  repeat ``/localize`` payload lands on the same replica — its result LRU
  and aggregation-operator cache stay hot — and adding or removing a
  replica remaps only ~1/N of the keyspace. The ring's walk order doubles
  as the **failover preference list**.
- **Health-aware ejection.** Each replica runs a small state machine:
  ``up`` → (``eject_after`` consecutive failures) → ``ejected`` for a
  cooldown → ``half-open`` (exactly one trial request or probe) → ``up``
  on success, re-ejected on failure. A background prober GETs each
  replica's ``/healthz`` (always with a timeout — see m3dlint M3D210) so
  recovered replicas are readmitted without waiting for live traffic to
  gamble on them.
- **Bounded retry-with-backoff failover.** Connect-phase errors are always
  retried on the next replica in preference order (nothing was sent);
  post-send errors and retryable 5xx (500/502/503) fail over **only for
  idempotent requests** — ``GET``/``HEAD`` and ``POST /localize``, which is
  a pure function of its payload. A request past its deadline
  (``X-M3D-Deadline-Ms``) is *never* retried, and a replica's 504 is
  returned as-is: the deadline that expired there has expired here too.
  Retries are capped (``max_attempts``) and spaced by jittered exponential
  backoff so a sick pool is not hammered in lockstep.
- **Graceful drain cascade.** On SIGTERM the router stops admission first
  (new requests get a structured 503 ``draining``), finishes its in-flight
  proxied requests within a deadline, and exits 0 — the front half of the
  rolling-restart contract; each replica then drains the same way on its
  own SIGTERM.

The router never parses proxied bodies and holds no model state: it can be
restarted at will, and everything it knows shows up on
``GET /router/healthz`` and ``GET /router/metrics``. Every outbound
connection carries an explicit timeout — a dead replica must cost a bounded
attempt, never a hung router thread.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlparse

from m3d_fault_loc.obs.context import current_trace_id, new_trace_id, sanitize_trace_id
from m3d_fault_loc.obs.context import trace_context as _trace_context
from m3d_fault_loc.obs.fleet import FleetScraper
from m3d_fault_loc.obs.logging import get_logger
from m3d_fault_loc.obs.trace import NULL_TRACER, Tracer
from m3d_fault_loc.serve.metrics import MetricsRegistry
from m3d_fault_loc.serve.resilience import Deadline, ExponentialBackoff, jittered
from m3d_fault_loc.serve.server import TRACE_HEADER

log = get_logger(__name__)

#: Replica state machine values.
REPLICA_UP = "up"
REPLICA_EJECTED = "ejected"
REPLICA_HALF_OPEN = "half-open"

#: Response header naming the replica that produced the response.
REPLICA_HEADER = "X-M3D-Replica"
#: Response header counting the attempts the router spent on the request.
ATTEMPTS_HEADER = "X-M3D-Attempts"
#: Request header carrying the client deadline budget in milliseconds.
DEADLINE_HEADER = "X-M3D-Deadline-Ms"

#: Replica 5xx statuses worth failing over (another replica may serve the
#: key). 504 is deliberately absent: the request's own deadline expired.
_FAILOVER_STATUSES = frozenset({500, 502, 503})

#: POST paths that are pure functions of their payload and therefore safe
#: to replay on a sibling after an ambiguous post-send failure.
_IDEMPOTENT_POSTS = frozenset({"/localize"})

#: Trace-id prefix stamped on the background prober's synthetic requests so
#: probe traffic is distinguishable from user traffic in replica trace logs
#: and ``m3d-obs stitch`` output (which drops ``probe-…`` ids by default).
PROBE_TRACE_PREFIX = "probe-"

#: Request headers the router forwards downstream verbatim.
_FORWARD_REQUEST_HEADERS = ("Content-Type", TRACE_HEADER)
#: Replica response headers the router relays back to the client.
_RELAY_RESPONSE_HEADERS = ("Content-Type", TRACE_HEADER, "Retry-After")


def parse_replica_spec(spec: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)``; raises ``ValueError`` otherwise."""
    host, sep, port_s = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"replica spec must be host:port, got {spec!r}")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"replica spec must be host:port, got {spec!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"replica port out of range in {spec!r}")
    return host, port


class Replica:
    """One backend's identity plus its ejection state machine.

    Transitions (guarded by one lock, all O(1)):

    - ``up`` --eject_after consecutive failures--> ``ejected``
    - ``ejected`` --cooldown elapsed--> ``half-open`` (lazily, at the next
      admission or probe decision)
    - ``half-open`` --single trial succeeds--> ``up``; fails --> ``ejected``
      with a fresh cooldown

    ``admit()`` is the routing-side gate (claims the half-open trial slot);
    the prober uses the same accounting so a probe and a live request never
    both count as "the" trial.
    """

    STATES = (REPLICA_UP, REPLICA_EJECTED, REPLICA_HALF_OPEN)

    def __init__(self, host: str, port: int, eject_after: int = 3, cooldown_s: float = 2.0):
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1, got {eject_after}")
        self.host = host
        self.port = port
        self.key = f"{host}:{port}"
        self.eject_after = eject_after
        self.cooldown_s = cooldown_s
        self._state = REPLICA_UP
        self._failures = 0
        self._ejected_until = 0.0
        self._trial_claimed = False
        self._lock = threading.Lock()
        self.requests = 0
        self.failures_total = 0
        self.ejections = 0

    def _roll_state(self, now: float) -> None:
        # Cooldown expiry is evaluated lazily; every caller holds _lock.
        if self._state == REPLICA_EJECTED and now >= self._ejected_until:
            # m3dlint: disable=M3D301 reason=_locked helper, only called with _lock held
            self._state = REPLICA_HALF_OPEN
            # m3dlint: disable=M3D301 reason=_locked helper, only called with _lock held
            self._trial_claimed = False

    @property
    def state(self) -> str:
        with self._lock:
            self._roll_state(time.monotonic())
            return self._state

    def admit(self) -> bool:
        """May this replica take a request right now?

        ``up`` always admits; ``half-open`` admits exactly one in-flight
        trial (the claim is released by the success/failure that follows);
        ``ejected`` admits nothing until the cooldown matures.
        """
        with self._lock:
            self._roll_state(time.monotonic())
            if self._state == REPLICA_UP:
                return True
            if self._state == REPLICA_HALF_OPEN and not self._trial_claimed:
                self._trial_claimed = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.requests += 1
            self._failures = 0
            self._trial_claimed = False
            if self._state != REPLICA_UP:
                log.info("replica_readmitted", replica=self.key)
            self._state = REPLICA_UP

    def record_failure(self) -> None:
        with self._lock:
            self.requests += 1
            self.failures_total += 1
            self._failures += 1
            self._trial_claimed = False
            if self._state == REPLICA_HALF_OPEN or (
                self._state == REPLICA_UP and self._failures >= self.eject_after
            ):
                self._state = REPLICA_EJECTED
                self._ejected_until = time.monotonic() + self.cooldown_s
                self._failures = 0
                self.ejections += 1
                log.warning("replica_ejected", replica=self.key, cooldown_s=self.cooldown_s)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._roll_state(time.monotonic())
            return {
                "replica": self.key,
                "state": self._state,
                "requests": self.requests,
                "failures": self.failures_total,
                "ejections": self.ejections,
            }


class HashRing:
    """Consistent-hash ring with virtual nodes.

    ``preference(key)`` returns *all* members in ring-walk order from the
    key's hash point — position 0 is the owner, the rest the failover
    order — so routing and failover share one deterministic permutation.
    """

    def __init__(self, keys: list[str], vnodes: int = 64):
        if not keys:
            raise ValueError("hash ring needs at least one key")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        points: list[tuple[int, str]] = []
        for key in keys:
            for v in range(vnodes):
                points.append((self._hash(f"{key}#{v}"), key))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]
        self._size = len(set(keys))

    @staticmethod
    def _hash(value: str) -> int:
        return int(hashlib.sha256(value.encode()).hexdigest()[:16], 16)

    def preference(self, routing_key: str) -> list[str]:
        start = bisect_right(self._hashes, self._hash(routing_key)) % len(self._points)
        seen: set[str] = set()
        order: list[str] = []
        for step in range(len(self._points)):
            key = self._points[(start + step) % len(self._points)][1]
            if key not in seen:
                seen.add(key)
                order.append(key)
                if len(order) == self._size:
                    break
        return order


@dataclass(frozen=True)
class RouterPolicy:
    """Knobs bounding every routing decision (no unbounded anything)."""

    #: Per-attempt socket timeout — connect and read (M3D210: explicit, always).
    attempt_timeout_s: float = 30.0
    #: Total attempts across the preference list before giving up.
    max_attempts: int = 3
    #: Consecutive failures before a replica is ejected.
    eject_after: int = 3
    #: How long an ejected replica sits out before its half-open trial.
    cooldown_s: float = 2.0
    #: Background health-probe cadence (None disables the prober).
    probe_interval_s: float | None = 0.5
    #: Socket timeout for each health probe.
    probe_timeout_s: float = 2.0
    #: Base/ceiling for the jittered inter-attempt backoff.
    backoff: ExponentialBackoff = field(
        default_factory=lambda: ExponentialBackoff(base_s=0.02, max_s=0.5)
    )
    #: Default deadline for requests that carry none.
    default_deadline_s: float = 30.0


@dataclass
class RoutedResponse:
    """What one proxied request resolved to, however many attempts it took."""

    status: int
    headers: dict[str, str]
    body: bytes
    replica: str | None
    attempts: int


class ReplicaRouter:
    """Routing core: preference-list failover over health-gated replicas.

    Deliberately independent of the HTTP server so tests can drive
    :meth:`dispatch` directly with fake replicas.
    """

    def __init__(
        self,
        replicas: list[tuple[str, int]],
        policy: RouterPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        if not replicas:
            raise ValueError("router needs at least one replica")
        self.policy = policy or RouterPolicy()
        self.tracer = tracer or NULL_TRACER
        self.replicas = [
            Replica(
                host,
                port,
                eject_after=self.policy.eject_after,
                cooldown_s=self.policy.cooldown_s,
            )
            for host, port in replicas
        ]
        if len({r.key for r in self.replicas}) != len(self.replicas):
            raise ValueError("duplicate replica specs")
        self._by_key = {r.key: r for r in self.replicas}
        self.ring = HashRing([r.key for r in self.replicas])
        self._draining = False
        self._prober: threading.Thread | None = None
        self._stop = threading.Event()
        self.metrics = metrics or MetricsRegistry()
        m = self.metrics
        self.m_requests = m.counter("m3d_route_requests_total", "requests routed")
        self.m_retries = m.counter(
            "m3d_route_retries_total", "extra attempts after a failed first try"
        )
        self.m_failovers = m.counter(
            "m3d_route_failovers_total", "requests served by a non-owner replica"
        )
        self.m_no_replica = m.counter(
            "m3d_route_unrouted_total", "requests that exhausted every replica (502)"
        )
        self.m_probes = m.counter("m3d_route_probes_total", "health probes sent")
        self.m_probe_failures = m.counter("m3d_route_probe_failures_total", "health probes failed")
        self.m_inflight = m.gauge("m3d_route_inflight", "proxied requests in flight")
        self.m_replicas_up = m.gauge("m3d_route_replicas_up", "replicas in the up state")
        self.m_replicas_up.set(len(self.replicas))
        # Federation scraper for GET /router/fleet: the router contributes
        # its own registry in-process; replicas are polled over HTTP.
        self.fleet = FleetScraper(
            members=[r.key for r in self.replicas],
            timeout_s=self.policy.probe_timeout_s,
            router_metrics_fn=self.metrics.to_json_dict,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._prober is None and self.policy.probe_interval_s is not None:
            self._prober = threading.Thread(
                target=self._probe_loop, name="m3d-route-prober", daemon=True
            )
            self._prober.start()

    def close(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(timeout=5.0)

    def begin_drain(self) -> None:
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def await_drain(self, deadline_s: float = 10.0) -> None:
        """Block until in-flight proxied requests hit zero (or deadline)."""
        deadline = Deadline.after(deadline_s)
        while self.m_inflight.value > 0 and not deadline.expired():
            time.sleep(0.005)

    # -- health ------------------------------------------------------------

    def _probe_loop(self) -> None:
        interval = self.policy.probe_interval_s or 0.5
        while not self._stop.wait(interval):
            try:
                for replica in self.replicas:
                    if self._stop.is_set():
                        return
                    state = replica.state
                    if state == REPLICA_EJECTED:
                        continue  # cooldown not matured; nothing to learn yet
                    if state == REPLICA_HALF_OPEN and not replica.admit():
                        continue  # a live request already claimed the trial
                    self.m_probes.inc()
                    if self._probe(replica):
                        replica.record_success()
                    else:
                        self.m_probe_failures.inc()
                        replica.record_failure()
                self.m_replicas_up.set(
                    sum(1 for r in self.replicas if r.state == REPLICA_UP)
                )
            except Exception:
                # A prober that dies silently stops readmitting replicas.
                log.exception("probe_iteration_failed")

    def _probe(self, replica: Replica) -> bool:
        conn = http.client.HTTPConnection(
            replica.host, replica.port, timeout=self.policy.probe_timeout_s
        )
        try:
            # A stable synthetic prefix keeps probe traffic distinguishable
            # from user traffic in replica logs and stitch output.
            probe_id = f"{PROBE_TRACE_PREFIX}{new_trace_id()}"
            conn.request("GET", "/healthz", headers={TRACE_HEADER: probe_id})
            response = conn.getresponse()
            response.read()
            # 200 covers ok *and* degraded: a degraded replica still serves.
            return response.status == 200
        except (OSError, http.client.HTTPException):
            return False
        finally:
            conn.close()

    def health_snapshot(self) -> dict[str, Any]:
        """Router-level health: ``ok`` / ``degraded-k-of-n`` / ``unhealthy``."""
        workers = [r.snapshot() for r in self.replicas]
        up = sum(1 for w in workers if w["state"] == REPLICA_UP)
        n = len(workers)
        if up == 0:
            status = "unhealthy"
        elif up < n:
            status = f"degraded-{up}-of-{n}"
        else:
            status = "ok"
        if self._draining:
            status = "draining"
        return {
            "status": status,
            "replicas": workers,
            "inflight": self.m_inflight.value,
            "draining": self._draining,
        }

    # -- routing -----------------------------------------------------------

    @staticmethod
    def routing_key(method: str, path: str, body: bytes | None) -> str:
        """Body digest when there is one (payload affinity), path otherwise."""
        if body:
            return hashlib.sha256(body).hexdigest()
        return f"{method} {path}"

    @staticmethod
    def is_idempotent(method: str, path: str) -> bool:
        clean = urlparse(path).path
        return method in ("GET", "HEAD") or (method == "POST" and clean in _IDEMPOTENT_POSTS)

    def _deadline_for(self, headers: dict[str, str]) -> Deadline:
        raw = headers.get(DEADLINE_HEADER)
        if raw is not None:
            try:
                budget_ms = float(raw)
                if budget_ms > 0:
                    return Deadline.after(budget_ms / 1e3)
            except (TypeError, ValueError):
                pass  # malformed deadline: the replica will reject it with a 400
        return Deadline.after(self.policy.default_deadline_s)

    def dispatch(
        self, method: str, path: str, body: bytes | None, headers: dict[str, str]
    ) -> RoutedResponse:
        """Route one request: preference-list walk, bounded jittered retries.

        Every admitted request resolves — to a replica's response, to the
        last replica 5xx seen, to a 504 when the deadline expires before an
        attempt can be made, or to a structured 502 when every replica is
        unreachable. Nothing is silently dropped.

        When a tracer is attached, each request emits a ``route`` trace
        (route decision, per-attempt upstream calls, backoff, failover) to
        the same trace id forwarded downstream, so ``m3d-obs stitch`` can
        join the router's view with the replicas'.
        """
        trace_ctx = self.tracer.trace("route", method=method, path=urlparse(path).path)
        trace_id = getattr(trace_ctx, "trace_id", "")
        if trace_id and not headers.get(TRACE_HEADER):
            # Stamp the id the router is tracing under onto the upstream
            # request, so the replica's trace joins ours in `m3d-obs stitch`
            # even when the client never sent one.
            headers = {**headers, TRACE_HEADER: trace_id}
        with trace_ctx:
            response = self._dispatch(trace_id, method, path, body, headers)
            self.tracer.annotate(
                trace_id,
                status=response.status,
                replica=response.replica,
                attempts=response.attempts,
            )
            return response

    def _dispatch(
        self,
        trace_id: str,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
    ) -> RoutedResponse:
        self.m_requests.inc()
        deadline = self._deadline_for(headers)
        idempotent = self.is_idempotent(method, path)
        t0 = time.perf_counter()
        preference = self.ring.preference(self.routing_key(method, path, body))
        self.tracer.record(
            trace_id,
            "route_decision",
            time.perf_counter() - t0,
            owner=preference[0],
            candidates=len(preference),
        )
        backoff = ExponentialBackoff(
            base_s=self.policy.backoff.base_s,
            factor=self.policy.backoff.factor,
            max_s=self.policy.backoff.max_s,
        )
        attempts = 0
        last: RoutedResponse | None = None
        self.m_inflight.inc()
        try:
            for rank, key in enumerate(preference):
                if attempts >= self.policy.max_attempts:
                    break
                if deadline.expired():
                    return self._deadline_response(attempts)
                replica = self._by_key[key]
                if not replica.admit():
                    continue
                if attempts > 0:
                    self.m_retries.inc()
                    delay = jittered(backoff.next_delay())
                    time.sleep(delay)
                    self.tracer.record(
                        trace_id, "retry_backoff", delay, attempt=attempts + 1
                    )
                attempts += 1
                t_attempt = time.perf_counter()
                kind, result = self._attempt(replica, method, path, body, headers, deadline)
                outcome = result.status if isinstance(result, RoutedResponse) else kind
                self.tracer.record(
                    trace_id,
                    "upstream_attempt",
                    time.perf_counter() - t_attempt,
                    replica=replica.key,
                    rank=rank,
                    attempt=attempts,
                    outcome=outcome,
                )
                if kind == "response":
                    assert isinstance(result, RoutedResponse)
                    result.attempts = attempts
                    if result.status in _FAILOVER_STATUSES:
                        replica.record_failure()
                        last = result
                        if not idempotent:
                            return result
                        continue  # try the next replica in preference order
                    replica.record_success()
                    if rank > 0:
                        self.m_failovers.inc()
                        self.tracer.record(
                            trace_id,
                            "failover",
                            0.0,
                            owner=preference[0],
                            served_by=replica.key,
                            rank=rank,
                        )
                    return result
                replica.record_failure()
                log.warning(
                    "replica_attempt_failed",
                    replica=replica.key,
                    phase=kind,
                    error=str(result),
                    attempt=attempts,
                )
                if kind == "send" and not idempotent:
                    # The replica may have executed the request; replaying a
                    # non-idempotent call could double-apply it.
                    return RoutedResponse(
                        status=502,
                        headers={"Content-Type": "application/json"},
                        body=self._error_body(
                            "replica_failed",
                            f"replica {replica.key} failed mid-request "
                            "(not retried: non-idempotent)",
                        ),
                        replica=replica.key,
                        attempts=attempts,
                    )
            if last is not None:
                return last  # best answer we have: the final replica 5xx
            self.m_no_replica.inc()
            return RoutedResponse(
                status=502,
                headers={"Content-Type": "application/json"},
                body=self._error_body(
                    "no_replica_available",
                    f"all {len(self.replicas)} replicas unreachable or ejected",
                ),
                replica=None,
                attempts=attempts,
            )
        finally:
            self.m_inflight.dec()

    def _attempt(
        self,
        replica: Replica,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        deadline: Deadline,
    ) -> tuple[str, RoutedResponse | BaseException]:
        """One try against one replica.

        Returns ``("response", RoutedResponse)`` on any HTTP response,
        ``("connect", exc)`` when the TCP connect failed (nothing sent —
        always safe to retry), or ``("send", exc)`` when the failure came
        after the request may have reached the replica (retry only if
        idempotent). The explicit ``connect()`` call is what makes the
        distinction trustworthy.
        """
        timeout = min(self.policy.attempt_timeout_s, max(0.001, deadline.remaining()))
        conn = http.client.HTTPConnection(replica.host, replica.port, timeout=timeout)
        try:
            try:
                conn.connect()
            except (OSError, http.client.HTTPException) as exc:
                return ("connect", exc)
            fwd = {k: v for k, v in headers.items() if k in _FORWARD_REQUEST_HEADERS}
            fwd[DEADLINE_HEADER] = str(max(1, int(deadline.remaining() * 1e3)))
            try:
                conn.request(method, path, body=body, headers=fwd)
                response = conn.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException) as exc:
                return ("send", exc)
            relayed = {
                name: value
                for name, value in response.getheaders()
                if name in _RELAY_RESPONSE_HEADERS
            }
            relayed[REPLICA_HEADER] = replica.key
            return (
                "response",
                RoutedResponse(
                    status=response.status,
                    headers=relayed,
                    body=payload,
                    replica=replica.key,
                    attempts=0,  # dispatch() stamps the true count
                ),
            )
        finally:
            conn.close()

    def _deadline_response(self, attempts: int) -> RoutedResponse:
        return RoutedResponse(
            status=504,
            headers={"Content-Type": "application/json"},
            body=self._error_body("deadline_exceeded", "deadline expired before routing"),
            replica=None,
            attempts=attempts,
        )

    @staticmethod
    def _error_body(error: str, detail: str) -> bytes:
        payload = {"error": error, "detail": detail}
        trace_id = current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return json.dumps(payload).encode()


class RouterHTTPServer(ThreadingHTTPServer):
    """Threaded front for a :class:`ReplicaRouter`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], router: ReplicaRouter):
        super().__init__(address, _RouterHandler)
        self.router = router

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class _RouterHandler(BaseHTTPRequestHandler):
    server_version = "m3d-route/0.1"
    protocol_version = "HTTP/1.1"
    server: RouterHTTPServer

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("router_access", client=self.address_string(), line=format % args)

    def _send(self, response: RoutedResponse) -> None:
        self.send_response(response.status)
        headers = dict(response.headers)
        headers.setdefault("Content-Type", "application/json")
        headers[ATTEMPTS_HEADER] = str(response.attempts)
        trace_id = current_trace_id()
        if trace_id is not None:
            headers.setdefault(TRACE_HEADER, trace_id)
        headers["Content-Length"] = str(len(response.body))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        self._send(
            RoutedResponse(
                status=status,
                headers={"Content-Type": "application/json"},
                body=json.dumps(payload).encode(),
                replica=None,
                attempts=0,
            )
        )

    def _handle(self, method: str) -> None:
        router = self.server.router
        path = urlparse(self.path).path
        if path == "/router/healthz":
            health = router.health_snapshot()
            status = 200 if health["status"] == "ok" or health["status"].startswith(
                "degraded"
            ) else 503
            self._send_json(status, health)
            return
        if path == "/router/metrics":
            self._send_json(200, router.metrics.to_json_dict())
            return
        if path == "/router/fleet":
            self._send_json(200, router.fleet.scrape())
            return
        if router.draining:
            self._send_json(503, {"error": "draining", "detail": "router is draining"})
            return
        body: bytes | None = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            body = self.rfile.read(length)
        headers = {k: v for k, v in self.headers.items()}
        response = router.dispatch(method, self.path, body, headers)
        self._send(response)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        trace_id = sanitize_trace_id(self.headers.get(TRACE_HEADER)) or new_trace_id()
        with _trace_context(trace_id):
            self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        trace_id = sanitize_trace_id(self.headers.get(TRACE_HEADER)) or new_trace_id()
        with _trace_context(trace_id):
            self._handle("POST")


def create_router_server(
    router: ReplicaRouter, host: str = "127.0.0.1", port: int = 0
) -> RouterHTTPServer:
    """Bind the router front (``port=0`` → ephemeral) and start its prober."""
    server = RouterHTTPServer((host, port), router)
    router.start()
    return server

"""Versioned model registry with checksums, manifests, and hot activation.

On-disk layout (everything human-inspectable JSON + ``.npz``)::

    <root>/
      ACTIVE                          # {"name": ..., "version": ...}
      models/<name>/<version>/
        model.npz                     # DelayFaultLocalizer artifact
        manifest.json                 # checksum + dims + metadata

Artifacts are immutable once published: every load re-hashes ``model.npz``
against the manifest's SHA-256 and refuses to serve a corrupted or tampered
file. The ``ACTIVE`` pointer is swapped atomically (write-then-rename), so a
serving process polling :meth:`ModelRegistry.active_ref` either sees the old
model or the new one, never a torn state — that is the whole hot-reload
protocol.

Two hardening behaviors on top of the checksum refusal:

- **Quarantine** — a version that fails checksum verification is *moved*
  to ``<root>/quarantine/<name>/<version>`` before the error propagates, so
  a corrupt artifact can never be re-verified into activation later and the
  evidence is preserved for forensics instead of being overwritten.
- **Transient-I/O retry** — reads retry with exponential backoff on
  ``OSError`` (NFS blips, slow volume attach), so a hot reload does not
  fall over on a one-off filesystem hiccup. ``io_fault_hook`` is the chaos
  injection point: it runs before every read attempt.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Callable
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, TypeVar

from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.resilience import ExponentialBackoff, retry_with_backoff

_MODEL_FILE = "model.npz"
_MANIFEST_FILE = "manifest.json"
_ACTIVE_FILE = "ACTIVE"
_QUARANTINE_DIR = "quarantine"

_T = TypeVar("_T")


class ModelRegistryError(RuntimeError):
    """Registry invariant broken: missing artifact, checksum mismatch, …"""


@dataclass(frozen=True)
class ModelManifest:
    """Immutable description of one published model version."""

    name: str
    version: str
    sha256: str
    size_bytes: int
    created_at: float
    in_dim: int
    hidden: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> ModelManifest:
        return cls(**payload)


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _safe_component(value: str, what: str) -> str:
    if not value or value != Path(value).name or value.startswith("."):
        raise ModelRegistryError(f"invalid {what}: {value!r} (must be a bare path component)")
    return value


class ModelRegistry:
    """Filesystem-backed registry of versioned localizer artifacts."""

    def __init__(self, root: str | Path, io_attempts: int = 3, io_backoff_s: float = 0.05):
        if io_attempts < 1:
            raise ModelRegistryError(f"io_attempts must be >= 1, got {io_attempts}")
        self.root = Path(root)
        self.io_attempts = io_attempts
        self.io_backoff_s = io_backoff_s
        #: Chaos injection point: called before every retryable read attempt.
        self.io_fault_hook: Callable[[], None] | None = None
        (self.root / "models").mkdir(parents=True, exist_ok=True)

    def _io(self, fn: Callable[[], _T]) -> _T:
        """Run one read through the transient-failure retry policy."""

        def attempt() -> _T:
            if self.io_fault_hook is not None:
                self.io_fault_hook()
            return fn()

        return retry_with_backoff(
            attempt,
            attempts=self.io_attempts,
            backoff=ExponentialBackoff(base_s=self.io_backoff_s),
            retryable=(OSError,),
        )

    # -- publishing --------------------------------------------------------

    def publish(
        self,
        model: DelayFaultLocalizer,
        name: str = "localizer",
        version: str | None = None,
        metadata: dict[str, Any] | None = None,
        activate: bool = True,
    ) -> ModelManifest:
        """Write a new immutable version; optionally point ``ACTIVE`` at it."""
        name = _safe_component(name, "model name")
        if version is None:
            version = f"v{len(self.list_versions(name)) + 1:04d}"
        version = _safe_component(version, "version")
        version_dir = self.root / "models" / name / version
        if version_dir.exists():
            raise ModelRegistryError(f"version already published: {name}/{version}")
        version_dir.mkdir(parents=True)

        model_path = model.save(version_dir / _MODEL_FILE, metadata=metadata)
        manifest = ModelManifest(
            name=name,
            version=version,
            sha256=_sha256_file(model_path),
            size_bytes=model_path.stat().st_size,
            created_at=time.time(),
            in_dim=model.in_dim,
            hidden=model.hidden,
            metadata=dict(metadata or {}),
        )
        (version_dir / _MANIFEST_FILE).write_text(json.dumps(manifest.to_json_dict(), indent=2))
        if activate:
            self.activate(name, version)
        return manifest

    # -- introspection -----------------------------------------------------

    def list_models(self) -> list[str]:
        return sorted(p.name for p in (self.root / "models").iterdir() if p.is_dir())

    def list_versions(self, name: str) -> list[str]:
        model_dir = self.root / "models" / name
        if not model_dir.is_dir():
            return []
        return sorted(p.name for p in model_dir.iterdir() if (p / _MANIFEST_FILE).is_file())

    def manifest(self, name: str, version: str) -> ModelManifest:
        path = self.root / "models" / name / version / _MANIFEST_FILE
        if not path.is_file():
            raise ModelRegistryError(f"no such model version: {name}/{version}")
        return ModelManifest.from_json_dict(json.loads(self._io(path.read_text)))

    def verify(self, name: str, version: str) -> ModelManifest:
        """Re-hash the artifact against its manifest; raise on any mismatch.

        A mismatched version is quarantined (moved out of ``models/``)
        before the error propagates, so it can never pass a later
        verification or be activated.
        """
        manifest = self.manifest(name, version)
        model_path = self.root / "models" / name / version / _MODEL_FILE
        if not model_path.is_file():
            raise ModelRegistryError(f"artifact missing for {name}/{version}: {model_path}")
        actual = self._io(lambda: _sha256_file(model_path))
        if actual != manifest.sha256:
            quarantined = self._quarantine(name, version)
            raise ModelRegistryError(
                f"checksum mismatch for {name}/{version}: "
                f"manifest {manifest.sha256[:12]}…, file {actual[:12]}… "
                f"(version quarantined to {quarantined})"
            )
        return manifest

    # -- quarantine --------------------------------------------------------

    def _quarantine(self, name: str, version: str) -> Path:
        """Move a failed version out of ``models/``; keep the evidence."""
        src = self.root / "models" / name / version
        dest_dir = self.root / _QUARANTINE_DIR / name
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / version
        suffix = 1
        while dest.exists():
            suffix += 1
            dest = dest_dir / f"{version}-{suffix}"
        os.replace(src, dest)
        return dest

    def list_quarantined(self) -> list[tuple[str, str]]:
        """All quarantined ``(name, version)`` pairs, sorted."""
        quarantine = self.root / _QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(
            (model_dir.name, version_dir.name)
            for model_dir in quarantine.iterdir()
            if model_dir.is_dir()
            for version_dir in model_dir.iterdir()
            if version_dir.is_dir()
        )

    # -- activation / hot reload ------------------------------------------

    def activate(self, name: str, version: str) -> None:
        """Atomically point ``ACTIVE`` at an existing, verified version.

        ``verify()`` runs (and quarantines on mismatch) *before* the pointer
        flip — a tampered artifact can never become ACTIVE.
        """
        self.verify(name, version)
        tmp = self.root / (_ACTIVE_FILE + ".tmp")
        tmp.write_text(json.dumps({"name": name, "version": version}))
        os.replace(tmp, self.root / _ACTIVE_FILE)

    def active_ref(self) -> tuple[str, str] | None:
        """Current ``(name, version)`` pointer, or ``None`` before first
        activation. Cheap enough to poll on every micro-batch."""
        path = self.root / _ACTIVE_FILE
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        return (payload["name"], payload["version"])

    def load(self, name: str, version: str) -> tuple[DelayFaultLocalizer, ModelManifest]:
        """Load a verified artifact (checksum enforced before deserializing)."""
        manifest = self.verify(name, version)
        model_path = self.root / "models" / name / version / _MODEL_FILE
        model = self._io(lambda: DelayFaultLocalizer.load(model_path))
        return model, manifest

    def load_active(self) -> tuple[DelayFaultLocalizer, ModelManifest]:
        ref = self.active_ref()
        if ref is None:
            raise ModelRegistryError(f"registry at {self.root} has no active model")
        return self.load(*ref)

"""Inference serving subsystem: registry, micro-batched service, HTTP API.

Layers, bottom up:

- :mod:`m3d_fault_loc.serve.cache` — content-hash LRU result cache keyed on
  a canonical graph digest, so repeated queries of the same netlist are
  answered without a forward pass.
- :mod:`m3d_fault_loc.serve.metrics` — counters / gauges / latency
  histograms, exported as JSON and Prometheus text.
- :mod:`m3d_fault_loc.serve.registry` — versioned ``.npz`` model artifacts
  with checksums and metadata, plus an activation pointer the service
  hot-reloads from.
- :mod:`m3d_fault_loc.serve.service` — :class:`LocalizationService`: a
  thread-safe request queue micro-batching graphs through
  ``DelayFaultLocalizer.predict_batch``, with every request gated by the
  m3dlint contract engine (ERROR findings reject, never a wrong answer).
- :mod:`m3d_fault_loc.serve.resilience` — deadlines, load shedding,
  circuit breaker, health state machine, and retry/backoff policies that
  make every failure mode explicit, bounded, and observable.
- :mod:`m3d_fault_loc.serve.server` — stdlib ``http.server`` JSON API
  (``POST /localize``, ``GET /healthz``, ``GET /metrics``, ``GET /model``).
"""

from m3d_fault_loc.serve.cache import LRUResultCache, graph_digest
from m3d_fault_loc.serve.metrics import MetricsRegistry
from m3d_fault_loc.serve.registry import ModelManifest, ModelRegistry, ModelRegistryError
from m3d_fault_loc.serve.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    HealthMonitor,
    LoadSheddedError,
    ServiceDrainingError,
    WorkerCrashedError,
)
from m3d_fault_loc.serve.service import LocalizationResult, LocalizationService
from m3d_fault_loc.serve.server import create_server

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "HealthMonitor",
    "LRUResultCache",
    "LoadSheddedError",
    "LocalizationResult",
    "LocalizationService",
    "MetricsRegistry",
    "ModelManifest",
    "ModelRegistry",
    "ModelRegistryError",
    "ServiceDrainingError",
    "WorkerCrashedError",
    "create_server",
    "graph_digest",
]

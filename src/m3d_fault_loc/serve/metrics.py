"""Serving metrics: counters, gauges, and latency histograms.

A deliberately tiny, dependency-free subset of the Prometheus client model:
instruments are registered by name on a :class:`MetricsRegistry`, updated
with per-instrument locks, and exported two ways — ``to_json_dict()`` for
programmatic consumers and ``render_prometheus()`` for scrapers (text
exposition format, cumulative histogram buckets with ``+Inf``).
"""

from __future__ import annotations

import threading
from typing import Any

#: Default latency buckets in seconds (sub-ms to multi-second tail).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default buckets for batch-size style small-integer histograms.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _fmt(value: float) -> str:
    """Prometheus-friendly number formatting (integers without a dot)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_json_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help_text, "value": self.value}

    def render_prometheus(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Gauge:
    """Point-in-time value (queue depth, cache size)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_json_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help_text, "value": self.value}

    def render_prometheus(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class StateGauge:
    """One-hot enum gauge: exactly one of a fixed state set is 1 at a time.

    Renders Prometheus-idiomatically as one ``name{state="..."}`` series per
    state (TYPE gauge), so dashboards can plot breaker/health transitions
    without string-valued metrics.
    """

    kind = "state_gauge"
    prom_type = "gauge"

    def __init__(self, name: str, help_text: str, states: tuple[str, ...]):
        if not states or len(set(states)) != len(states):
            raise ValueError(f"state gauge {name} needs a non-empty, unique state set")
        self.name = name
        self.help_text = help_text
        self.states = tuple(states)
        self._state = self.states[0]
        self._lock = threading.Lock()

    def set_state(self, state: str) -> None:
        if state not in self.states:
            raise ValueError(f"{self.name}: unknown state {state!r} (have {self.states})")
        with self._lock:
            self._state = state

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help_text,
            "state": self.state,
            "states": list(self.states),
        }

    def render_prometheus(self) -> list[str]:
        current = self.state
        return [
            f'{self.name}{{state="{state}"}} {1 if state == current else 0}'
            for state in self.states
        ]


class Histogram:
    """Cumulative-bucket histogram with sum and count (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, buckets: tuple[float, ...]):
        # Strictly increasing, not merely sorted: a duplicate bound would
        # collapse two buckets onto one `le=` label and corrupt the
        # cumulative counts in both snapshot() and the text exposition.
        if not buckets or any(a >= b for a, b in zip(buckets, buckets[1:])):
            raise ValueError(f"histogram {name} needs strictly increasing, non-empty buckets")
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(float(b) for b in buckets)
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate (Prometheus-style).

        Returns 0.0 for an empty histogram, the mean (``sum/count``) for a
        single observation — the best point estimate a bucketed histogram
        can give — and, when the target rank lands past the last finite
        bucket, the last finite bound (no upper edge to interpolate toward).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if self._count == 1:
                return self._sum
            target = (q / 100.0) * self._count
            cumulative = 0
            for i, n in enumerate(self._bucket_counts):
                cumulative += n
                if cumulative >= target and n > 0:
                    lo = self.buckets[i - 1] if i > 0 else 0.0
                    hi = self.buckets[i]
                    frac = (target - (cumulative - n)) / n
                    return lo + max(0.0, min(1.0, frac)) * (hi - lo)
            return self.buckets[-1]

    def snapshot(self) -> dict[str, Any]:
        """Cumulative bucket counts keyed by upper bound, plus sum/count."""
        with self._lock:
            cumulative = 0
            buckets: dict[str, int] = {}
            for bound, n in zip(self.buckets, self._bucket_counts, strict=True):
                cumulative += n
                buckets[_fmt(bound)] = cumulative
            buckets["+Inf"] = self._count
            return {"buckets": buckets, "sum": self._sum, "count": self._count}

    def merge(self, other: Histogram) -> None:
        """Fold ``other``'s observations into this histogram, in place.

        Both histograms must share identical bucket bounds — merging across
        mismatched bounds would silently misplace counts, so it raises
        instead. Used by metrics federation to bucket-merge per-replica
        latency histograms into one fleet histogram whose percentiles stay
        meaningful.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ ({other.buckets} vs {self.buckets})"
            )
        # Snapshot the source first: taking both locks at once would impose
        # a lock order between arbitrary histogram pairs (M3D304 territory).
        snap = other.snapshot()
        per_bucket = self._per_bucket_counts(snap["buckets"], other.buckets)
        with self._lock:
            for i, n in enumerate(per_bucket):
                self._bucket_counts[i] += n
            self._sum += snap["sum"]
            self._count += snap["count"]

    @classmethod
    def from_snapshot(cls, name: str, snap: dict[str, Any], help_text: str = "") -> Histogram:
        """Rebuild a histogram from a :meth:`snapshot` (or ``/metrics`` JSON).

        Snapshots carry **cumulative** bucket counts; feeding those directly
        into per-bucket storage would inflate every bucket after the first
        occupied one (and make leading zero-count buckets look occupied once
        merged), so they are differenced back to per-bucket counts here —
        the percentile interpolation then behaves identically to a
        directly-observed histogram.
        """
        bucket_snap = snap.get("buckets") or {}
        bounds = tuple(float(key) for key in bucket_snap if key != "+Inf")
        if not bounds:
            raise ValueError(f"histogram snapshot for {name!r} has no finite buckets")
        histogram = cls(name, help_text, buckets=bounds)
        per_bucket = histogram._per_bucket_counts(bucket_snap, bounds)
        histogram._bucket_counts = per_bucket
        histogram._sum = float(snap.get("sum", 0.0))
        histogram._count = int(snap.get("count", 0))
        return histogram

    @staticmethod
    def _per_bucket_counts(
        bucket_snap: dict[str, int], bounds: tuple[float, ...]
    ) -> list[int]:
        """Difference a snapshot's cumulative counts into per-bucket counts."""
        per_bucket: list[int] = []
        previous = 0
        for bound in bounds:
            cumulative = int(bucket_snap[_fmt(bound)])
            if cumulative < previous:
                raise ValueError(
                    f"histogram snapshot is not cumulative at le={_fmt(bound)}: "
                    f"{cumulative} < {previous}"
                )
            per_bucket.append(cumulative - previous)
            previous = cumulative
        return per_bucket

    def to_json_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help_text, **self.snapshot()}

    def render_prometheus(self) -> list[str]:
        snap = self.snapshot()
        lines = [
            f'{self.name}_bucket{{le="{bound}"}} {count}'
            for bound, count in snap["buckets"].items()
        ]
        lines.append(f"{self.name}_sum {_fmt(snap['sum'])}")
        lines.append(f"{self.name}_count {snap['count']}")
        return lines


class MetricsRegistry:
    """Named instrument registry with JSON and Prometheus-text export.

    Registration is idempotent per name — asking for an existing instrument
    returns it — but re-registering a name as a different instrument kind is
    a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | StateGauge | Histogram] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, factory, kind: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, not {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help_text), "counter")

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help_text), "gauge")

    def state_gauge(
        self, name: str, help_text: str = "", states: tuple[str, ...] = ()
    ) -> StateGauge:
        return self._register(name, lambda: StateGauge(name, help_text, states), "state_gauge")

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(name, lambda: Histogram(name, help_text, buckets), "histogram")

    def to_json_dict(self) -> dict[str, Any]:
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.to_json_dict() for name, inst in sorted(instruments.items())}

    def render_prometheus(self) -> str:
        with self._lock:
            instruments = dict(self._instruments)
        lines: list[str] = []
        for name, inst in sorted(instruments.items()):
            if inst.help_text:
                lines.append(f"# HELP {name} {inst.help_text}")
            lines.append(f"# TYPE {name} {getattr(inst, 'prom_type', inst.kind)}")
            lines.extend(inst.render_prometheus())
        return "\n".join(lines) + "\n"

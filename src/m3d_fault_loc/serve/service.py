"""Micro-batched localization service with contract gating and hot reload.

Request path: callers (one per HTTP connection thread) gate their graph
through the m3dlint contract engine — ERROR findings raise
:class:`~m3d_fault_loc.data.dataset.GraphContractError` and never reach the
model — then look up the content-hash cache and, on a miss, enqueue the
graph on a thread-safe queue. A single worker thread drains the queue into
micro-batches (up to ``max_batch`` graphs or ``batch_window_s`` of waiting,
whichever first), runs one stacked ``node_scores_batch`` forward pass, and
resolves the per-request futures.

The registry's activation pointer is polled at request entry and between
batches: swapping ``ACTIVE`` in the registry hot-reloads the model without
dropping requests. Cache keys are prefixed with the model fingerprint and the
reload check runs before the cache lookup, so results computed by a previous
model are unreachable after a reload (the cache is also cleared to free the
memory).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from m3d_fault_loc.analysis.engine import RuleEngine, default_engine
from m3d_fault_loc.data.dataset import GraphContractError, gate_graph
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.cache import LRUResultCache, graph_digest
from m3d_fault_loc.serve.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from m3d_fault_loc.serve.registry import ModelManifest, ModelRegistry


@dataclass(frozen=True)
class LocalizationResult:
    """One served localization: ranked fault-origin candidates + provenance."""

    graph_name: str
    digest: str
    model_name: str
    model_version: str
    num_nodes: int
    top: tuple[dict[str, Any], ...]
    warnings: tuple[str, ...]
    cached: bool = False
    latency_s: float = 0.0

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "digest": self.digest,
            "model": {"name": self.model_name, "version": self.model_version},
            "num_nodes": self.num_nodes,
            "top": [dict(entry) for entry in self.top],
            "warnings": list(self.warnings),
            "cached": self.cached,
            "latency_ms": round(self.latency_s * 1e3, 3),
        }


@dataclass
class _Pending:
    graph: CircuitGraph
    digest: str
    top_k: int
    warnings: tuple[str, ...]
    future: Future = field(default_factory=Future)


class LocalizationService:
    """Thread-safe, micro-batched front end over :class:`DelayFaultLocalizer`.

    Exactly one of ``model`` (fixed ad-hoc artifact) or ``registry``
    (versioned artifacts + hot reload of the active version) must be given.
    """

    def __init__(
        self,
        model: DelayFaultLocalizer | None = None,
        registry: ModelRegistry | None = None,
        engine: RuleEngine | None = None,
        cache_size: int = 1024,
        max_batch: int = 16,
        batch_window_s: float = 0.005,
        request_timeout_s: float = 30.0,
        metrics: MetricsRegistry | None = None,
    ):
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.request_timeout_s = request_timeout_s
        self._engine = engine or default_engine()
        self._cache = LRUResultCache(capacity=cache_size)
        self._queue: queue.Queue[_Pending | None] = queue.Queue()
        self._worker: threading.Thread | None = None
        self._start_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._closed = False

        self.metrics = metrics or MetricsRegistry()
        m = self.metrics
        self.m_requests = m.counter("m3d_requests_total", "localization requests received")
        self.m_cache_hits = m.counter(
            "m3d_cache_hits_total", "requests served from the result cache"
        )
        self.m_rejections = m.counter(
            "m3d_contract_rejections_total", "requests rejected by the m3dlint contract gate"
        )
        self.m_errors = m.counter("m3d_request_errors_total", "requests failed inside the worker")
        self.m_forward_passes = m.counter(
            "m3d_forward_passes_total", "micro-batched model forward passes executed"
        )
        self.m_graphs = m.counter("m3d_graphs_localized_total", "graphs run through the model")
        self.m_reloads = m.counter("m3d_model_reloads_total", "hot reloads of the active model")
        self.m_queue_depth = m.gauge("m3d_queue_depth", "requests waiting in the batch queue")
        self.m_batch_size = m.histogram(
            "m3d_batch_size", "graphs per forward pass", buckets=DEFAULT_SIZE_BUCKETS
        )
        self.m_latency = m.histogram(
            "m3d_request_latency_seconds", "end-to-end localization latency"
        )

        if registry is not None:
            loaded, manifest = registry.load_active()
            self._active_ref: tuple[str, str] | None = (manifest.name, manifest.version)
            self._install_model(loaded, manifest)
        else:
            assert model is not None
            self._active_ref = None
            self._install_model(model, None)

    # -- model identity ----------------------------------------------------

    def _install_model(self, model: DelayFaultLocalizer, manifest: ModelManifest | None) -> None:
        if manifest is not None:
            info = {"source": "registry", **manifest.to_json_dict()}
            prefix = manifest.sha256
        else:
            fingerprint = model.fingerprint()
            info = {
                "source": "adhoc",
                "name": "adhoc",
                "version": fingerprint[:12],
                "sha256": fingerprint,
                "in_dim": model.in_dim,
                "hidden": model.hidden,
                "metadata": dict(model.artifact_meta),
            }
            prefix = fingerprint
        # Single-attribute swap keeps (model, info, cache prefix) consistent
        # for readers on other threads without a lock.
        self._model_state: tuple[DelayFaultLocalizer, dict[str, Any], str] = (model, info, prefix)

    def describe_model(self) -> dict[str, Any]:
        """Identity of the model currently answering requests (``/model``)."""
        return dict(self._model_state[1])

    def cache_stats(self) -> dict[str, int]:
        return self._cache.stats()

    def _maybe_reload(self) -> None:
        """Swap in the registry's active model if the pointer moved.

        Runs at request entry (before the cache lookup, so a swap can never
        serve a previous model's cached answer) and again in the worker
        between batches. ``active_ref`` is one small-file read — cheap enough
        to poll per request.
        """
        if self.registry is None:
            return
        ref = self.registry.active_ref()
        if ref is None or ref == self._active_ref:
            return
        with self._reload_lock:
            if ref == self._active_ref:
                return
            model, manifest = self.registry.load(*ref)
            self._install_model(model, manifest)
            self._active_ref = ref
            self._cache.clear()
            self.m_reloads.inc()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        with self._start_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._worker_loop, name="m3d-localize-worker", daemon=True
                )
                self._worker.start()

    def close(self) -> None:
        with self._start_lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        if worker is not None:
            self._queue.put(None)
            worker.join(timeout=5.0)

    def __enter__(self) -> LocalizationService:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request path ------------------------------------------------------

    def localize(self, graph: CircuitGraph, top_k: int = 5) -> LocalizationResult:
        """Gate, cache-check, and (on a miss) batch one graph through the model.

        Raises :class:`~m3d_fault_loc.data.dataset.GraphContractError` when
        the contract gate finds ERROR-severity violations — a structured
        rejection is always preferable to localizing a malformed graph.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if self._closed:
            raise RuntimeError("service is closed")
        self.start()
        started = time.perf_counter()
        self.m_requests.inc()
        try:
            warnings = gate_graph(graph, self._engine)
        except GraphContractError:
            self.m_rejections.inc()
            raise
        self._maybe_reload()
        digest = graph_digest(graph)
        _, _, prefix = self._model_state
        key = f"{prefix}:{top_k}:{digest}"
        hit = self._cache.get(key)
        if hit is not None:
            self.m_cache_hits.inc()
            latency = time.perf_counter() - started
            self.m_latency.observe(latency)
            return replace(hit, cached=True, latency_s=latency)

        pending = _Pending(
            graph=graph,
            digest=digest,
            top_k=top_k,
            warnings=tuple(v.render() for v in warnings),
        )
        self._queue.put(pending)
        self.m_queue_depth.set(self._queue.qsize())
        try:
            result: LocalizationResult = pending.future.result(timeout=self.request_timeout_s)
        except Exception:
            self.m_errors.inc()
            raise
        latency = time.perf_counter() - started
        self.m_latency.observe(latency)
        return replace(result, latency_s=latency)

    # -- worker ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = time.monotonic() + self.batch_window_s
            stopping = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            self.m_queue_depth.set(self._queue.qsize())
            self._maybe_reload()
            self._run_batch(batch)
            if stopping:
                return

    def _run_batch(self, batch: list[_Pending]) -> None:
        model, info, prefix = self._model_state
        try:
            scores_per_graph = model.node_scores_batch([p.graph for p in batch])
        except Exception as exc:
            for p in batch:
                p.future.set_exception(exc)
            return
        self.m_forward_passes.inc()
        self.m_batch_size.observe(len(batch))
        self.m_graphs.inc(len(batch))
        for p, scores in zip(batch, scores_per_graph, strict=True):
            result = self._build_result(p, scores, info)
            self._cache.put(f"{prefix}:{p.top_k}:{p.digest}", result)
            p.future.set_result(result)

    @staticmethod
    def _build_result(
        pending: _Pending, scores: np.ndarray, info: dict[str, Any]
    ) -> LocalizationResult:
        graph = pending.graph
        order = np.argsort(scores)[::-1][: pending.top_k]
        shifted = scores - scores.max()
        probs = np.exp(shifted)
        probs /= probs.sum()
        top = tuple(
            {
                "index": int(i),
                "node": graph.node_names[int(i)],
                "tier": int(graph.tier[int(i)]),
                "score": float(scores[int(i)]),
                "prob": float(probs[int(i)]),
            }
            for i in order
        )
        return LocalizationResult(
            graph_name=graph.name,
            digest=pending.digest,
            model_name=str(info["name"]),
            model_version=str(info["version"]),
            num_nodes=graph.num_nodes,
            top=top,
            warnings=pending.warnings,
        )

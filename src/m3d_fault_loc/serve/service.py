"""Micro-batched localization service with a supervised worker pool.

Request path: callers (one per HTTP connection thread) gate their graph
through the m3dlint contract engine — ERROR findings raise
:class:`~m3d_fault_loc.data.dataset.GraphContractError` and never reach the
model — then look up the content-hash cache and, on a miss, enqueue the
graph on a *bounded* thread-safe shard queue. Every request runs under a
fault *scenario* (default ``single_delay``): the contract gate composes the
structural rules with that scenario's M3D11x payload rules
(:func:`~m3d_fault_loc.scenarios.build_scenario_engine`), results and
cache keys are scenario-tagged, and per-scenario request/rejection counters
land on ``/metrics``. An unknown scenario raises
:class:`~m3d_fault_loc.scenarios.UnknownScenarioError` (→ HTTP 422).

**Worker pool.** ``num_workers`` batch workers (default 1 — the original
single-worker topology) each own one *shard*: a bounded queue plus a worker
thread that drains it into micro-batches (up to ``max_batch`` graphs or
``batch_window_s`` of waiting, whichever first), runs one stacked
``node_scores_batch`` forward pass, and resolves the per-request futures.
Requests are routed to shards by **hash of content digest**, so repeat
topologies land on the same worker — keeping the per-digest
``AggregationOperatorCache`` entries and result-LRU traffic coherent per
shard instead of ping-ponging across the pool.

Failure modes are explicit and bounded (see
:mod:`m3d_fault_loc.serve.resilience`):

- every request carries a :class:`Deadline`; an expired request raises
  :class:`DeadlineExceededError` at the caller and is *dropped* by the
  worker instead of wasting a forward pass;
- a full shard queue sheds the request
  (:class:`LoadSheddedError` → HTTP 429) instead of growing without bound;
  the advertised ``Retry-After`` is derived from queue depth and jittered
  ±20 % so shed clients do not stampede back in sync;
- consecutive batch failures trip a half-open :class:`CircuitBreaker`
  (:class:`CircuitOpenError` → HTTP 503) that probes before closing;
- one watchdog thread supervises **every** worker: a dead or stalled worker
  fails only *its shard's* in-flight futures with
  :class:`WorkerCrashedError` (crash isolation — sibling shards keep
  serving), is restarted with per-shard exponential backoff, and while the
  restart is pending its shard is **rerouted to siblings** in degraded
  mode; the ``ok``/``degraded``/``unhealthy`` health machine plus a
  pool-aware ``ok``/``degraded-k-of-n``/``unhealthy`` state land on
  ``/healthz``;
- draining stops admission, lets queued work finish within a deadline, and
  fails leftovers deterministically with :class:`ServiceDrainingError`.

The registry's activation pointer is polled at request entry and between
batches: swapping ``ACTIVE`` in the registry hot-reloads the model without
dropping requests. A reload that fails (corrupt artifact, I/O error) keeps
the current model serving and is counted, never propagated to callers.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from m3d_fault_loc.analysis.engine import RuleEngine, default_engine
from m3d_fault_loc.data.dataset import GraphContractError, gate_graph
from m3d_fault_loc.scenarios import DEFAULT_SCENARIO, build_scenario_engine, get_scenario
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.obs.context import current_trace_id, new_trace_id
from m3d_fault_loc.obs.logging import get_logger
from m3d_fault_loc.obs.trace import Tracer
from m3d_fault_loc.serve.cache import LRUResultCache, graph_digest
from m3d_fault_loc.serve.metrics import DEFAULT_SIZE_BUCKETS, Histogram, MetricsRegistry
from m3d_fault_loc.serve.registry import ModelManifest, ModelRegistry
from m3d_fault_loc.serve.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    ExponentialBackoff,
    HealthMonitor,
    LoadSheddedError,
    ServiceDrainingError,
    WorkerCrashedError,
    jittered,
)

log = get_logger(__name__)

#: How often an idle worker wakes to check for stop/generation changes.
_IDLE_POLL_S = 0.05
#: How often the drain loop re-checks for an empty pipeline.
_DRAIN_POLL_S = 0.005

#: Worker thread-name prefix; the shard index follows it. The chaos harness
#: (``m3d_fault_loc.testing.chaos.current_shard_index``) relies on this to
#: target faults at worker *i* of *n* through a shared model object.
WORKER_THREAD_PREFIX = "m3d-localize-worker-"


@dataclass(frozen=True)
class LocalizationResult:
    """One served localization: ranked fault-origin candidates + provenance."""

    graph_name: str
    digest: str
    model_name: str
    model_version: str
    num_nodes: int
    top: tuple[dict[str, Any], ...]
    warnings: tuple[str, ...]
    cached: bool = False
    latency_s: float = 0.0
    trace_id: str = ""
    scenario: str = DEFAULT_SCENARIO

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "digest": self.digest,
            "model": {"name": self.model_name, "version": self.model_version},
            "num_nodes": self.num_nodes,
            "top": [dict(entry) for entry in self.top],
            "warnings": list(self.warnings),
            "cached": self.cached,
            "latency_ms": round(self.latency_s * 1e3, 3),
            "trace_id": self.trace_id,
            "scenario": self.scenario,
        }


@dataclass
class _Pending:
    graph: CircuitGraph
    digest: str
    top_k: int
    warnings: tuple[str, ...]
    deadline: Deadline
    trace_id: str = ""
    scenario: str = DEFAULT_SCENARIO
    enqueued_at: float = 0.0
    future: Future = field(default_factory=Future)

    def complete(self, result: LocalizationResult) -> bool:
        """Resolve the future; ``False`` if something else resolved it first."""
        try:
            self.future.set_result(result)
            return True
        except InvalidStateError:
            return False

    def fail(self, exc: BaseException) -> bool:
        try:
            self.future.set_exception(exc)
            return True
        except InvalidStateError:
            return False


class _WorkerShard:
    """One worker's slice of the pool: queue, thread, and supervision state.

    Everything the watchdog needs to supervise — and restart — one worker
    independently of its siblings lives here: the bounded shard queue, the
    generation counter that retires superseded threads, the heartbeat for
    stall detection, the in-flight record for crash isolation, a *per-shard*
    restart backoff, and the reroute flag that sends this shard's traffic to
    siblings while a restart is pending.
    """

    def __init__(self, index: int, max_queue: int, backoff: ExponentialBackoff):
        self.index = index
        self.queue: queue.Queue[_Pending | None] = queue.Queue(maxsize=max_queue)
        self.thread: threading.Thread | None = None
        self.gen = 0
        self.heartbeat = time.monotonic()
        self.in_flight: list[_Pending] = []
        self.flight_lock = threading.Lock()
        self.backoff = backoff
        self.restarts = 0
        self.batches = 0
        #: While True, new traffic for this shard is served by siblings.
        self.rerouted = False
        #: Monotonic time at which the watchdog respawns the worker (the
        #: backoff delay is absorbed here so the watchdog never sleeps —
        #: one wedged shard must not delay supervision of the others).
        self.restart_at: float | None = None

    def alive(self) -> bool:
        return self.thread is not None and self.thread.is_alive()

    def snapshot(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "alive": self.alive(),
            "queue_depth": self.queue.qsize(),
            "in_flight": len(self.in_flight),
            "restarts": self.restarts,
            "batches": self.batches,
            "rerouted": self.rerouted,
        }


class LocalizationService:
    """Thread-safe, micro-batched front end over :class:`DelayFaultLocalizer`.

    Exactly one of ``model`` (fixed ad-hoc artifact) or ``registry``
    (versioned artifacts + hot reload of the active version) must be given.
    ``num_workers`` sizes the batch-worker pool; 1 (the default) is the
    original single-worker topology, byte-for-byte.
    """

    def __init__(
        self,
        model: DelayFaultLocalizer | None = None,
        registry: ModelRegistry | None = None,
        engine: RuleEngine | None = None,
        cache_size: int = 1024,
        max_batch: int = 16,
        batch_window_s: float = 0.005,
        request_timeout_s: float | None = 30.0,
        metrics: MetricsRegistry | None = None,
        max_queue: int = 256,
        shed_retry_after_s: float = 1.0,
        breaker: CircuitBreaker | None = None,
        watchdog_interval_s: float | None = 0.2,
        stall_timeout_s: float | None = 30.0,
        restart_backoff: ExponentialBackoff | None = None,
        unhealthy_after: int = 3,
        drain_deadline_s: float = 5.0,
        tracer: Tracer | None = None,
        num_workers: int = 1,
    ):
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.registry = registry
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.num_workers = num_workers
        self.batch_window_s = batch_window_s
        self.request_timeout_s = request_timeout_s
        self.shed_retry_after_s = shed_retry_after_s
        self.watchdog_interval_s = watchdog_interval_s
        self.stall_timeout_s = stall_timeout_s
        self.drain_deadline_s = drain_deadline_s
        self._engine = engine or default_engine()
        #: Per-scenario contract engines, composed lazily from ``_engine``
        #: (base structural rules + M3D110 tag rule + scenario M3D11x rules).
        self._scenario_engines: dict[str, RuleEngine] = {}
        self._scenario_lock = threading.Lock()
        self._cache = LRUResultCache(capacity=cache_size)
        template = restart_backoff or ExponentialBackoff(base_s=0.05, max_s=2.0)
        # The admission bound is pool-wide: shards split max_queue between
        # them so scaling workers does not silently multiply queueing.
        per_shard_queue = max(1, max_queue // num_workers)
        self._shards: list[_WorkerShard] = [
            _WorkerShard(
                i,
                per_shard_queue,
                ExponentialBackoff(
                    base_s=template.base_s, factor=template.factor, max_s=template.max_s
                ),
            )
            for i in range(num_workers)
        ]
        self._watchdog: threading.Thread | None = None
        self._start_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._stop_requested = threading.Event()
        self._draining = False
        self._closed = False
        self._failed_ref: tuple[str, str] | None = None
        self.tracer = tracer or Tracer()

        self.metrics = metrics or MetricsRegistry()
        m = self.metrics
        self.m_requests = m.counter("m3d_requests_total", "localization requests received")
        self.m_cache_hits = m.counter(
            "m3d_cache_hits_total", "requests served from the result cache"
        )
        self.m_rejections = m.counter(
            "m3d_contract_rejections_total", "requests rejected by the m3dlint contract gate"
        )
        self.m_errors = m.counter("m3d_request_errors_total", "requests failed inside the worker")
        self.m_forward_passes = m.counter(
            "m3d_forward_passes_total", "micro-batched model forward passes executed"
        )
        self.m_graphs = m.counter("m3d_graphs_localized_total", "graphs run through the model")
        self.m_reloads = m.counter("m3d_model_reloads_total", "hot reloads of the active model")
        self.m_reload_failures = m.counter(
            "m3d_model_reload_failures_total", "hot reloads refused (corrupt artifact, I/O error)"
        )
        self.m_shed = m.counter(
            "m3d_shed_total", "requests shed because the admission queue was full"
        )
        self.m_deadline = m.counter(
            "m3d_deadline_exceeded_total", "requests that exceeded their deadline"
        )
        self.m_breaker_trips = m.counter(
            "m3d_breaker_trips_total", "circuit breaker transitions into the open state"
        )
        self.m_breaker_rejections = m.counter(
            "m3d_breaker_rejections_total", "requests refused while the breaker was open"
        )
        self.m_worker_restarts = m.counter(
            "m3d_worker_restarts_total", "batch worker restarts by the watchdog"
        )
        self.m_drain_failed = m.counter(
            "m3d_drain_failures_total", "requests failed at the drain deadline"
        )
        self.m_rerouted = m.counter(
            "m3d_shard_reroutes_total", "requests rerouted off their home shard to a sibling"
        )
        self.m_queue_depth = m.gauge("m3d_queue_depth", "requests waiting in the batch queues")
        self.m_pool_size = m.gauge("m3d_pool_size", "configured batch workers in the pool")
        self.m_pool_size.set(num_workers)
        self.m_pool_alive = m.gauge("m3d_pool_workers_alive", "batch workers currently alive")
        self.m_breaker_state = m.state_gauge(
            "m3d_breaker_state", "circuit breaker state", states=CircuitBreaker.STATES
        )
        self.m_health_state = m.state_gauge(
            "m3d_health_state", "service health state", states=HealthMonitor.STATES
        )
        self.m_batch_size = m.histogram(
            "m3d_batch_size", "graphs per forward pass", buckets=DEFAULT_SIZE_BUCKETS
        )
        self.m_latency = m.histogram(
            "m3d_request_latency_seconds", "end-to-end localization latency"
        )
        self.m_stage_contract = m.histogram(
            "m3d_stage_contract_seconds", "per-stage latency: m3dlint contract gate"
        )
        self.m_stage_cache = m.histogram(
            "m3d_stage_cache_lookup_seconds", "per-stage latency: digest + result-cache lookup"
        )
        self.m_stage_queue = m.histogram(
            "m3d_stage_queue_wait_seconds", "per-stage latency: admission-queue wait"
        )
        self.m_stage_infer = m.histogram(
            "m3d_stage_inference_seconds", "per-stage latency: batched model forward pass"
        )
        # Per-worker instruments (suffix-named: the registry has no label
        # support) so one sick shard is visible without log archaeology.
        self.m_worker_batches = [
            m.counter(
                f"m3d_worker_batches_total_w{i}", f"forward passes executed by worker {i}"
            )
            for i in range(num_workers)
        ]
        self.m_worker_restart_by = [
            m.counter(
                f"m3d_worker_restarts_total_w{i}", f"watchdog restarts of worker {i}"
            )
            for i in range(num_workers)
        ]
        self.m_worker_depth = [
            m.gauge(f"m3d_worker_queue_depth_w{i}", f"requests queued on shard {i}")
            for i in range(num_workers)
        ]

        self._breaker = breaker or CircuitBreaker()
        self._breaker.set_transition_listener(self._on_breaker_transition)
        self.m_breaker_state.set_state(self._breaker.state)
        self._health = HealthMonitor(
            unhealthy_after=unhealthy_after, on_transition=self._on_health_transition
        )
        self.m_health_state.set_state(self._health.status)

        if registry is not None:
            loaded, manifest = registry.load_active()
            self._active_ref: tuple[str, str] | None = (manifest.name, manifest.version)
            self._install_model(loaded, manifest)
        else:
            assert model is not None
            self._active_ref = None
            self._install_model(model, None)

    # -- pool topology -----------------------------------------------------

    @property
    def _queue(self) -> queue.Queue[_Pending | None]:
        """Shard 0's queue — the whole queue when ``num_workers == 1``.

        Kept for single-worker callers (tests, debugging) that predate the
        pool; pool-aware code should use :meth:`queue_depth` or
        ``self._shards`` directly.
        """
        return self._shards[0].queue

    def queue_depth(self) -> int:
        """Requests waiting across every shard queue."""
        return sum(shard.queue.qsize() for shard in self._shards)

    def _shard_for(self, digest: str) -> _WorkerShard:
        """Route a request to its home shard by hash of content digest.

        A shard whose worker is mid-restart (``rerouted``) is skipped and
        the request walks to the next healthy sibling — degraded mode, so a
        single worker death never refuses the whole keyspace. If every
        shard is rerouted the home shard is used anyway; its queue entries
        are failed by the watchdog rather than silently dropped.
        """
        shards = self._shards
        n = len(shards)
        if n == 1:
            return shards[0]
        home = int(digest[:8], 16) % n
        for hop in range(n):
            shard = shards[(home + hop) % n]
            if not shard.rerouted:
                if hop:
                    self.m_rerouted.inc()
                    log.warning(
                        "shard_rerouted", home=home, serving=shard.index, digest=digest[:12]
                    )
                return shard
        return shards[home]

    def _set_queue_gauges(self) -> None:
        total = 0
        for shard in self._shards:
            depth = shard.queue.qsize()
            total += depth
            self.m_worker_depth[shard.index].set(depth)
        self.m_queue_depth.set(total)

    def _shed_retry_after_s(self) -> float:
        """Queue-depth-derived, ±20 %-jittered shed backoff.

        The deeper the backlog relative to capacity, the longer shed
        clients are told to wait; jitter spreads their return so a burst
        of 429s does not come back as a synchronized second burst.
        """
        fill = self.queue_depth() / float(max(1, self.max_queue))
        return jittered(self.shed_retry_after_s * (1.0 + fill))

    # -- observability hooks ----------------------------------------------

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.m_breaker_state.set_state(new)
        if new == CircuitBreaker.OPEN:
            self.m_breaker_trips.inc()
        log.warning("breaker_transition", old=old, new=new)

    def _on_health_transition(self, old: str, new: str) -> None:
        self.m_health_state.set_state(new)
        emit = log.info if new == HealthMonitor.OK else log.warning
        emit("health_transition", old=old, new=new)

    def _observe_stage(
        self,
        stage: str,
        histogram: Histogram,
        trace_id: str,
        duration_s: float,
        parent: str | None = None,
        **meta: Any,
    ) -> None:
        """One measured pipeline stage: feed the histogram and the trace."""
        histogram.observe(duration_s)
        self.tracer.record(trace_id, stage, duration_s, parent=parent, **meta)

    # -- scenarios ---------------------------------------------------------

    def _engine_for(self, scenario: str) -> RuleEngine:
        """The contract engine gating ``scenario`` payloads, built once.

        Raises :class:`~m3d_fault_loc.scenarios.UnknownScenarioError` for
        unregistered names — the HTTP layer maps it to a structured 422.
        """
        engine = self._scenario_engines.get(scenario)
        if engine is not None:
            return engine
        built = build_scenario_engine(scenario, base_engine=self._engine)
        with self._scenario_lock:
            return self._scenario_engines.setdefault(scenario, built)

    def _count_scenario(self, scenario: str, outcome: str) -> None:
        """Scenario-tagged counters (suffix-named: the metrics registry has
        no label support, and registration by name is idempotent)."""
        self.metrics.counter(
            f"m3d_scenario_{outcome}_total_{scenario}",
            f"localization {outcome} for scenario {scenario}",
        ).inc()

    # -- model identity ----------------------------------------------------

    def _install_model(self, model: DelayFaultLocalizer, manifest: ModelManifest | None) -> None:
        if manifest is not None:
            info = {"source": "registry", **manifest.to_json_dict()}
            prefix = manifest.sha256
        else:
            fingerprint = model.fingerprint()
            info = {
                "source": "adhoc",
                "name": "adhoc",
                "version": fingerprint[:12],
                "sha256": fingerprint,
                "in_dim": model.in_dim,
                "hidden": model.hidden,
                "metadata": dict(model.artifact_meta),
            }
            prefix = fingerprint
        # Single-attribute swap keeps (model, info, cache prefix) consistent
        # for readers on other threads without a lock.
        self._model_state: tuple[DelayFaultLocalizer, dict[str, Any], str] = (model, info, prefix)

    def describe_model(self) -> dict[str, Any]:
        """Identity of the model currently answering requests (``/model``)."""
        return dict(self._model_state[1])

    def cache_stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = self._cache.stats()
        agg = getattr(self._model_state[0], "agg_cache", None)
        if agg is not None:
            stats["agg_operator"] = agg.stats()
        return stats

    def pool_snapshot(self) -> dict[str, Any]:
        """Pool-level state: ``ok`` / ``degraded-k-of-n`` / ``unhealthy``.

        ``state`` degrades as soon as any worker is dead or rerouted —
        capacity is reduced even though every request still gets an answer
        — and is ``unhealthy`` only when no worker is alive at all.
        """
        workers = [shard.snapshot() for shard in self._shards]
        alive = sum(1 for w in workers if w["alive"])
        n = len(workers)
        rerouted = [w["index"] for w in workers if w["rerouted"]]
        if alive == 0:
            state = "unhealthy"
        elif alive < n or rerouted:
            state = f"degraded-{alive}-of-{n}"
        else:
            state = "ok"
        self.m_pool_alive.set(alive)
        return {
            "size": n,
            "alive": alive,
            "state": state,
            "rerouted_shards": rerouted,
            "workers": workers,
        }

    def health_snapshot(self) -> dict[str, Any]:
        """Structured health for ``/healthz``: status machine + components."""
        health = self._health.snapshot()
        status = health.pop("status")
        if self._draining or self._closed:
            status = "draining"
        info = self.describe_model()
        pool = self.pool_snapshot()
        return {
            "status": status,
            "model": {"name": info["name"], "version": info["version"]},
            "worker": {"alive": pool["alive"] == pool["size"], **health},
            "pool": pool,
            "breaker": self._breaker.snapshot(),
            "queue_depth": self.queue_depth(),
            "draining": bool(self._draining or self._closed),
        }

    def _maybe_reload(self) -> None:
        """Swap in the registry's active model if the pointer moved.

        Runs at request entry (before the cache lookup, so a swap can never
        serve a previous model's cached answer) and again in the worker
        between batches. A reload that fails — quarantined artifact, I/O
        error — keeps the current model serving, increments
        ``m3d_model_reload_failures_total``, and is not retried until the
        pointer moves again.
        """
        if self.registry is None:
            return
        try:
            ref = self.registry.active_ref()
        except Exception:
            log.exception("active_pointer_read_failed", keeping=self._active_ref)
            self.m_reload_failures.inc()
            return
        if ref is None or ref == self._active_ref or ref == self._failed_ref:
            return
        with self._reload_lock:
            if ref == self._active_ref or ref == self._failed_ref:
                return
            try:
                model, manifest = self.registry.load(*ref)
            except Exception:
                log.exception("hot_reload_failed", target=ref, keeping=self._active_ref)
                self._failed_ref = ref
                self.m_reload_failures.inc()
                return
            self._install_model(model, manifest)
            self._active_ref = ref
            self._failed_ref = None
            self._cache.clear()
            self.m_reloads.inc()
            log.info("model_reloaded", name=ref[0], version=ref[1])

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        with self._start_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            for shard in self._shards:
                if shard.thread is None:
                    self._spawn_worker(shard)
            if self._watchdog is None and self.watchdog_interval_s is not None:
                self._watchdog = threading.Thread(
                    target=self._watchdog_loop, name="m3d-localize-watchdog", daemon=True
                )
                self._watchdog.start()

    def _spawn_worker(self, shard: _WorkerShard) -> None:
        gen = shard.gen
        shard.heartbeat = time.monotonic()
        shard.restart_at = None
        shard.rerouted = False
        shard.thread = threading.Thread(
            target=self._worker_loop,
            args=(shard, gen),
            name=f"{WORKER_THREAD_PREFIX}{shard.index}-g{gen}",
            daemon=True,
        )
        shard.thread.start()

    def begin_drain(self) -> None:
        """Stop admitting requests; already-queued work keeps flowing."""
        with self._start_lock:
            self._draining = True

    def await_drain(self, deadline_s: float | None = None) -> dict[str, int]:
        """Wait for the pipeline to empty, then fail leftovers deterministically.

        Returns ``{"failed": n}`` — the number of requests that could not
        complete within the drain deadline and were failed with
        :class:`ServiceDrainingError` (also counted in
        ``m3d_drain_failures_total``).
        """
        deadline = Deadline.after(deadline_s if deadline_s is not None else self.drain_deadline_s)
        while not deadline.expired():
            busy = False
            for shard in self._shards:
                with shard.flight_lock:
                    busy = busy or bool(shard.in_flight)
            if not busy and self.queue_depth() == 0:
                break
            time.sleep(_DRAIN_POLL_S)
        failed = self._fail_pending(ServiceDrainingError("draining"))
        if failed:
            self.m_drain_failed.inc(failed)
        return {"failed": failed}

    def drain(self, deadline_s: float | None = None) -> dict[str, int]:
        """``begin_drain()`` + ``await_drain()`` in one call."""
        self.begin_drain()
        return self.await_drain(deadline_s)

    def close(self) -> None:
        with self._start_lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            shards = list(self._shards)
            watchdog = self._watchdog
        if any(shard.alive() for shard in shards):
            self.await_drain(self.drain_deadline_s)
        self._stop_requested.set()
        for shard in shards:
            if shard.thread is not None:
                try:
                    shard.queue.put_nowait(None)
                except queue.Full:
                    pass
        for shard in shards:
            if shard.thread is not None:
                shard.thread.join(timeout=5.0)
        if watchdog is not None:
            watchdog.join(timeout=5.0)

    def __enter__(self) -> LocalizationService:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request path ------------------------------------------------------

    def localize(
        self,
        graph: CircuitGraph,
        top_k: int = 5,
        timeout_s: float | None = None,
        scenario: str | None = None,
    ) -> LocalizationResult:
        """Gate, cache-check, and (on a miss) batch one graph through the pool.

        ``timeout_s`` is this request's deadline (defaults to the service's
        ``request_timeout_s``); it bounds queue wait *and* is honored by the
        worker, which drops expired requests instead of scoring them.
        ``scenario`` selects the fault scenario whose contract rules gate the
        payload (default ``single_delay`` — the pre-scenario behavior).

        Raises :class:`~m3d_fault_loc.data.dataset.GraphContractError` on
        contract violations,
        :class:`~m3d_fault_loc.scenarios.UnknownScenarioError` for an
        unregistered scenario, :class:`LoadSheddedError` when the admission
        queue is full, :class:`CircuitOpenError` while the breaker is open,
        and :class:`DeadlineExceededError` past the deadline — each a
        structured rejection rather than a hang or a wrong answer.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if self._closed:
            raise RuntimeError("service is closed")
        if self._draining:
            raise ServiceDrainingError("draining")
        scenario_name = get_scenario(scenario or DEFAULT_SCENARIO).name
        self.start()
        started = time.perf_counter()
        deadline = Deadline.after(timeout_s if timeout_s is not None else self.request_timeout_s)
        trace_id = current_trace_id() or new_trace_id()
        self.m_requests.inc()
        self._count_scenario(scenario_name, "requests")
        with self.tracer.trace(
            "localize", trace_id=trace_id, graph=graph.name, scenario=scenario_name
        ):
            return self._localize_traced(
                graph, top_k, deadline, started, trace_id, scenario_name
            )

    def _localize_traced(
        self,
        graph: CircuitGraph,
        top_k: int,
        deadline: Deadline,
        started: float,
        trace_id: str,
        scenario: str,
    ) -> LocalizationResult:
        """The traced request body: every stage lands in a span + histogram.

        Top-level stages (``contract_gate``, ``cache_lookup``,
        ``await_result``) partition the request's wall time; the worker-side
        ``queue_wait`` / ``batch_infer`` spans are children of
        ``await_result`` (tagged ``parent``), so summing the top level
        reconstructs the request total while the children explain where the
        await went.
        """
        t0 = time.perf_counter()
        engine = self._engine_for(scenario)
        try:
            warnings = gate_graph(graph, engine)
        except GraphContractError:
            self.m_rejections.inc()
            self._count_scenario(scenario, "rejections")
            self._observe_stage(
                "contract_gate",
                self.m_stage_contract,
                trace_id,
                time.perf_counter() - t0,
                scenario=scenario,
            )
            raise
        self._observe_stage(
            "contract_gate",
            self.m_stage_contract,
            trace_id,
            time.perf_counter() - t0,
            scenario=scenario,
        )

        t0 = time.perf_counter()
        self._maybe_reload()
        digest = graph_digest(graph)
        _, _, prefix = self._model_state
        key = f"{prefix}:{scenario}:{top_k}:{digest}"
        hit = self._cache.get(key)
        self._observe_stage(
            "cache_lookup",
            self.m_stage_cache,
            trace_id,
            time.perf_counter() - t0,
            hit=hit is not None,
        )
        if hit is not None:
            self.m_cache_hits.inc()
            latency = time.perf_counter() - started
            self.m_latency.observe(latency)
            return replace(hit, cached=True, latency_s=latency, trace_id=trace_id)

        if not self._breaker.allow():
            self.m_breaker_rejections.inc()
            raise CircuitOpenError(jittered(self._breaker.retry_after_s()))

        pending = _Pending(
            graph=graph,
            digest=digest,
            top_k=top_k,
            warnings=tuple(v.render() for v in warnings),
            deadline=deadline,
            trace_id=trace_id,
            scenario=scenario,
        )
        pending.enqueued_at = time.perf_counter()
        shard = self._shard_for(digest)
        try:
            shard.queue.put_nowait(pending)
        except queue.Full:
            self.m_shed.inc()
            raise LoadSheddedError(self.max_queue, self._shed_retry_after_s()) from None
        self._set_queue_gauges()
        with self.tracer.span("await_result", trace_id=trace_id):
            try:
                result: LocalizationResult = pending.future.result(timeout=deadline.remaining())
            except FutureTimeoutError:
                self.m_deadline.inc()
                raise DeadlineExceededError(deadline.budget_s, where="await") from None
            except DeadlineExceededError:
                self.m_deadline.inc()
                raise
            except Exception:
                self.m_errors.inc()
                raise
        latency = time.perf_counter() - started
        self.m_latency.observe(latency)
        return replace(result, latency_s=latency, trace_id=trace_id)

    # -- worker ------------------------------------------------------------

    def _worker_loop(self, shard: _WorkerShard, gen: int) -> None:
        while True:
            try:
                if shard.gen != gen:
                    return  # superseded by a watchdog restart
                shard.heartbeat = time.monotonic()
                try:
                    item = shard.queue.get(timeout=_IDLE_POLL_S)
                except queue.Empty:
                    if self._stop_requested.is_set():
                        return
                    continue
                if item is None:
                    return
                batch = self._collect_batch(shard, item)
                self._set_queue_gauges()
                live = self._drop_expired(batch)
                if not live:
                    continue
                dequeued = time.perf_counter()
                for p in live:
                    self._observe_stage(
                        "queue_wait",
                        self.m_stage_queue,
                        p.trace_id,
                        max(0.0, dequeued - p.enqueued_at),
                        parent="await_result",
                        worker=shard.index,
                    )
                    # Stamp the shard on the trace meta too, so stitched
                    # waterfalls show which pool worker ran the batch
                    # without digging through span metadata.
                    self.tracer.annotate(p.trace_id, worker=shard.index)
                # Gen-guarded: a worker superseded mid-batch by the watchdog
                # must not clobber its replacement's in-flight record.
                with shard.flight_lock:
                    if shard.gen == gen:
                        shard.in_flight = list(live)
                self._maybe_reload()
                self._run_batch(shard, live)
                with shard.flight_lock:
                    if shard.gen == gen:
                        shard.in_flight = []
            except Exception:
                # A worker that dies silently strands every queued future;
                # anything short of thread death must keep the loop alive.
                log.exception("worker_iteration_failed", worker=shard.index)

    def _collect_batch(self, shard: _WorkerShard, first: _Pending) -> list[_Pending]:
        batch = [first]
        window_ends = time.monotonic() + self.batch_window_s
        while len(batch) < self.max_batch:
            remaining = window_ends - time.monotonic()
            if remaining <= 0:
                break
            try:
                nxt = shard.queue.get(timeout=remaining)
            except queue.Empty:
                break
            if nxt is None:
                self._stop_requested.set()
                break
            batch.append(nxt)
        return batch

    def _drop_expired(self, batch: list[_Pending]) -> list[_Pending]:
        """Fail already-expired requests instead of spending a forward pass."""
        live: list[_Pending] = []
        for p in batch:
            if p.deadline.expired():
                p.fail(DeadlineExceededError(p.deadline.budget_s, where="batch queue"))
            else:
                live.append(p)
        return live

    def _run_batch(self, shard: _WorkerShard, batch: list[_Pending]) -> None:
        model, info, prefix = self._model_state
        t0 = time.perf_counter()
        try:
            # Request digests double as aggregation-operator cache keys: a
            # repeat topology skips the sparse-operator rebuild entirely.
            scores_per_graph = model.node_scores_batch(
                [p.graph for p in batch], digests=[p.digest for p in batch]
            )
        except Exception as exc:
            self._breaker.record_failure()
            for p in batch:
                log.error(
                    "batch_failed",
                    trace_id=p.trace_id,
                    error=type(exc).__name__,
                    batch=len(batch),
                    worker=shard.index,
                )
                p.fail(exc)
            return
        infer_s = time.perf_counter() - t0
        self.m_stage_infer.observe(infer_s)
        for p in batch:
            self.tracer.record(
                p.trace_id,
                "batch_infer",
                infer_s,
                parent="await_result",
                batch=len(batch),
                worker=shard.index,
            )
        self._breaker.record_success()
        self._health.record_success()
        shard.backoff.reset()
        shard.batches += 1
        self.m_worker_batches[shard.index].inc()
        self.m_forward_passes.inc()
        self.m_batch_size.observe(len(batch))
        self.m_graphs.inc(len(batch))
        for p, scores in zip(batch, scores_per_graph, strict=True):
            result = self._build_result(p, scores, info)
            self._cache.put(f"{prefix}:{p.scenario}:{p.top_k}:{p.digest}", result)
            p.complete(result)

    # -- supervision -------------------------------------------------------

    def _watchdog_loop(self) -> None:
        interval = self.watchdog_interval_s or 0.2
        while True:
            try:
                if self._stop_requested.wait(interval):
                    return
                now = time.monotonic()
                for shard in self._shards:
                    self._supervise(shard, now)
                self.m_pool_alive.set(sum(1 for s in self._shards if s.alive()))
            except Exception:
                log.exception("watchdog_iteration_failed")

    def _supervise(self, shard: _WorkerShard, now: float) -> None:
        """One watchdog pass over one shard: respawn if due, else health-check.

        The restart backoff is a *scheduled time* (``shard.restart_at``),
        never a sleep — the watchdog must keep supervising healthy siblings
        while one shard waits out its backoff. Crash isolation: only the
        dead shard's in-flight and queued futures are failed; traffic for
        the shard reroutes to siblings until the replacement worker is up.
        """
        if shard.restart_at is not None:
            if now >= shard.restart_at:
                with self._start_lock:
                    if not self._closed:
                        self._spawn_worker(shard)
            return
        worker = shard.thread
        if worker is None:
            return
        dead = not worker.is_alive()
        stalled = not dead and self._stalled(shard)
        if not (dead or stalled):
            return
        reason = "batch worker thread died" if dead else "batch worker stalled"
        log.error("watchdog_restart", worker=shard.index, reason=reason)
        self._health.record_worker_failure(f"worker {shard.index}: {reason}")
        self.m_worker_restarts.inc()
        self.m_worker_restart_by[shard.index].inc()
        shard.restarts += 1
        shard.gen += 1  # a stalled-but-alive worker exits when it unblocks
        self._fail_shard(shard, WorkerCrashedError(f"{reason}; failed by watchdog"))
        # Reroute only makes sense with siblings; a 1-worker pool just waits.
        shard.rerouted = len(self._shards) > 1
        shard.restart_at = now + shard.backoff.next_delay()

    def _stalled(self, shard: _WorkerShard) -> bool:
        if self.stall_timeout_s is None:
            return False
        with shard.flight_lock:
            busy = bool(shard.in_flight)
        busy = busy or shard.queue.qsize() > 0
        return busy and (time.monotonic() - shard.heartbeat) > self.stall_timeout_s

    def _fail_shard(self, shard: _WorkerShard, exc: BaseException) -> int:
        """Fail one shard's stranded requests (in-flight + queued).

        Each victim is logged with *its own* trace id — the watchdog and the
        drain path run far from the request's thread, so the ambient context
        cannot name the casualties; the pending record can.
        """
        with shard.flight_lock:
            stranded = list(shard.in_flight)
            shard.in_flight = []
        while True:
            try:
                item = shard.queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                stranded.append(item)
        self.m_worker_depth[shard.index].set(0)
        failed = 0
        for p in stranded:
            if p.fail(exc):
                failed += 1
                log.warning(
                    "pending_request_failed",
                    trace_id=p.trace_id,
                    error=type(exc).__name__,
                    detail=str(exc),
                    worker=shard.index,
                )
        return failed

    def _fail_pending(self, exc: BaseException) -> int:
        """Fail every stranded request across the whole pool; returns count."""
        failed = 0
        for shard in self._shards:
            failed += self._fail_shard(shard, exc)
        self.m_queue_depth.set(0)
        return failed

    @staticmethod
    def _build_result(
        pending: _Pending, scores: np.ndarray, info: dict[str, Any]
    ) -> LocalizationResult:
        graph = pending.graph
        order = np.argsort(scores)[::-1][: pending.top_k]
        shifted = scores - scores.max()
        probs = np.exp(shifted)
        probs /= probs.sum()
        top = tuple(
            {
                "index": int(i),
                "node": graph.node_names[int(i)],
                "tier": int(graph.tier[int(i)]),
                "score": float(scores[int(i)]),
                "prob": float(probs[int(i)]),
            }
            for i in order
        )
        return LocalizationResult(
            graph_name=graph.name,
            digest=pending.digest,
            model_name=str(info["name"]),
            model_version=str(info["version"]),
            num_nodes=graph.num_nodes,
            top=top,
            warnings=pending.warnings,
            trace_id=pending.trace_id,
            scenario=pending.scenario,
        )

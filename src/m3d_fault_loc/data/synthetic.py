"""Synthetic M3D netlist generation.

Generates random combinational DAGs placed across M3D tiers, with the
placement constrained so that every tier-crossing edge spans adjacent tiers
only — the same invariant the ``m3dlint`` contract checker enforces
(real M3D flows cannot route an MIV through an intermediate tier silently).
"""

from __future__ import annotations

import numpy as np

from m3d_fault_loc.faults.injector import make_fault_sample
from m3d_fault_loc.graph.netlist import COMB_CELLS, PI_CELL, Gate, Netlist
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.graph.timing import compute_timing

_CELL_FANIN = {"INV": 1, "BUF": 1, "AND2": 2, "OR2": 2, "NAND2": 2, "NOR2": 2, "XOR2": 2}


def random_netlist(
    rng: np.random.Generator,
    n_gates: int = 40,
    n_inputs: int = 6,
    num_tiers: int = 2,
    name: str = "synthetic",
    slack_margin: float = 1.15,
) -> Netlist:
    """Generate a random, contract-clean netlist.

    Gates are created in topological order; each gate draws fanins from
    earlier gates whose tier is within one of its own, guaranteeing MIV
    adjacency by construction. The clock period is set to ``slack_margin``
    times the critical-path delay so nominal slacks are positive.
    """
    if n_gates < 1 or n_inputs < 1:
        raise ValueError("need at least one gate and one input")
    netlist = Netlist(name=name, num_tiers=num_tiers)
    for i in range(n_inputs):
        netlist.add_gate(
            Gate(
                name=f"pi{i}",
                cell=PI_CELL,
                fanins=(),
                tier=int(rng.integers(num_tiers)),
                delay=0.0,
            )
        )
    existing = list(netlist.gates.values())
    for i in range(n_gates):
        tier = int(rng.integers(num_tiers))
        candidates = [g for g in existing if abs(g.tier - tier) <= 1]
        if not candidates:
            # Reachable only for num_tiers >= 3: re-anchor the gate onto the
            # tier of a random existing driver so adjacency always holds.
            anchor = existing[int(rng.integers(len(existing)))]
            tier = anchor.tier
            candidates = [g for g in existing if abs(g.tier - tier) <= 1]
        cell = str(rng.choice(COMB_CELLS))
        k = min(_CELL_FANIN[cell], len(candidates))
        picks = rng.choice(len(candidates), size=k, replace=False)
        gate = Gate(
            name=f"g{i}",
            cell=cell,
            fanins=tuple(candidates[int(p)].name for p in picks),
            tier=tier,
            delay=float(rng.uniform(0.5, 1.5)),
        )
        netlist.add_gate(gate)
        existing.append(gate)

    # A PI nothing reads would be a floating net (contract rule M3D102):
    # hang a buffer off each unused input so every net is observable.
    used = {fi for g in netlist.gates.values() for fi in g.fanins}
    for idx, pi in enumerate(sorted(netlist.primary_inputs)):
        if pi not in used:
            netlist.add_gate(
                Gate(
                    name=f"obs{idx}",
                    cell="BUF",
                    fanins=(pi,),
                    tier=netlist.gates[pi].tier,
                    delay=float(rng.uniform(0.5, 1.5)),
                )
            )

    driven = {fi for g in netlist.gates.values() for fi in g.fanins}
    netlist.primary_outputs = tuple(
        sorted(n for n, g in netlist.gates.items() if n not in driven and not g.is_primary_input)
    )
    netlist.clock_period = compute_timing(netlist).critical_path_delay * slack_margin
    return netlist


def synthesize_fault_dataset(
    rng: np.random.Generator,
    n_graphs: int = 100,
    n_gates: int = 40,
    n_inputs: int = 6,
    num_tiers: int = 2,
) -> list[CircuitGraph]:
    """Generate ``n_graphs`` labeled delay-fault samples on fresh netlists."""
    graphs: list[CircuitGraph] = []
    for i in range(n_graphs):
        netlist = random_netlist(
            rng, n_gates=n_gates, n_inputs=n_inputs, num_tiers=num_tiers, name=f"synthetic-{i}"
        )
        graphs.append(make_fault_sample(netlist, rng))
    return graphs

"""Dataset generation and contract-gated loading."""

from m3d_fault_loc.data.dataset import CircuitGraphDataset, GraphContractError, gate_graph
from m3d_fault_loc.data.synthetic import random_netlist, synthesize_fault_dataset

__all__ = [
    "CircuitGraphDataset",
    "GraphContractError",
    "gate_graph",
    "random_netlist",
    "synthesize_fault_dataset",
]

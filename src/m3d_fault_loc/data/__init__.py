"""Dataset generation and contract-gated loading."""

from m3d_fault_loc.data.dataset import CircuitGraphDataset, GraphContractError
from m3d_fault_loc.data.synthetic import random_netlist, synthesize_fault_dataset

__all__ = [
    "CircuitGraphDataset",
    "GraphContractError",
    "random_netlist",
    "synthesize_fault_dataset",
]

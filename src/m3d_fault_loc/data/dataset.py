"""Contract-gated circuit-graph dataset.

The loader is the chokepoint between data producers and the model: every
graph passes through the ``m3dlint`` contract engine, and any ERROR-severity
finding raises :class:`GraphContractError` — there is deliberately no bypass
flag. Warnings are collected and surfaced but do not block loading.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from m3d_fault_loc.analysis.engine import RuleEngine, default_engine
from m3d_fault_loc.analysis.violations import Severity, Violation
from m3d_fault_loc.graph.schema import CircuitGraph


class GraphContractError(ValueError):
    """Raised when a graph offered to the dataset violates the contract."""

    def __init__(self, graph_name: str, violations: list[Violation]):
        self.graph_name = graph_name
        self.violations = violations
        details = "; ".join(v.render() for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"graph {graph_name!r} violates the data contract: {details}{more}")


def gate_graph(graph: CircuitGraph, engine: RuleEngine | None = None) -> list[Violation]:
    """Run one graph through the contract gate; ERRORs raise, warnings return.

    This is the single-graph fast path shared by dataset construction and the
    serving layer (:mod:`m3d_fault_loc.serve`): one engine run per graph, the
    exact severity semantics of the dataset gate, and none of the dataset
    assembly cost per request. Like the dataset gate, it has no bypass flag.
    """
    engine = engine or default_engine()
    findings = engine.run(graph)
    errors = [v for v in findings if v.severity >= Severity.ERROR]
    if errors:
        raise GraphContractError(graph.name, errors)
    return findings


class CircuitGraphDataset:
    """An in-memory set of contract-checked, labeled circuit graphs."""

    def __init__(self, graphs: list[CircuitGraph], warnings: list[Violation] | None = None):
        self._graphs = graphs
        #: WARNING-severity findings observed while gating (never ERRORs —
        #: those raise instead of constructing a dataset).
        self.warnings = warnings or []

    @classmethod
    def from_graphs(
        cls, graphs: Sequence[CircuitGraph], engine: RuleEngine | None = None
    ) -> CircuitGraphDataset:
        """Gate every graph through the contract engine; ERRORs raise."""
        engine = engine or default_engine()
        accepted: list[CircuitGraph] = []
        warnings: list[Violation] = []
        for graph in graphs:
            warnings.extend(gate_graph(graph, engine))
            accepted.append(graph)
        return cls(accepted, warnings)

    @classmethod
    def load_dir(cls, path: str | Path, engine: RuleEngine | None = None) -> CircuitGraphDataset:
        """Load every ``*.json`` graph under ``path`` through the gate."""
        path = Path(path)
        files = sorted(path.rglob("*.json"))
        if not files:
            raise FileNotFoundError(f"no graph files under {path}")
        return cls.from_graphs([CircuitGraph.load(f) for f in files], engine=engine)

    def save_dir(self, path: str | Path) -> Path:
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        for i, graph in enumerate(self._graphs):
            graph.save(path / f"graph_{i:05d}.json")
        return path

    def split(
        self, rng: np.random.Generator, test_fraction: float = 0.2
    ) -> tuple[CircuitGraphDataset, CircuitGraphDataset]:
        """Shuffled train/test split (graphs already passed the gate)."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        order = rng.permutation(len(self._graphs))
        n_test = max(1, int(round(len(self._graphs) * test_fraction)))
        if n_test >= len(self._graphs):
            raise ValueError(
                f"cannot split {len(self._graphs)} graph(s) with "
                f"test_fraction={test_fraction}: the train split would be empty"
            )
        test_idx = set(order[:n_test].tolist())
        train = [g for i, g in enumerate(self._graphs) if i not in test_idx]
        test = [g for i, g in enumerate(self._graphs) if i in test_idx]
        return CircuitGraphDataset(train), CircuitGraphDataset(test)

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, index: int) -> CircuitGraph:
        return self._graphs[index]

    def __iter__(self) -> Iterator[CircuitGraph]:
        return iter(self._graphs)

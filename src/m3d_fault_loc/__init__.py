"""GNN-based delay-fault localization for monolithic 3D ICs.

Reproduction pipeline with a static-analysis layer baked in:

- :mod:`m3d_fault_loc.graph` — gate-level netlists, static timing, graph schema.
- :mod:`m3d_fault_loc.faults` — delay-fault injection.
- :mod:`m3d_fault_loc.data` — synthetic netlist generation and the contract-gated
  dataset loader.
- :mod:`m3d_fault_loc.model` — numpy GraphSAGE-style fault localizer.
- :mod:`m3d_fault_loc.analysis` — the ``m3dlint`` static-analysis subsystem
  (netlist contract checker + Python AST lint pass).
"""

__version__ = "0.1.0"

"""Runtime lock-order sanitizer: lockdep for the serving stack.

The static M3D3xx rules (:mod:`m3d_fault_loc.analysis.concurrency_rules`)
catch lexical lock-discipline mistakes; this module catches the dynamic
ones. While installed, it replaces ``threading.Lock``/``threading.RLock``
with tracked wrappers (so ``queue.Queue``, ``threading.Event``, and
``threading.Condition`` built afterwards are instrumented for free) and
records:

- **lock-order inversions** — thread 1 acquires A then B, thread 2 (or the
  same thread, later) acquires B then A. A cycle in the global lock-order
  graph is a potential deadlock even if the unlucky interleaving never
  happened in this run, which is what makes the check deterministic enough
  for CI.
- **long holds** — a lock held longer than ``long_hold_ms`` (a latency
  cliff for every thread queued behind it).
- **foreign releases** — a lock released by a thread that does not own it
  (always a bug; with plain ``Lock`` it silently corrupts mutual
  exclusion).

Locks are grouped into *classes* by creation site (``file:line``), the same
abstraction the kernel's lockdep uses: two ``LRUResultCache`` instances
allocate distinct lock objects but share one ordering discipline, and an
inversion between *classes* is reported even when the two runs touched
different instances. Acquisitions of two locks of the *same* class are not
edges (sibling instances and RLock re-entry are legitimate).

Usage::

    with racecheck.instrumented(long_hold_ms=250.0) as sanitizer:
        ...  # build services, run threads
    report = sanitizer.report()
    assert not report.inversions

or via the autouse pytest fixture in ``tests/conftest.py``, which fails any
chaos/concurrency test that produced an inversion or foreign release.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

# Real primitives, captured before anything can patch them. The sanitizer's
# own bookkeeping must never run through its own instrumentation.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Stdlib plumbing (matched by exact basename) skipped when attributing a
#: lock to its creation site, plus this module itself (matched by full path
#: so that e.g. ``tests/test_racecheck.py`` is *not* skipped).
_SKIP_BASENAMES = frozenset({"threading.py", "queue.py", "contextlib.py"})
_OWN_FILE = __file__.replace("\\", "/")


def _creation_site() -> str:
    """``file:line`` of the frame that created a lock, skipping plumbing."""
    for frame in reversed(traceback.extract_stack()):
        filename = frame.filename.replace("\\", "/")
        if filename == _OWN_FILE or filename.rsplit("/", 1)[-1] in _SKIP_BASENAMES:
            continue
        parts = filename.rsplit("/", 3)
        short = "/".join(parts[-2:])
        return f"{short}:{frame.lineno}"
    return "<unknown>:0"


@dataclass(frozen=True)
class Inversion:
    """Lock classes acquired in both orders — a potential deadlock."""

    first: str
    second: str
    forward_stack: str
    backward_stack: str

    def describe(self) -> str:
        return (
            f"lock-order inversion: '{self.first}' -> '{self.second}' here:\n"
            f"{self.backward_stack}\nbut the opposite order was seen here:\n"
            f"{self.forward_stack}"
        )


@dataclass(frozen=True)
class LongHold:
    """A lock held past the configured threshold."""

    site: str
    held_ms: float
    thread: str
    stack: str

    def describe(self) -> str:
        return f"lock '{self.site}' held {self.held_ms:.1f} ms by {self.thread}"


@dataclass(frozen=True)
class ForeignRelease:
    """A lock released by a thread that does not own it."""

    site: str
    owner: str
    releaser: str

    def describe(self) -> str:
        return (
            f"lock '{self.site}' acquired by {self.owner} "
            f"but released by {self.releaser}"
        )


@dataclass
class RaceReport:
    """Everything one instrumented run observed."""

    inversions: list[Inversion] = field(default_factory=list)
    long_holds: list[LongHold] = field(default_factory=list)
    foreign_releases: list[ForeignRelease] = field(default_factory=list)
    locks_created: int = 0
    acquisitions: int = 0

    def summary(self) -> str:
        return (
            f"racecheck: {self.locks_created} lock(s), "
            f"{self.acquisitions} acquisition(s), "
            f"{len(self.inversions)} inversion(s), "
            f"{len(self.long_holds)} long hold(s), "
            f"{len(self.foreign_releases)} foreign release(s)"
        )


@dataclass
class _Acquisition:
    """One held lock on a thread's stack."""

    site: str
    lock_id: int
    since: float
    stack: str


class LockOrderSanitizer:
    """Tracks every instrumented acquire/release and builds the order graph."""

    def __init__(self, long_hold_ms: float = 250.0):
        self.long_hold_ms = long_hold_ms
        self._meta = _REAL_LOCK()
        # (held_site, acquired_site) -> stack captured when first seen.
        self._edges: dict[tuple[str, str], str] = {}
        self._held: dict[int, list[_Acquisition]] = {}  # thread id -> stack
        self._report = RaceReport()

    # -- wrapper factory hooks ------------------------------------------

    def make_lock(self) -> "_TrackedLock":
        with self._meta:
            self._report.locks_created += 1
        return _TrackedLock(self, _creation_site())

    def make_rlock(self) -> "_TrackedRLock":
        with self._meta:
            self._report.locks_created += 1
        return _TrackedRLock(self, _creation_site())

    # -- bookkeeping ----------------------------------------------------

    def note_acquired(self, site: str, lock_id: int) -> None:
        thread_id = threading.get_ident()
        stack = "".join(
            entry
            for entry in traceback.format_stack(limit=10)
            if "racecheck.py" not in entry
        )
        acq = _Acquisition(site=site, lock_id=lock_id, since=time.monotonic(), stack=stack)
        with self._meta:
            self._report.acquisitions += 1
            held = self._held.setdefault(thread_id, [])
            if held:
                self._note_edge(held[-1].site, site, stack)
            held.append(acq)

    def note_released(self, site: str, lock_id: int, owner_ident: int | None) -> None:
        thread_id = threading.get_ident()
        now = time.monotonic()
        with self._meta:
            held = self._held.get(thread_id, [])
            idx = self._find(held, lock_id)
            if idx is None and owner_ident is not None and owner_ident != thread_id:
                owner_held = self._held.get(owner_ident, [])
                owner_idx = self._find(owner_held, lock_id)
                if owner_idx is not None:
                    self._report.foreign_releases.append(
                        ForeignRelease(
                            site=site,
                            owner=f"thread-{owner_ident}",
                            releaser=f"thread-{thread_id}",
                        )
                    )
                    owner_held.pop(owner_idx)
                return
            if idx is None:
                return
            acq = held.pop(idx)
            held_ms = (now - acq.since) * 1000.0
            if held_ms > self.long_hold_ms:
                self._report.long_holds.append(
                    LongHold(
                        site=site,
                        held_ms=held_ms,
                        thread=threading.current_thread().name,
                        stack=acq.stack,
                    )
                )

    @staticmethod
    def _find(held: list[_Acquisition], lock_id: int) -> int | None:
        for i in range(len(held) - 1, -1, -1):
            if held[i].lock_id == lock_id:
                return i
        return None

    def _note_edge(self, held_site: str, acquired_site: str, stack: str) -> None:
        """Record held -> acquired; a path the other way is an inversion.

        Caller holds ``_meta``. Same-class pairs are skipped: sibling
        instances of one class share a creation site and a discipline.
        """
        if held_site == acquired_site:
            return
        edge = (held_site, acquired_site)
        if edge in self._edges:
            return
        if self._path_exists(acquired_site, held_site):
            back = self._edges.get((acquired_site, held_site))
            self._report.inversions.append(
                Inversion(
                    first=acquired_site,
                    second=held_site,
                    forward_stack=back if back is not None else "<transitive>",
                    backward_stack=stack,
                )
            )
        self._edges[edge] = stack

    def _path_exists(self, start: str, goal: str) -> bool:
        """DFS over the order graph: is there a path start ⇝ goal?"""
        stack, seen = [start], {start}
        adjacency: dict[str, list[str]] = {}
        for a, b in self._edges:
            adjacency.setdefault(a, []).append(b)
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in adjacency.get(node, []):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def report(self) -> RaceReport:
        with self._meta:
            return RaceReport(
                inversions=list(self._report.inversions),
                long_holds=list(self._report.long_holds),
                foreign_releases=list(self._report.foreign_releases),
                locks_created=self._report.locks_created,
                acquisitions=self._report.acquisitions,
            )


class _TrackedLock:
    """Drop-in for ``threading.Lock()`` that reports to the sanitizer.

    Deliberately does **not** expose ``_release_save``/``_acquire_restore``/
    ``_is_owned``: ``threading.Condition`` then falls back to plain
    ``acquire``/``release``, which stay tracked.
    """

    def __init__(self, sanitizer: LockOrderSanitizer, site: str):
        self._sanitizer = sanitizer
        self._site = site
        self._inner = _REAL_LOCK()
        self._owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._owner = threading.get_ident()
            self._sanitizer.note_acquired(self._site, id(self))
        return got

    def release(self) -> None:
        owner, self._owner = self._owner, None
        self._inner.release()
        self._sanitizer.note_released(self._site, id(self), owner)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<racecheck Lock {self._site} inner={self._inner!r}>"


class _TrackedRLock:
    """Drop-in for ``threading.RLock()``; only the 0↔1 transitions count.

    Implements the private ``_release_save``/``_acquire_restore``/
    ``_is_owned`` trio so a ``threading.Condition`` (and thus ``Event``
    and ``queue.Queue``) built over an instrumented RLock keeps working —
    and its full-depth release inside ``wait()`` ends the hold window, so
    a long ``Condition.wait`` is not misreported as a long hold.
    """

    def __init__(self, sanitizer: LockOrderSanitizer, site: str):
        self._sanitizer = sanitizer
        self._site = site
        self._inner: Any = _REAL_RLOCK()
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._depth += 1
            if self._depth == 1:
                self._sanitizer.note_acquired(self._site, id(self))
        return got

    def release(self) -> None:
        if self._inner._is_owned():
            self._depth -= 1
            if self._depth == 0:
                self._sanitizer.note_released(
                    self._site, id(self), threading.get_ident()
                )
        self._inner.release()

    def _is_owned(self) -> bool:
        return bool(self._inner._is_owned())

    def _release_save(self) -> tuple[Any, int]:
        depth, self._depth = self._depth, 0
        self._sanitizer.note_released(self._site, id(self), threading.get_ident())
        return (self._inner._release_save(), depth)

    def _acquire_restore(self, state: tuple[Any, int]) -> None:
        inner_state, depth = state
        self._inner._acquire_restore(inner_state)
        self._depth = depth
        self._sanitizer.note_acquired(self._site, id(self))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<racecheck RLock {self._site} depth={self._depth}>"


# -- install / uninstall ----------------------------------------------------

_install_guard = _REAL_LOCK()
_active: LockOrderSanitizer | None = None


def install(sanitizer: LockOrderSanitizer) -> None:
    """Patch ``threading.Lock``/``RLock`` to the sanitizer's factories.

    Only locks created *after* installation are tracked; module-level locks
    born at import time stay raw (and invisible), which is exactly what the
    M3D303 rule is for.
    """
    global _active
    with _install_guard:
        if _active is not None:
            raise RuntimeError("racecheck is already installed")
        _active = sanitizer
        setattr(threading, "Lock", sanitizer.make_lock)
        setattr(threading, "RLock", sanitizer.make_rlock)


def uninstall() -> None:
    """Restore the real primitives (idempotent)."""
    global _active
    with _install_guard:
        setattr(threading, "Lock", _REAL_LOCK)
        setattr(threading, "RLock", _REAL_RLOCK)
        _active = None


@contextmanager
def instrumented(long_hold_ms: float = 250.0) -> Iterator[LockOrderSanitizer]:
    """Run a block with lock instrumentation installed."""
    sanitizer = LockOrderSanitizer(long_hold_ms=long_hold_ms)
    install(sanitizer)
    try:
        yield sanitizer
    finally:
        uninstall()

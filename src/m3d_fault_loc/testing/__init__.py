"""Test-support subsystem: deterministic fault injection for chaos tests.

Shipped inside the package (not under ``tests/``) on purpose: fault
injection is a first-class capability of the serving stack, and downstream
deployments can reuse the same shims to rehearse their own failure drills.
"""

from m3d_fault_loc.testing.chaos import (
    CrashOnNthBatchModel,
    FlakyIO,
    SlowBatchModel,
    WorkerKilled,
    corrupt_artifact,
)

__all__ = [
    "CrashOnNthBatchModel",
    "FlakyIO",
    "SlowBatchModel",
    "WorkerKilled",
    "corrupt_artifact",
]

"""Test-support subsystem: fault injection and runtime race detection.

Shipped inside the package (not under ``tests/``) on purpose: fault
injection and lock-order sanitizing are first-class capabilities of the
serving stack, and downstream deployments can reuse the same shims to
rehearse their own failure drills.
"""

from m3d_fault_loc.testing.chaos import (
    CrashOnNthBatchModel,
    FlakyIO,
    SlowBatchModel,
    WorkerKilled,
    corrupt_artifact,
)
from m3d_fault_loc.testing.racecheck import (
    LockOrderSanitizer,
    RaceReport,
    instrumented,
)

__all__ = [
    "CrashOnNthBatchModel",
    "FlakyIO",
    "LockOrderSanitizer",
    "RaceReport",
    "SlowBatchModel",
    "WorkerKilled",
    "corrupt_artifact",
    "instrumented",
]

"""Deterministic fault-injection harness for the serving stack.

Every shim here injects *one* failure mode, at a *chosen* point, a *chosen*
number of times — chaos tests must be reproducible, never probabilistic:

- :class:`CrashOnNthBatchModel` — raises on the Nth batch forward pass;
  with ``kill_worker=True`` it raises :class:`WorkerKilled` (a
  ``BaseException``) that escapes the worker's broad exception guard and
  takes the whole batch-worker thread down, exercising the watchdog.
- :class:`SlowBatchModel` — sleeps before each forward pass to exercise
  deadlines, queue back-pressure, and stall detection.
- :func:`corrupt_artifact` — tampers with a published registry artifact on
  disk so checksum verification (and quarantine) can be exercised.
- :class:`FlakyIO` — a callable for ``ModelRegistry.io_fault_hook`` that
  raises for the first N I/O attempts, exercising retry-with-backoff.

Pool-level faults (the worker-pool topology shares one model object across
shards, so these shims key off the worker thread's *name* — see
:func:`current_shard_index` — to target worker *i* of *n*):

- :class:`CrashShardWorkerModel` — kills only the worker thread for one
  chosen shard, the others keep serving (crash isolation + reroute).
- :class:`StallShardModel` — wedges only one shard's forward passes so the
  per-shard stall detector (not its siblings') fires.

Network/replica-level faults for the router tier:

- :class:`StubReplica` — a programmable in-process HTTP replica with
  per-request fault scripting (``fail_next``/``hang_next``/``drop_next``)
  and a ``partitioned`` switch that refuses connections outright.
- :func:`slow_loris` — opens a raw socket to a server and dribbles an
  incomplete request, holding the connection open (a slot-exhaustion probe
  against threaded servers).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections.abc import Sequence
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

import numpy as np

from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry
from m3d_fault_loc.serve.service import WORKER_THREAD_PREFIX


def current_shard_index() -> int | None:
    """Shard index of the calling batch-worker thread, ``None`` elsewhere.

    Worker threads are named ``m3d-localize-worker-<shard>-g<gen>`` by the
    service; parsing the name lets a *shared* chaos model decide which
    shard's calls to sabotage without any plumbing through the service.
    """
    name = threading.current_thread().name
    if not name.startswith(WORKER_THREAD_PREFIX):
        return None
    tail = name[len(WORKER_THREAD_PREFIX):]
    shard, _, _ = tail.partition("-")
    try:
        return int(shard)
    except ValueError:
        return None


class WorkerKilled(BaseException):
    """Simulated hard death of the batch worker thread.

    Derives from ``BaseException`` so it escapes the worker loop's broad
    ``except Exception`` guard — the closest pure-Python analogue to the
    thread being killed outright — and leaves the in-flight futures
    unresolved for the watchdog to fail.
    """


class ChaosModelWrapper:
    """Base wrapper delegating the full localizer surface to a real model.

    Subclasses override :meth:`node_scores_batch` to inject faults; every
    other attribute (``in_dim``, ``hidden``, ``params``, ``fingerprint``,
    ``save``, …) passes straight through so the service, registry, and
    cache cannot tell a chaos model from a healthy one until it misbehaves.
    """

    def __init__(self, base: DelayFaultLocalizer):
        self._base = base
        self.batch_calls = 0
        self._lock = threading.Lock()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)

    def _next_call(self) -> int:
        with self._lock:
            self.batch_calls += 1
            return self.batch_calls

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        self._next_call()
        return self._base.node_scores_batch(graphs, digests=digests)


class CrashOnNthBatchModel(ChaosModelWrapper):
    """Fail ``crash_count`` consecutive batch forward passes from the Nth on.

    ``crash_on`` counts from 1. ``crash_count=None`` fails forever — the
    shape needed to trip a consecutive-failure circuit breaker; a finite
    count lets the model "recover" so half-open probes and watchdog
    restarts can be observed succeeding. With ``kill_worker=True`` the
    failure is a :class:`WorkerKilled` instead of an ordinary exception, so
    it unwinds the worker thread rather than failing one batch.
    """

    def __init__(
        self,
        base: DelayFaultLocalizer,
        crash_on: int = 1,
        crash_count: int | None = 1,
        kill_worker: bool = False,
        message: str = "injected batch failure",
    ):
        super().__init__(base)
        if crash_on < 1:
            raise ValueError(f"crash_on counts from 1, got {crash_on}")
        if crash_count is not None and crash_count < 1:
            raise ValueError(f"crash_count must be >= 1 or None, got {crash_count}")
        self.crash_on = crash_on
        self.crash_count = crash_count
        self.kill_worker = kill_worker
        self.message = message

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        call = self._next_call()
        should_crash = call >= self.crash_on and (
            self.crash_count is None or call < self.crash_on + self.crash_count
        )
        if should_crash:
            detail = f"{self.message} (batch call {call})"
            if self.kill_worker:
                raise WorkerKilled(detail)
            raise RuntimeError(detail)
        return self._base.node_scores_batch(graphs, digests=digests)


class SlowBatchModel(ChaosModelWrapper):
    """Sleep ``delay_s`` before each forward pass (optionally only the
    first ``slow_calls`` of them) to simulate an overloaded or wedged model."""

    def __init__(
        self, base: DelayFaultLocalizer, delay_s: float, slow_calls: int | None = None
    ):
        super().__init__(base)
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.delay_s = delay_s
        self.slow_calls = slow_calls

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        call = self._next_call()
        if self.slow_calls is None or call <= self.slow_calls:
            time.sleep(self.delay_s)
        return self._base.node_scores_batch(graphs, digests=digests)


def corrupt_artifact(
    registry: ModelRegistry, name: str, version: str, mode: str = "append"
) -> Path:
    """Tamper with a published artifact on disk; returns the artifact path.

    Modes: ``append`` (extra trailing bytes — checksum mismatch, file still
    loads as npz), ``truncate`` (drop the tail — mismatch *and* unreadable),
    ``flip`` (flip one byte in the middle).
    """
    artifact = registry.root / "models" / name / version / "model.npz"
    raw = artifact.read_bytes()
    if mode == "append":
        artifact.write_bytes(raw + b"\x00chaos")
    elif mode == "truncate":
        artifact.write_bytes(raw[: max(1, len(raw) // 2)])
    elif mode == "flip":
        mid = len(raw) // 2
        artifact.write_bytes(raw[:mid] + bytes([raw[mid] ^ 0xFF]) + raw[mid + 1 :])
    else:
        raise ValueError(f"unknown corruption mode: {mode!r}")
    return artifact


class FlakyIO:
    """Callable for ``ModelRegistry.io_fault_hook``: fail the first N
    I/O attempts with ``exc_type``, then behave forever after.

    Exercises the registry's retry-with-backoff without touching the real
    filesystem — the hook fires *before* each read attempt.
    """

    def __init__(self, failures: int, exc_type: type[OSError] = OSError):
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self.failures = failures
        self.exc_type = exc_type
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> None:
        with self._lock:
            self.calls += 1
            if self.calls <= self.failures:
                raise self.exc_type(f"injected transient I/O failure {self.calls}")


class CrashShardWorkerModel(ChaosModelWrapper):
    """Kill worker ``target_shard``'s thread on its ``crash_on``-th batch.

    Calls from every *other* shard pass straight through — the shape needed
    to prove crash isolation: shard *i* dies, its in-flight futures fail
    with trace ids, its traffic reroutes to siblings, and the siblings
    never notice. ``crash_count`` bounds how many of the target shard's
    batches die (the watchdog's restarted worker then succeeds).
    """

    def __init__(
        self,
        base: DelayFaultLocalizer,
        target_shard: int,
        crash_on: int = 1,
        crash_count: int | None = 1,
    ):
        super().__init__(base)
        if target_shard < 0:
            raise ValueError(f"target_shard must be >= 0, got {target_shard}")
        if crash_on < 1:
            raise ValueError(f"crash_on counts from 1, got {crash_on}")
        self.target_shard = target_shard
        self.crash_on = crash_on
        self.crash_count = crash_count
        self.shard_calls = 0

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        self._next_call()
        if current_shard_index() == self.target_shard:
            with self._lock:
                self.shard_calls += 1
                call = self.shard_calls
            if call >= self.crash_on and (
                self.crash_count is None or call < self.crash_on + self.crash_count
            ):
                raise WorkerKilled(
                    f"injected kill of shard {self.target_shard} (shard call {call})"
                )
        return self._base.node_scores_batch(graphs, digests=digests)


class StallShardModel(ChaosModelWrapper):
    """Wedge only shard ``target_shard``: its forward passes block on an
    event (or sleep ``delay_s``), siblings run at full speed.

    Exercises the *per-shard* stall detector: the watchdog must restart the
    wedged worker on heartbeat age while the healthy shards' heartbeats
    keep them untouched. Call :meth:`release` to unwedge (the superseded
    worker then exits on its generation check).
    """

    def __init__(
        self, base: DelayFaultLocalizer, target_shard: int, delay_s: float | None = None
    ):
        super().__init__(base)
        if target_shard < 0:
            raise ValueError(f"target_shard must be >= 0, got {target_shard}")
        self.target_shard = target_shard
        self.delay_s = delay_s
        self._release = threading.Event()
        self.stalled_calls = 0

    def release(self) -> None:
        self._release.set()

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        self._next_call()
        if current_shard_index() == self.target_shard and not self._release.is_set():
            with self._lock:
                self.stalled_calls += 1
            if self.delay_s is not None:
                time.sleep(self.delay_s)
            else:
                # Bounded even for the "wedge forever" mode: a forgotten
                # release() must fail the test loudly, not hang the suite.
                self._release.wait(timeout=60.0)
        return self._base.node_scores_batch(graphs, digests=digests)


class _StubReplicaHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "StubReplica"

    def log_message(self, format: str, *args: Any) -> None:
        pass  # chaos stubs stay silent

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        stub = self.server
        stub.record(method, self.path, self.headers.get("X-M3D-Trace-Id"))
        action = stub.next_action()
        if action == "hang":
            time.sleep(stub.hang_s)
        elif action == "drop":
            # Close the socket mid-exchange: the client sees a reset after
            # the request was (possibly) received — the ambiguous failure.
            self.connection.close()
            return
        elif action == "fail":
            self._respond(503, {"error": "injected_failure", "replica": stub.name})
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        if self.path == "/healthz":
            self._respond(200, {"status": stub.health_status, "replica": stub.name})
            return
        if self.path.startswith("/metrics"):
            self._respond(200, stub.metrics_payload())
            return
        self._respond(
            200,
            {
                "replica": stub.name,
                "method": method,
                "path": self.path,
                "echo_bytes": len(body),
                "served": stub.served_count(),
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("POST")


class StubReplica(ThreadingHTTPServer):
    """Programmable fake ``m3d-serve`` replica for router chaos tests.

    Healthy by default: answers ``/healthz`` with 200 and echoes everything
    else. Faults are *scripted*, never random:

    - :meth:`fail_next` — the next N requests answer an injected 503;
    - :meth:`hang_next` — the next N requests sleep ``hang_s`` before
      answering (client-side timeout territory);
    - :meth:`drop_next` — the next N connections are closed mid-exchange
      (the ambiguous post-send failure);
    - :attr:`partitioned` — while ``True``, the listener is not accepting:
      :meth:`partition` closes the socket so connects fail fast, and
      :meth:`heal` rebinds on the *same* port.

    For fleet-federation tests, ``/healthz`` reports :attr:`health_status`
    and ``/metrics`` serves whatever :meth:`set_metrics` installed, so a
    stub can impersonate a real replica's instrument registry.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, name: str = "stub", host: str = "127.0.0.1", hang_s: float = 5.0):
        super().__init__((host, 0), _StubReplicaHandler)
        self.name = name
        self.host = host
        self.hang_s = hang_s
        self.partitioned = False
        #: What /healthz reports (fleet tests script degraded replicas).
        self.health_status = "ok"
        self._metrics: dict[str, Any] = {}
        self._script: list[str] = []
        self._requests: list[tuple[str, str]] = []
        self._trace_ids: list[str] = []
        self._served = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def key(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "StubReplica":
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"stub-replica-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # -- scripting ---------------------------------------------------------

    def fail_next(self, n: int = 1) -> None:
        with self._lock:
            self._script.extend(["fail"] * n)

    def hang_next(self, n: int = 1) -> None:
        with self._lock:
            self._script.extend(["hang"] * n)

    def drop_next(self, n: int = 1) -> None:
        with self._lock:
            self._script.extend(["drop"] * n)

    def set_metrics(self, payload: dict[str, Any]) -> None:
        """Instrument dict served from ``/metrics`` (the
        ``/metrics?format=json`` shape: ``{name: {"type", "value"|...}}``)."""
        with self._lock:
            self._metrics = dict(payload)

    def metrics_payload(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._metrics)

    def partition(self) -> None:
        """Refuse connections outright (connect-phase failure) until healed."""
        if not self.partitioned:
            self.partitioned = True
            self.shutdown()
            self.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None

    def heal(self, port: int | None = None) -> None:
        """Rebind (same port by default) and resume serving."""
        if not self.partitioned:
            return
        self.server_address = (self.host, port if port is not None else self.port)
        # ThreadingHTTPServer.__init__ would rebuild state; rebind manually.
        self.socket = socket.socket(self.address_family, self.socket_type)
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.server_bind()
        self.server_activate()
        self.partitioned = False
        self.start()

    # -- accounting --------------------------------------------------------

    def next_action(self) -> str:
        with self._lock:
            return self._script.pop(0) if self._script else "serve"

    def record(self, method: str, path: str, trace_id: str | None = None) -> None:
        with self._lock:
            self._requests.append((method, path))
            if trace_id:
                self._trace_ids.append(trace_id)
            self._served += 1

    def served_count(self) -> int:
        with self._lock:
            return self._served

    def requests_seen(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._requests)

    def trace_ids_seen(self) -> list[str]:
        """Every X-M3D-Trace-Id header received, in arrival order."""
        with self._lock:
            return list(self._trace_ids)


def slow_loris(
    host: str, port: int, hold_s: float, partial: bytes = b"POST /localize HTTP/1.1\r\n"
) -> threading.Thread:
    """Hold a connection open with an eternally incomplete request.

    Connects, dribbles ``partial`` (headers never finish), and keeps the
    socket open for ``hold_s`` — the classic slot-exhaustion attack shape.
    Returns the (daemon) thread holding the socket; join it to release.
    A threaded server must keep answering *other* clients throughout.
    """

    def _hold() -> None:
        try:
            # Explicit timeout (M3D210): the *attacker* must also not hang
            # the test suite if the server closes on it.
            with socket.create_connection((host, port), timeout=hold_s + 5.0) as sock:
                sock.sendall(partial)
                time.sleep(hold_s)
        except OSError:
            pass  # server closed on us; the hold simply ends early

    thread = threading.Thread(target=_hold, name="chaos-slow-loris", daemon=True)
    thread.start()
    return thread

"""Deterministic fault-injection harness for the serving stack.

Every shim here injects *one* failure mode, at a *chosen* point, a *chosen*
number of times — chaos tests must be reproducible, never probabilistic:

- :class:`CrashOnNthBatchModel` — raises on the Nth batch forward pass;
  with ``kill_worker=True`` it raises :class:`WorkerKilled` (a
  ``BaseException``) that escapes the worker's broad exception guard and
  takes the whole batch-worker thread down, exercising the watchdog.
- :class:`SlowBatchModel` — sleeps before each forward pass to exercise
  deadlines, queue back-pressure, and stall detection.
- :func:`corrupt_artifact` — tampers with a published registry artifact on
  disk so checksum verification (and quarantine) can be exercised.
- :class:`FlakyIO` — a callable for ``ModelRegistry.io_fault_hook`` that
  raises for the first N I/O attempts, exercising retry-with-backoff.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from pathlib import Path
from typing import Any

import numpy as np

from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.serve.registry import ModelRegistry


class WorkerKilled(BaseException):
    """Simulated hard death of the batch worker thread.

    Derives from ``BaseException`` so it escapes the worker loop's broad
    ``except Exception`` guard — the closest pure-Python analogue to the
    thread being killed outright — and leaves the in-flight futures
    unresolved for the watchdog to fail.
    """


class ChaosModelWrapper:
    """Base wrapper delegating the full localizer surface to a real model.

    Subclasses override :meth:`node_scores_batch` to inject faults; every
    other attribute (``in_dim``, ``hidden``, ``params``, ``fingerprint``,
    ``save``, …) passes straight through so the service, registry, and
    cache cannot tell a chaos model from a healthy one until it misbehaves.
    """

    def __init__(self, base: DelayFaultLocalizer):
        self._base = base
        self.batch_calls = 0
        self._lock = threading.Lock()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)

    def _next_call(self) -> int:
        with self._lock:
            self.batch_calls += 1
            return self.batch_calls

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        self._next_call()
        return self._base.node_scores_batch(graphs, digests=digests)


class CrashOnNthBatchModel(ChaosModelWrapper):
    """Fail ``crash_count`` consecutive batch forward passes from the Nth on.

    ``crash_on`` counts from 1. ``crash_count=None`` fails forever — the
    shape needed to trip a consecutive-failure circuit breaker; a finite
    count lets the model "recover" so half-open probes and watchdog
    restarts can be observed succeeding. With ``kill_worker=True`` the
    failure is a :class:`WorkerKilled` instead of an ordinary exception, so
    it unwinds the worker thread rather than failing one batch.
    """

    def __init__(
        self,
        base: DelayFaultLocalizer,
        crash_on: int = 1,
        crash_count: int | None = 1,
        kill_worker: bool = False,
        message: str = "injected batch failure",
    ):
        super().__init__(base)
        if crash_on < 1:
            raise ValueError(f"crash_on counts from 1, got {crash_on}")
        if crash_count is not None and crash_count < 1:
            raise ValueError(f"crash_count must be >= 1 or None, got {crash_count}")
        self.crash_on = crash_on
        self.crash_count = crash_count
        self.kill_worker = kill_worker
        self.message = message

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        call = self._next_call()
        should_crash = call >= self.crash_on and (
            self.crash_count is None or call < self.crash_on + self.crash_count
        )
        if should_crash:
            detail = f"{self.message} (batch call {call})"
            if self.kill_worker:
                raise WorkerKilled(detail)
            raise RuntimeError(detail)
        return self._base.node_scores_batch(graphs, digests=digests)


class SlowBatchModel(ChaosModelWrapper):
    """Sleep ``delay_s`` before each forward pass (optionally only the
    first ``slow_calls`` of them) to simulate an overloaded or wedged model."""

    def __init__(
        self, base: DelayFaultLocalizer, delay_s: float, slow_calls: int | None = None
    ):
        super().__init__(base)
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.delay_s = delay_s
        self.slow_calls = slow_calls

    def node_scores_batch(
        self, graphs: Sequence[CircuitGraph], digests: Sequence[str | None] | None = None
    ) -> list[np.ndarray]:
        call = self._next_call()
        if self.slow_calls is None or call <= self.slow_calls:
            time.sleep(self.delay_s)
        return self._base.node_scores_batch(graphs, digests=digests)


def corrupt_artifact(
    registry: ModelRegistry, name: str, version: str, mode: str = "append"
) -> Path:
    """Tamper with a published artifact on disk; returns the artifact path.

    Modes: ``append`` (extra trailing bytes — checksum mismatch, file still
    loads as npz), ``truncate`` (drop the tail — mismatch *and* unreadable),
    ``flip`` (flip one byte in the middle).
    """
    artifact = registry.root / "models" / name / version / "model.npz"
    raw = artifact.read_bytes()
    if mode == "append":
        artifact.write_bytes(raw + b"\x00chaos")
    elif mode == "truncate":
        artifact.write_bytes(raw[: max(1, len(raw) // 2)])
    elif mode == "flip":
        mid = len(raw) // 2
        artifact.write_bytes(raw[:mid] + bytes([raw[mid] ^ 0xFF]) + raw[mid + 1 :])
    else:
        raise ValueError(f"unknown corruption mode: {mode!r}")
    return artifact


class FlakyIO:
    """Callable for ``ModelRegistry.io_fault_hook``: fail the first N
    I/O attempts with ``exc_type``, then behave forever after.

    Exercises the registry's retry-with-backoff without touching the real
    filesystem — the hook fires *before* each read attempt.
    """

    def __init__(self, failures: int, exc_type: type[OSError] = OSError):
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self.failures = failures
        self.exc_type = exc_type
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> None:
        with self._lock:
            self.calls += 1
            if self.calls <= self.failures:
                raise self.exc_type(f"injected transient I/O failure {self.calls}")

"""``seu_bitflip`` — FsimNNs-style transient single-event upsets.

A particle strike deposits charge on one or more gates; the resulting
transient pulse behaves like a short-lived delay/glitch at each upset site.
Each sample picks ``n_flips`` distinct victim gates, charges each with a
transient extra delay (milder than a hard defect: 1–2.5× the gate's own
delay), labels the strongest upset as ``fault_index``, and records a
per-node ``transient_mask`` (0/1 per node, aligned with the graph's node
order) plus the flip list in ``meta["seu"]``. The mask travels in ``meta``
rather than as a tenth feature column so the (N, 9) float32 schema — and
every saved artifact and digest — stays intact; M3D114 rejects tagged
payloads whose mask is missing, mis-sized, or inconsistent with the flips.
The metric scores the upset *set*: hit-any@k and coverage@k.
"""

from __future__ import annotations

from typing import Sequence

from m3d_fault_loc.analysis.engine import GraphRule
from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.scenarios.base import Scenario, ScenarioSpec, ScoringModel, rank_nodes
from m3d_fault_loc.scenarios.rules import SeuTransientMaskRule


class SeuBitflipScenario(Scenario):
    name = "seu_bitflip"
    description = "transient SEU strikes with a per-node transient mask in meta"

    #: Default number of upset sites per strike (``spec.params['n_flips']``).
    default_n_flips = 2

    def generate(self, spec: ScenarioSpec) -> list[CircuitGraph]:
        n_flips = int(spec.params.get("n_flips", self.default_n_flips))
        if n_flips < 1:
            raise ValueError(f"seu_bitflip needs n_flips >= 1, got {n_flips}")
        rng = spec.rng()
        graphs: list[CircuitGraph] = []
        for i in range(spec.n_graphs):
            netlist = random_netlist(
                rng,
                n_gates=spec.n_gates,
                n_inputs=spec.n_inputs,
                num_tiers=spec.num_tiers,
                name=f"seu-bitflip-{i}",
            )
            candidates = sorted(
                name for name, g in netlist.gates.items() if not g.is_primary_input
            )
            m = min(n_flips, len(candidates))
            picks = rng.choice(len(candidates), size=m, replace=False)
            upset = netlist
            flips: list[dict[str, float | str]] = []
            for p in picks:
                gate = candidates[int(p)]
                transient = float(netlist.gates[gate].delay * rng.uniform(1.0, 2.5))
                upset = upset.with_extra_delay(gate, transient)
                flips.append({"gate": gate, "extra_delay": transient})
            primary = max(flips, key=lambda f: f["extra_delay"])
            graph = build_circuit_graph(netlist, observed=upset, fault_gate=str(primary["gate"]))
            mask = [0] * graph.num_nodes
            for f in flips:
                mask[graph.node_names.index(str(f["gate"]))] = 1
            graph.meta["scenario"] = self.name
            graph.meta["seu"] = {
                "flips": flips,
                "transient_mask": mask,
                "n_flips": m,
            }
            graphs.append(graph)
        return graphs

    def contract_rules(self) -> list[GraphRule]:
        return [SeuTransientMaskRule()]

    def evaluate(
        self, model: ScoringModel, graphs: Sequence[CircuitGraph], k: int = 3
    ) -> dict[str, float]:
        if not graphs:
            return {"hit_any_at_k": 0.0, "coverage_at_k": 0.0}
        hit_any = 0
        coverage = 0.0
        for graph in graphs:
            mask = graph.meta.get("seu", {}).get("transient_mask", [])
            flip_set = {i for i, v in enumerate(mask) if v}
            if not flip_set:
                continue
            top = set(int(i) for i in rank_nodes(model, graph, k))
            found = len(flip_set & top)
            hit_any += int(found > 0)
            coverage += found / len(flip_set)
        n = len(graphs)
        return {"hit_any_at_k": hit_any / n, "coverage_at_k": coverage / n}

"""Scenario plugin contract: spec, generator, contract rules, eval metric.

A *scenario* is one fault physics the platform can synthesize, gate, serve,
and score — a bundle of three things:

- a **seeded dataset generator**: ``generate(spec)`` turns a
  :class:`ScenarioSpec` into labeled :class:`CircuitGraph` samples. All
  randomness must flow from ``np.random.default_rng(spec.seed)`` (enforced
  statically by m3dlint rule M3D209), so the same spec always yields a
  byte-identical dataset;
- **contract rules** (the M3D11x family): :class:`GraphRule` instances that
  validate the scenario's payload shape — the ``meta`` blocks its generator
  writes — so a malformed or cross-scenario payload is a structured 422 at
  the serving gate, never a silently wrong answer;
- an **eval metric**: ``evaluate(model, graphs, k)`` scores a model on the
  scenario's own terms (hit@k over a fault set, regression against a drift
  field, ...) and returns a flat ``{metric: value}`` dict that the CLIs
  record in telemetry.

Scenario ``meta`` blocks are *optional on inference payloads* — an unlabeled
graph is servable under any scenario — but a graph **tagged** with
``meta["scenario"] = <name>`` (which every generator except ``single_delay``
writes) must carry that scenario's block, well-formed. ``single_delay``
stays untagged so its datasets are byte-identical to the legacy injector
output.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

import numpy as np

from m3d_fault_loc.analysis.engine import GraphRule
from m3d_fault_loc.graph.schema import CircuitGraph


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything a generator needs: dataset shape + seed + scenario knobs.

    ``params`` holds scenario-specific knobs (``k`` simultaneous faults,
    ``activation_prob``, ``n_flips``, ``max_drift`` ...); unknown keys are
    ignored so one spec can be replayed across scenarios.
    """

    n_graphs: int = 100
    n_gates: int = 40
    n_inputs: int = 6
    num_tiers: int = 2
    seed: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def rng(self) -> np.random.Generator:
        """The one RNG every draw in a generator must come from."""
        return np.random.default_rng(self.seed)


class ScoringModel(Protocol):
    """What a scenario metric needs from a model: per-node scores."""

    def node_scores(self, graph: CircuitGraph, digest: str | None = None) -> np.ndarray: ...


class Scenario(ABC):
    """One pluggable fault scenario (generator + contract rules + metric)."""

    #: Registry key; also the value of ``meta["scenario"]`` on tagged graphs
    #: and the ``scenario`` field accepted by ``/localize``.
    name: str
    description: str

    @abstractmethod
    def generate(self, spec: ScenarioSpec) -> list[CircuitGraph]:
        """Deterministically synthesize ``spec.n_graphs`` labeled samples.

        Every random draw must come from ``spec.rng()`` (m3dlint M3D209):
        same spec ⇒ byte-identical dataset.
        """

    @abstractmethod
    def contract_rules(self) -> list[GraphRule]:
        """This scenario's M3D11x payload rules (fresh instances)."""

    @abstractmethod
    def evaluate(
        self, model: ScoringModel, graphs: Sequence[CircuitGraph], k: int = 3
    ) -> dict[str, float]:
        """Score ``model`` on this scenario's own metric; flat float dict."""

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "rules": [r.id for r in self.contract_rules()],
        }


def rank_nodes(model: ScoringModel, graph: CircuitGraph, k: int) -> np.ndarray:
    """Indices of the top-``k`` scored nodes, best first."""
    scores = model.node_scores(graph)
    return np.argsort(scores)[::-1][:k]


def hit_at_k(model: ScoringModel, graphs: Sequence[CircuitGraph], k: int) -> float:
    """Fraction of graphs whose ``fault_index`` ranks in the top-k scores."""
    if not graphs:
        return 0.0
    hits = sum(1 for g in graphs if g.fault_index in rank_nodes(model, g, k))
    return hits / len(graphs)

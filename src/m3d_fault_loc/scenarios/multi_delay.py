"""``multi_delay`` — ``k`` simultaneous small-delay defects per graph.

Real silicon rarely fails one defect at a time: systematic process issues
hit several gates at once, and their slack footprints overlap. Each sample
injects ``k`` distinct faults (chained ``with_extra_delay``), labels the
dominant one (largest extra delay) as ``fault_index``, and records the full
set in ``meta["faults"]`` — which M3D112 keeps consistent and which the
metric scores as a *set*: coverage@k (fraction of injected faults ranked in
the top-k) alongside hit-any/hit-all.
"""

from __future__ import annotations

from typing import Sequence

from m3d_fault_loc.analysis.engine import GraphRule
from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.scenarios.base import Scenario, ScenarioSpec, ScoringModel, rank_nodes
from m3d_fault_loc.scenarios.rules import MultiDelayFaultSetRule


class MultiDelayScenario(Scenario):
    name = "multi_delay"
    description = "k simultaneous delay faults; scored as a fault set (coverage@k)"

    #: Default number of simultaneous faults (``spec.params['k']`` overrides).
    default_k = 2

    def generate(self, spec: ScenarioSpec) -> list[CircuitGraph]:
        k = int(spec.params.get("k", self.default_k))
        if k < 1:
            raise ValueError(f"multi_delay needs k >= 1 faults, got {k}")
        rng = spec.rng()
        graphs: list[CircuitGraph] = []
        for i in range(spec.n_graphs):
            netlist = random_netlist(
                rng,
                n_gates=spec.n_gates,
                n_inputs=spec.n_inputs,
                num_tiers=spec.num_tiers,
                name=f"multi-delay-{i}",
            )
            candidates = sorted(
                name for name, g in netlist.gates.items() if not g.is_primary_input
            )
            n_faults = min(k, len(candidates))
            picks = rng.choice(len(candidates), size=n_faults, replace=False)
            faulty = netlist
            faults: list[dict[str, float | str]] = []
            for p in picks:
                gate = candidates[int(p)]
                extra = float(netlist.gates[gate].delay * rng.uniform(2.0, 4.0))
                faulty = faulty.with_extra_delay(gate, extra)
                faults.append({"gate": gate, "extra_delay": extra})
            dominant = max(faults, key=lambda f: f["extra_delay"])
            graph = build_circuit_graph(netlist, observed=faulty, fault_gate=str(dominant["gate"]))
            graph.meta["scenario"] = self.name
            graph.meta["faults"] = faults
            graphs.append(graph)
        return graphs

    def contract_rules(self) -> list[GraphRule]:
        return [MultiDelayFaultSetRule()]

    def evaluate(
        self, model: ScoringModel, graphs: Sequence[CircuitGraph], k: int = 3
    ) -> dict[str, float]:
        if not graphs:
            return {"coverage_at_k": 0.0, "hit_any_at_k": 0.0, "hit_all_at_k": 0.0}
        coverage = 0.0
        hit_any = 0
        hit_all = 0
        for graph in graphs:
            fault_set = {
                graph.node_names.index(str(f["gate"])) for f in graph.meta.get("faults", [])
            }
            if not fault_set:
                continue
            top = set(int(i) for i in rank_nodes(model, graph, k))
            found = len(fault_set & top)
            coverage += found / len(fault_set)
            hit_any += int(found > 0)
            hit_all += int(found == len(fault_set))
        n = len(graphs)
        return {
            "coverage_at_k": coverage / n,
            "hit_any_at_k": hit_any / n,
            "hit_all_at_k": hit_all / n,
        }

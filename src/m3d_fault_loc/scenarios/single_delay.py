"""``single_delay`` — the paper's original workload, wrapped as a plugin.

Generation delegates to the exact legacy pipeline
(:func:`~m3d_fault_loc.data.synthetic.synthesize_fault_dataset` driven by
``default_rng(spec.seed)``), so a spec with the same seed yields graphs
**byte-identical** to what ``m3d-train`` synthesized before the scenario
platform existed — including the absence of a ``meta["scenario"]`` tag,
which is what keeps saved datasets and golden serving responses stable.
"""

from __future__ import annotations

from typing import Sequence

from m3d_fault_loc.analysis.engine import GraphRule
from m3d_fault_loc.data.synthetic import synthesize_fault_dataset
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.scenarios.base import Scenario, ScenarioSpec, ScoringModel, hit_at_k
from m3d_fault_loc.scenarios.rules import SingleDelayPayloadRule


class SingleDelayScenario(Scenario):
    name = "single_delay"
    description = "one small-delay defect per graph (the paper's workload)"

    def generate(self, spec: ScenarioSpec) -> list[CircuitGraph]:
        return synthesize_fault_dataset(
            spec.rng(),
            n_graphs=spec.n_graphs,
            n_gates=spec.n_gates,
            n_inputs=spec.n_inputs,
            num_tiers=spec.num_tiers,
        )

    def contract_rules(self) -> list[GraphRule]:
        return [SingleDelayPayloadRule()]

    def evaluate(
        self, model: ScoringModel, graphs: Sequence[CircuitGraph], k: int = 3
    ) -> dict[str, float]:
        return {
            "hit_at_1": hit_at_k(model, graphs, 1),
            "hit_at_k": hit_at_k(model, graphs, k),
        }

"""Scenario registry + per-scenario contract-engine composition.

The registry maps scenario names to :class:`Scenario` plugins with the same
duplicate-rejecting semantics as the rule registries: two plugins claiming
one name is a loud ``ValueError`` at registration time, never a silent
shadow. The built-in five register in :mod:`m3d_fault_loc.scenarios`'s
package init; external code adds more via :func:`register_scenario`.

:func:`build_scenario_engine` composes the engine the serving gate runs for
one scenario: the structural graph contract (M3D10x), the shared tag rule
(M3D110, bound to the serving scenario), and the scenario's own payload
rules (M3D11x).
"""

from __future__ import annotations

from m3d_fault_loc.analysis.engine import RuleConfig, RuleEngine, default_engine
from m3d_fault_loc.scenarios.base import Scenario
from m3d_fault_loc.scenarios.rules import ScenarioTagRule

#: The scenario ``/localize`` assumes when the request names none — the
#: paper's original workload, served exactly as before the registry existed.
DEFAULT_SCENARIO = "single_delay"


class UnknownScenarioError(KeyError):
    """A request named a scenario the registry does not know."""

    def __init__(self, name: object, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(f"unknown scenario {name!r}; registered: {', '.join(known) or '(none)'}")


class ScenarioRegistry:
    """Duplicate-rejecting ``name -> Scenario`` registry."""

    def __init__(self, scenarios: list[Scenario] | None = None):
        self._scenarios: dict[str, Scenario] = {}
        for scenario in scenarios or []:
            self.register(scenario)

    def register(self, scenario: Scenario) -> None:
        name = getattr(scenario, "name", None)
        if not isinstance(name, str) or not name:
            raise ValueError(f"scenario {scenario!r} has no string 'name' attribute")
        existing = self._scenarios.get(name)
        if existing is not None:
            raise ValueError(
                f"duplicate scenario name: {name} "
                f"({type(existing).__name__} is already registered under it; "
                f"refusing to shadow it with {type(scenario).__name__})"
            )
        self._scenarios[name] = scenario

    def get(self, name: object) -> Scenario:
        if isinstance(name, str):
            scenario = self._scenarios.get(name)
            if scenario is not None:
                return scenario
        raise UnknownScenarioError(name, self.names())

    def names(self) -> list[str]:
        return sorted(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    @property
    def scenarios(self) -> list[Scenario]:
        return [self._scenarios[name] for name in self.names()]


#: The process-wide registry the serving stack and CLIs consult.
_registry = ScenarioRegistry()


def register_scenario(scenario: Scenario) -> None:
    _registry.register(scenario)


def get_scenario(name: object) -> Scenario:
    """Look up a scenario; raises :class:`UnknownScenarioError` (→ HTTP 422)."""
    return _registry.get(name)


def scenario_names() -> list[str]:
    return _registry.names()


def registered_scenarios() -> list[Scenario]:
    return _registry.scenarios


def build_scenario_engine(
    name: str,
    base_engine: RuleEngine | None = None,
    config: RuleConfig | None = None,
) -> RuleEngine:
    """The contract engine gating one scenario's payloads.

    Composes ``base_engine`` (default: the structural M3D10x catalog) with
    the tag rule bound to ``name`` and the scenario's own M3D11x rules.
    ``base_engine`` must not itself be a scenario engine — re-registering
    M3D110 is a loud duplicate-id error.
    """
    scenario = get_scenario(name)
    base = base_engine if base_engine is not None else default_engine(config)
    engine = RuleEngine(config=base.config)
    for rule in base.rules:
        engine.register(rule)
    engine.register(ScenarioTagRule(expected=scenario.name))
    for rule in scenario.contract_rules():
        engine.register(rule)
    return engine

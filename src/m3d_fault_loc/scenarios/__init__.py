"""Pluggable fault-scenario platform.

Five built-in scenarios register on import; each bundles a seeded dataset
generator, M3D11x contract rules gating its payloads, and an eval metric.
See ``docs/scenarios.md`` for the plugin API, payload schemas, and metrics.
"""

from m3d_fault_loc.scenarios.aging_drift import AgingDriftScenario
from m3d_fault_loc.scenarios.base import Scenario, ScenarioSpec, ScoringModel, hit_at_k
from m3d_fault_loc.scenarios.intermittent_delay import IntermittentDelayScenario
from m3d_fault_loc.scenarios.multi_delay import MultiDelayScenario
from m3d_fault_loc.scenarios.registry import (
    DEFAULT_SCENARIO,
    ScenarioRegistry,
    UnknownScenarioError,
    build_scenario_engine,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_names,
)
from m3d_fault_loc.scenarios.rules import SCENARIO_GRAPH_RULES, ScenarioTagRule
from m3d_fault_loc.scenarios.seu_bitflip import SeuBitflipScenario
from m3d_fault_loc.scenarios.single_delay import SingleDelayScenario

#: Built-in plugin classes, registered in name order on package import.
BUILTIN_SCENARIOS: tuple[type[Scenario], ...] = (
    AgingDriftScenario,
    IntermittentDelayScenario,
    MultiDelayScenario,
    SeuBitflipScenario,
    SingleDelayScenario,
)

for _cls in BUILTIN_SCENARIOS:
    register_scenario(_cls())

__all__ = [
    "BUILTIN_SCENARIOS",
    "DEFAULT_SCENARIO",
    "SCENARIO_GRAPH_RULES",
    "AgingDriftScenario",
    "IntermittentDelayScenario",
    "MultiDelayScenario",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioSpec",
    "ScenarioTagRule",
    "ScoringModel",
    "SeuBitflipScenario",
    "SingleDelayScenario",
    "UnknownScenarioError",
    "build_scenario_engine",
    "get_scenario",
    "hit_at_k",
    "register_scenario",
    "registered_scenarios",
    "scenario_names",
]

"""``aging_drift`` — GNN4REL-style per-gate delay degradation field.

Aging (NBTI/HCI) and process variation degrade every gate a little and a
few gates a lot: each sample draws a baseline drift fraction per non-PI
gate plus a handful of *hot* gates with accelerated aging, ages the
observed netlist by ``delay · (1 + drift)``, labels the drift maximum as
``fault_index``, and records the full per-node drift field (aligned with
the graph's node order) in ``meta["aging"]["drift"]`` — validated by
M3D115. Because the target is a continuous field rather than a single
site, the metric is regression-flavored: the Pearson correlation between
the model's node scores and the drift field, the mean absolute error of
the min-max-normalized score field, plus hit@k on the drift maximum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from m3d_fault_loc.analysis.engine import GraphRule
from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.scenarios.base import Scenario, ScenarioSpec, ScoringModel, hit_at_k
from m3d_fault_loc.scenarios.rules import AgingDriftFieldRule


def _normalized(values: np.ndarray) -> np.ndarray:
    span = float(values.max() - values.min())
    if span <= 0.0:
        return np.zeros_like(values)
    return (values - values.min()) / span


class AgingDriftScenario(Scenario):
    name = "aging_drift"
    description = "per-gate aging drift field; regression metric vs node scores"

    #: Baseline drift range for every non-PI gate.
    base_drift = (0.0, 0.05)
    #: Accelerated drift range for the hot gates.
    hot_drift = (0.15, 0.35)
    #: Fraction of non-PI gates aged at the accelerated rate.
    default_hot_fraction = 0.1

    def generate(self, spec: ScenarioSpec) -> list[CircuitGraph]:
        hot_fraction = float(spec.params.get("hot_fraction", self.default_hot_fraction))
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"aging_drift needs hot_fraction in (0, 1], got {hot_fraction}")
        rng = spec.rng()
        graphs: list[CircuitGraph] = []
        for i in range(spec.n_graphs):
            netlist = random_netlist(
                rng,
                n_gates=spec.n_gates,
                n_inputs=spec.n_inputs,
                num_tiers=spec.num_tiers,
                name=f"aging-drift-{i}",
            )
            candidates = sorted(
                name for name, g in netlist.gates.items() if not g.is_primary_input
            )
            drift_by_gate = {
                name: float(rng.uniform(*self.base_drift)) for name in candidates
            }
            n_hot = max(1, int(round(hot_fraction * len(candidates))))
            hot_picks = rng.choice(len(candidates), size=n_hot, replace=False)
            for p in hot_picks:
                drift_by_gate[candidates[int(p)]] = float(rng.uniform(*self.hot_drift))
            aged = netlist
            for name, drift in drift_by_gate.items():
                if drift > 0.0:
                    aged = aged.with_extra_delay(name, netlist.gates[name].delay * drift)
            peak_gate = max(drift_by_gate, key=lambda name: drift_by_gate[name])
            graph = build_circuit_graph(netlist, observed=aged, fault_gate=peak_gate)
            graph.meta["scenario"] = self.name
            graph.meta["aging"] = {
                "drift": [float(drift_by_gate.get(name, 0.0)) for name in graph.node_names],
                "peak_gate": peak_gate,
            }
            graphs.append(graph)
        return graphs

    def contract_rules(self) -> list[GraphRule]:
        return [AgingDriftFieldRule()]

    def evaluate(
        self, model: ScoringModel, graphs: Sequence[CircuitGraph], k: int = 3
    ) -> dict[str, float]:
        if not graphs:
            return {"pearson_r": 0.0, "drift_mae": 0.0, "hit_at_k": 0.0}
        correlations: list[float] = []
        maes: list[float] = []
        for graph in graphs:
            drift = np.asarray(graph.meta["aging"]["drift"], dtype=np.float64)
            scores = np.asarray(model.node_scores(graph), dtype=np.float64)
            if float(drift.std()) > 0.0 and float(scores.std()) > 0.0:
                correlations.append(float(np.corrcoef(scores, drift)[0, 1]))
            else:
                correlations.append(0.0)
            maes.append(float(np.abs(_normalized(scores) - _normalized(drift)).mean()))
        return {
            "pearson_r": float(np.mean(correlations)),
            "drift_mae": float(np.mean(maes)),
            "hit_at_k": hit_at_k(model, graphs, k),
        }

"""``intermittent_delay`` — a delay fault that fires per observation.

Marginal defects (resistive opens, coupling) activate probabilistically:
across ``n_observations`` timing measurements the fault fires in only a
fraction of them, so the *averaged* observed slack shows an attenuated
footprint. Each sample injects one fault, draws the activation count from
``Binomial(n_observations, activation_prob)`` (forced ≥ 1 — a fault that
never fires is unobservable and unlabelable), and blends the observed-slack
features: ``observed = nominal − frac · Δfull`` where ``frac`` is the
realized activation fraction. M3D113 keeps the recorded activation
statistics consistent; the metric is hit@k on the attenuated footprint.
"""

from __future__ import annotations

from typing import Sequence

from m3d_fault_loc.analysis.engine import GraphRule
from m3d_fault_loc.data.synthetic import random_netlist
from m3d_fault_loc.faults.injector import inject_delay_fault
from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.schema import CircuitGraph
from m3d_fault_loc.scenarios.base import Scenario, ScenarioSpec, ScoringModel, hit_at_k
from m3d_fault_loc.scenarios.rules import IntermittentActivationRule


class IntermittentDelayScenario(Scenario):
    name = "intermittent_delay"
    description = "one delay fault active in a random fraction of observations"

    #: Default observations averaged per sample (``spec.params`` overrides).
    default_n_observations = 16

    def generate(self, spec: ScenarioSpec) -> list[CircuitGraph]:
        n_obs = int(spec.params.get("n_observations", self.default_n_observations))
        if n_obs < 1:
            raise ValueError(f"intermittent_delay needs n_observations >= 1, got {n_obs}")
        fixed_prob = spec.params.get("activation_prob")
        rng = spec.rng()
        graphs: list[CircuitGraph] = []
        for i in range(spec.n_graphs):
            netlist = random_netlist(
                rng,
                n_gates=spec.n_gates,
                n_inputs=spec.n_inputs,
                num_tiers=spec.num_tiers,
                name=f"intermittent-delay-{i}",
            )
            faulty, fault = inject_delay_fault(netlist, rng)
            prob = float(fixed_prob) if fixed_prob is not None else float(rng.uniform(0.2, 0.9))
            activations = max(1, int(rng.binomial(n_obs, prob)))
            frac = activations / n_obs
            graph = build_circuit_graph(netlist, observed=faulty, fault_gate=fault.gate)
            # Blend the full-activation footprint down to the realized
            # fraction: x[:,1] is nominal slack, x[:,2] observed, x[:,3] the
            # delta — an average over n_obs measurements of which only
            # `activations` saw the fault.
            full_delta = graph.x[:, 3].copy()
            graph.x[:, 3] = frac * full_delta
            graph.x[:, 2] = graph.x[:, 1] - graph.x[:, 3]
            graph.meta["scenario"] = self.name
            graph.meta["fault"] = {
                "gate": fault.gate,
                "extra_delay": fault.extra_delay,
                "activation_prob": prob,
                "activations": activations,
                "n_observations": n_obs,
            }
            graphs.append(graph)
        return graphs

    def contract_rules(self) -> list[GraphRule]:
        return [IntermittentActivationRule()]

    def evaluate(
        self, model: ScoringModel, graphs: Sequence[CircuitGraph], k: int = 3
    ) -> dict[str, float]:
        return {
            "hit_at_1": hit_at_k(model, graphs, 1),
            "hit_at_k": hit_at_k(model, graphs, k),
        }

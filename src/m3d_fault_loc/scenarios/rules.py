"""M3D11x contract rules: scenario payload gating.

These rules extend the structural M3D10x graph contract with *scenario*
payload checks — the shape of the ``meta`` blocks each generator writes.
They are not part of :func:`~m3d_fault_loc.analysis.engine.default_engine`;
:func:`~m3d_fault_loc.scenarios.registry.build_scenario_engine` composes the
structural rules, the shared tag rule (M3D110), and the requested scenario's
own rules into the engine the serving gate runs.

Gating policy (documented in ``docs/scenarios.md``):

- an **untagged** graph (no ``meta["scenario"]``) is servable under any
  scenario — unlabeled inference payloads and pre-scenario clients keep
  working; its scenario blocks are validated only if present;
- a **tagged** graph must match the engine's scenario (M3D110) and must
  carry that scenario's block, well-formed (M3D111–M3D115) — a generated
  payload that lost its physics is rejected, never silently mis-served.
"""

from __future__ import annotations

import math
from typing import Any

from m3d_fault_loc.analysis.engine import GraphRule, RuleConfig
from m3d_fault_loc.analysis.violations import Severity, Violation
from m3d_fault_loc.graph.schema import CircuitGraph

#: ``meta`` key carrying the scenario tag on generated graphs.
SCENARIO_META_KEY = "scenario"


def _meta(graph: CircuitGraph) -> dict[str, Any]:
    meta = graph.meta
    return meta if isinstance(meta, dict) else {}


def _tag(graph: CircuitGraph) -> Any:
    return _meta(graph).get(SCENARIO_META_KEY)


def _node_index(graph: CircuitGraph, gate: Any) -> int | None:
    try:
        return graph.node_names.index(gate)
    except (ValueError, TypeError):
        return None


def _finite_positive(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(
        value
    ) and value > 0


def _check_fault_entry(
    rule: GraphRule, graph: CircuitGraph, entry: Any, where: str
) -> list[Violation]:
    """Validate one ``{"gate": ..., "extra_delay": ...}`` fault record."""
    loc = f"graph {graph.name}"
    if not isinstance(entry, dict):
        return [rule.violation(f"{where} must be an object, got {type(entry).__name__}", loc)]
    findings: list[Violation] = []
    gate = entry.get("gate")
    if _node_index(graph, gate) is None:
        findings.append(rule.violation(f"{where} names unknown gate {gate!r}", loc))
    if not _finite_positive(entry.get("extra_delay")):
        findings.append(
            rule.violation(
                f"{where} extra_delay must be a finite positive number, "
                f"got {entry.get('extra_delay')!r}",
                loc,
            )
        )
    return findings


class ScenarioTagRule(GraphRule):
    """A graph tagged for scenario A must not be served through scenario B's
    pipeline — cross-scenario payloads get a structured rejection instead of
    a metric-poisoning wrong answer. Untagged graphs always pass."""

    id = "M3D110"
    severity = Severity.ERROR
    description = "scenario tag in meta must match the serving scenario"

    def __init__(self, expected: str):
        self.expected = expected

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        tag = _tag(graph)
        if tag is None:
            return []
        if not isinstance(tag, str):
            return [
                self.violation(
                    f"meta scenario tag must be a string, got {type(tag).__name__}",
                    f"graph {graph.name}",
                )
            ]
        if tag != self.expected:
            return [
                self.violation(
                    f"graph is tagged for scenario {tag!r} but was submitted to "
                    f"the {self.expected!r} pipeline",
                    f"graph {graph.name}",
                    tag=tag,
                    expected=self.expected,
                )
            ]
        return []


class SingleDelayPayloadRule(GraphRule):
    """Legacy single-delay payloads: at most one fault, and the ``fault``
    block (when present) must agree with the localization label."""

    id = "M3D111"
    severity = Severity.ERROR
    description = "single_delay payloads carry at most one well-formed fault"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        meta = _meta(graph)
        findings: list[Violation] = []
        faults = meta.get("faults")
        if isinstance(faults, list) and len(faults) > 1:
            findings.append(
                self.violation(
                    f"multi-fault payload ({len(faults)} faults) submitted to the "
                    "single_delay pipeline; use scenario=multi_delay",
                    f"graph {graph.name}",
                )
            )
        block = meta.get("fault")
        if block is None:
            return findings
        findings.extend(_check_fault_entry(self, graph, block, 'meta["fault"]'))
        if isinstance(block, dict) and graph.fault_index is not None:
            idx = _node_index(graph, block.get("gate"))
            if idx is not None and idx != graph.fault_index:
                findings.append(
                    self.violation(
                        f'meta["fault"] gate {block.get("gate")!r} (node {idx}) disagrees '
                        f"with fault_index {graph.fault_index}",
                        f"graph {graph.name}",
                    )
                )
        return findings


class MultiDelayFaultSetRule(GraphRule):
    """Multi-delay payloads carry a distinct, well-formed fault set, and the
    localization label points at one of its members."""

    id = "M3D112"
    severity = Severity.ERROR
    description = "multi_delay payloads carry a consistent fault set in meta"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        tagged = _tag(graph) == "multi_delay"
        faults = _meta(graph).get("faults")
        loc = f"graph {graph.name}"
        if faults is None:
            if tagged:
                return [self.violation('multi_delay graph is missing meta["faults"]', loc)]
            return []
        if not isinstance(faults, list) or not faults:
            return [self.violation('meta["faults"] must be a non-empty list', loc)]
        findings: list[Violation] = []
        gates: list[Any] = []
        for i, entry in enumerate(faults):
            findings.extend(_check_fault_entry(self, graph, entry, f'meta["faults"][{i}]'))
            if isinstance(entry, dict):
                gates.append(entry.get("gate"))
        if len(set(gates)) != len(gates):
            findings.append(self.violation('meta["faults"] names a gate more than once', loc))
        if graph.fault_index is not None and not findings:
            members = {_node_index(graph, g) for g in gates}
            if graph.fault_index not in members:
                findings.append(
                    self.violation(
                        f"fault_index {graph.fault_index} is not a member of the "
                        'injected fault set in meta["faults"]',
                        loc,
                    )
                )
        return findings


class IntermittentActivationRule(GraphRule):
    """Intermittent payloads record the activation statistics the observed
    slacks were blended with — without them the sample is unreproducible."""

    id = "M3D113"
    severity = Severity.ERROR
    description = "intermittent_delay payloads carry valid activation statistics"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        tagged = _tag(graph) == "intermittent_delay"
        block = _meta(graph).get("fault")
        loc = f"graph {graph.name}"
        if not isinstance(block, dict):
            if tagged:
                return [
                    self.violation('intermittent_delay graph is missing meta["fault"]', loc)
                ]
            return []
        if not tagged and "activation_prob" not in block:
            return []  # a plain single-fault payload, not ours to judge
        findings = _check_fault_entry(self, graph, block, 'meta["fault"]')
        prob = block.get("activation_prob")
        if (
            not isinstance(prob, (int, float))
            or isinstance(prob, bool)
            or not math.isfinite(prob)
            or not 0.0 < prob <= 1.0
        ):
            findings.append(
                self.violation(f"activation_prob must be in (0, 1], got {prob!r}", loc)
            )
        n_obs = block.get("n_observations")
        if not isinstance(n_obs, int) or isinstance(n_obs, bool) or n_obs < 1:
            findings.append(
                self.violation(f"n_observations must be a positive integer, got {n_obs!r}", loc)
            )
        activations = block.get("activations")
        if not isinstance(activations, int) or isinstance(activations, bool) or activations < 1:
            findings.append(
                self.violation(
                    f"activations must be a positive integer (an unactivated fault is "
                    f"unobservable), got {activations!r}",
                    loc,
                )
            )
        elif isinstance(n_obs, int) and not isinstance(n_obs, bool) and activations > n_obs:
            findings.append(
                self.violation(
                    f"activations ({activations}) exceeds n_observations ({n_obs})", loc
                )
            )
        return findings


class SeuTransientMaskRule(GraphRule):
    """SEU payloads carry a per-node transient mask marking the upset sites;
    the flip list and the mask must agree, and the label must be a flip."""

    id = "M3D114"
    severity = Severity.ERROR
    description = "seu_bitflip payloads carry a consistent transient mask + flip set"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        tagged = _tag(graph) == "seu_bitflip"
        block = _meta(graph).get("seu")
        loc = f"graph {graph.name}"
        if block is None:
            if tagged:
                return [self.violation('seu_bitflip graph is missing meta["seu"]', loc)]
            return []
        if not isinstance(block, dict):
            return [self.violation('meta["seu"] must be an object', loc)]
        findings: list[Violation] = []
        mask = block.get("transient_mask")
        mask_ok = (
            isinstance(mask, list)
            and len(mask) == graph.num_nodes
            and all(isinstance(v, int) and not isinstance(v, bool) and v in (0, 1) for v in mask)
        )
        if not mask_ok:
            findings.append(
                self.violation(
                    f"transient_mask must be a 0/1 list of length {graph.num_nodes}", loc
                )
            )
        elif sum(mask) < 1:
            findings.append(
                self.violation("transient_mask marks no upset site (all zeros)", loc)
            )
        flips = block.get("flips")
        if not isinstance(flips, list) or not flips:
            findings.append(self.violation('meta["seu"]["flips"] must be a non-empty list', loc))
            return findings
        flip_indices: set[int] = set()
        for i, entry in enumerate(flips):
            findings.extend(_check_fault_entry(self, graph, entry, f'meta["seu"]["flips"][{i}]'))
            if isinstance(entry, dict):
                idx = _node_index(graph, entry.get("gate"))
                if idx is not None:
                    flip_indices.add(idx)
                    if mask_ok and mask[idx] != 1:
                        findings.append(
                            self.violation(
                                f"flip site {entry.get('gate')!r} (node {idx}) is not "
                                "marked in transient_mask",
                                loc,
                            )
                        )
        if graph.fault_index is not None and flip_indices and graph.fault_index not in flip_indices:
            findings.append(
                self.violation(
                    f"fault_index {graph.fault_index} is not an upset site", loc
                )
            )
        return findings


class AgingDriftFieldRule(GraphRule):
    """Aging payloads carry a finite, non-negative per-node drift field with
    at least one aged gate; the label must sit at the drift maximum."""

    id = "M3D115"
    severity = Severity.ERROR
    description = "aging_drift payloads carry a valid per-node drift field"

    def check(self, graph: CircuitGraph, config: RuleConfig) -> list[Violation]:
        tagged = _tag(graph) == "aging_drift"
        block = _meta(graph).get("aging")
        loc = f"graph {graph.name}"
        if block is None:
            if tagged:
                return [self.violation('aging_drift graph is missing meta["aging"]', loc)]
            return []
        if not isinstance(block, dict):
            return [self.violation('meta["aging"] must be an object', loc)]
        drift = block.get("drift")
        if not isinstance(drift, list) or len(drift) != graph.num_nodes:
            return [
                self.violation(
                    f"drift must be a per-node list of length {graph.num_nodes}", loc
                )
            ]
        findings: list[Violation] = []
        values: list[float] = []
        for i, v in enumerate(drift):
            if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
                findings.append(
                    self.violation(f"drift[{i}] must be a finite number, got {v!r}", loc)
                )
                return findings
            if v < 0:
                findings.append(self.violation(f"drift[{i}] is negative ({v!r})", loc))
            values.append(float(v))
        if findings:
            return findings
        peak = max(values)
        if peak <= 0.0:
            findings.append(self.violation("drift field is all zeros (nothing aged)", loc))
        elif graph.fault_index is not None and values[graph.fault_index] < peak - 1e-12:
            findings.append(
                self.violation(
                    f"fault_index {graph.fault_index} (drift "
                    f"{values[graph.fault_index]:.6g}) is not the drift maximum "
                    f"({peak:.6g})",
                    loc,
                )
            )
        return findings


#: The scenario-payload rule catalog, in rule-id order (for ``m3dlint rules``
#: and the docs). M3D110 is parameterized by the serving scenario, so the
#: catalog entry binds a placeholder expectation.
SCENARIO_GRAPH_RULES: tuple[GraphRule, ...] = (
    ScenarioTagRule(expected="<serving scenario>"),
    SingleDelayPayloadRule(),
    MultiDelayFaultSetRule(),
    IntermittentActivationRule(),
    SeuTransientMaskRule(),
    AgingDriftFieldRule(),
)

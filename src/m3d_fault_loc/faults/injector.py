"""Delay-fault injection into gate-level netlists.

A delay fault adds extra propagation delay at a single gate (the classic
small-delay-defect model); the observed timing then shows degraded slack at
the fault site and everything downstream of it. The localizer's job is to
recover the origin from that footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.netlist import Netlist
from m3d_fault_loc.graph.schema import CircuitGraph


@dataclass(frozen=True)
class DelayFault:
    """One injected small-delay defect."""

    gate: str
    extra_delay: float


def inject_delay_fault(
    netlist: Netlist,
    rng: np.random.Generator,
    extra_delay: float | None = None,
    gate: str | None = None,
) -> tuple[Netlist, DelayFault]:
    """Inject a delay fault at a random (or given) non-PI gate.

    Returns the faulty netlist and the fault descriptor. ``extra_delay``
    defaults to a random multiple (2x–4x) of the victim gate's own delay so
    the defect is observable but not trivially saturating.
    """
    candidates = sorted(name for name, g in netlist.gates.items() if not g.is_primary_input)
    if not candidates:
        raise ValueError("netlist has no non-PI gates to inject a fault into")
    if gate is None:
        gate = candidates[int(rng.integers(len(candidates)))]
    elif gate not in netlist.gates or netlist.gates[gate].is_primary_input:
        raise ValueError(f"cannot inject a delay fault at {gate!r}")
    if extra_delay is None:
        extra_delay = float(netlist.gates[gate].delay * rng.uniform(2.0, 4.0))
    return netlist.with_extra_delay(gate, extra_delay), DelayFault(gate=gate, extra_delay=extra_delay)


def make_fault_sample(
    netlist: Netlist,
    rng: np.random.Generator,
    extra_delay: float | None = None,
    gate: str | None = None,
) -> CircuitGraph:
    """Build a labeled training sample: graph features + fault-origin label."""
    faulty, fault = inject_delay_fault(netlist, rng, extra_delay=extra_delay, gate=gate)
    graph = build_circuit_graph(netlist, observed=faulty, fault_gate=fault.gate)
    graph.meta["fault"] = {"gate": fault.gate, "extra_delay": fault.extra_delay}
    return graph

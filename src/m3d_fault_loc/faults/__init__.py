"""Delay-fault injection."""

from m3d_fault_loc.faults.injector import DelayFault, inject_delay_fault, make_fault_sample

__all__ = ["DelayFault", "inject_delay_fault", "make_fault_sample"]

"""Netlist, timing, and circuit-graph construction."""

from m3d_fault_loc.graph.builder import build_circuit_graph
from m3d_fault_loc.graph.netlist import Gate, Netlist
from m3d_fault_loc.graph.schema import (
    EDGE_FEATURE_COLUMNS,
    EDGE_MIV,
    EDGE_NET,
    FEATURE_COLUMNS,
    NODE_DTYPE,
    CircuitGraph,
)
from m3d_fault_loc.graph.timing import TimingResult, compute_timing

__all__ = [
    "EDGE_FEATURE_COLUMNS",
    "EDGE_MIV",
    "EDGE_NET",
    "FEATURE_COLUMNS",
    "NODE_DTYPE",
    "CircuitGraph",
    "Gate",
    "Netlist",
    "TimingResult",
    "build_circuit_graph",
    "compute_timing",
]

"""Gate-level netlist data structures for monolithic 3D ICs.

A :class:`Netlist` is a flat collection of :class:`Gate` records. Primary
inputs are modeled as zero-delay ``PI`` gates; primary outputs are ordinary
gates listed in :attr:`Netlist.primary_outputs`. Each gate carries the M3D
tier it is placed on; an edge between gates on different tiers is a
monolithic inter-tier via (MIV) connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

PI_CELL = "PI"

#: Combinational cell types understood by the synthetic generator.
COMB_CELLS = ("INV", "BUF", "AND2", "OR2", "NAND2", "NOR2", "XOR2")


@dataclass(frozen=True)
class Gate:
    """One gate instance in the netlist."""

    name: str
    cell: str
    fanins: tuple[str, ...]
    tier: int
    delay: float

    @property
    def is_primary_input(self) -> bool:
        return self.cell == PI_CELL


@dataclass
class Netlist:
    """A gate-level netlist placed across ``num_tiers`` M3D tiers."""

    name: str
    num_tiers: int
    gates: dict[str, Gate] = field(default_factory=dict)
    primary_outputs: tuple[str, ...] = ()
    clock_period: float = 0.0
    #: Extra wire delay charged to every tier-crossing (MIV) edge.
    miv_delay: float = 0.1
    #: Wire delay charged to every intra-tier edge.
    wire_delay: float = 0.02

    def add_gate(self, gate: Gate) -> None:
        if gate.name in self.gates:
            raise ValueError(f"duplicate gate name: {gate.name}")
        self.gates[gate.name] = gate

    @property
    def primary_inputs(self) -> tuple[str, ...]:
        return tuple(g.name for g in self.gates.values() if g.is_primary_input)

    def edge_delay(self, driver: str, sink: str) -> float:
        """Wire delay of the ``driver -> sink`` connection (MIV-aware)."""
        du, dv = self.gates[driver], self.gates[sink]
        if du.tier != dv.tier:
            return self.wire_delay + self.miv_delay * abs(du.tier - dv.tier)
        return self.wire_delay

    def topological_order(self) -> list[str]:
        """Kahn topological order of gate names.

        Raises ``ValueError`` if the netlist contains a combinational cycle —
        timing analysis is undefined on cyclic graphs, which is exactly the
        condition the ``m3dlint`` contract checker guards against upstream.
        """
        indeg = {name: 0 for name in self.gates}
        fanouts: dict[str, list[str]] = {name: [] for name in self.gates}
        for gate in self.gates.values():
            for fi in gate.fanins:
                if fi not in self.gates:
                    raise KeyError(f"gate {gate.name} references unknown fanin {fi}")
                indeg[gate.name] += 1
                fanouts[fi].append(gate.name)
        ready = sorted(name for name, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for fo in fanouts[name]:
                indeg[fo] -= 1
                if indeg[fo] == 0:
                    ready.append(fo)
        if len(order) != len(self.gates):
            cyclic = sorted(name for name, d in indeg.items() if d > 0)
            raise ValueError(f"netlist has a combinational cycle through: {cyclic[:8]}")
        return order

    def with_extra_delay(self, gate_name: str, extra: float) -> Netlist:
        """Return a copy of this netlist with ``extra`` delay added to one gate."""
        if gate_name not in self.gates:
            raise KeyError(f"no such gate: {gate_name}")
        gates = dict(self.gates)
        gates[gate_name] = replace(gates[gate_name], delay=gates[gate_name].delay + extra)
        return Netlist(
            name=self.name,
            num_tiers=self.num_tiers,
            gates=gates,
            primary_outputs=self.primary_outputs,
            clock_period=self.clock_period,
            miv_delay=self.miv_delay,
            wire_delay=self.wire_delay,
        )

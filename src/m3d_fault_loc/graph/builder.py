"""Netlist → :class:`CircuitGraph` construction.

The builder runs static timing on the nominal netlist (and, for fault
samples, on an observed/faulty variant) and packs per-gate features into the
schema layout the model consumes.
"""

from __future__ import annotations

import numpy as np

from m3d_fault_loc.graph.netlist import Netlist
from m3d_fault_loc.graph.schema import (
    EDGE_MIV,
    EDGE_NET,
    FEATURE_COLUMNS,
    INDEX_DTYPE,
    NODE_DTYPE,
    CircuitGraph,
)
from m3d_fault_loc.graph.timing import compute_timing


def build_circuit_graph(
    netlist: Netlist,
    observed: Netlist | None = None,
    fault_gate: str | None = None,
) -> CircuitGraph:
    """Build a schema-conformant graph from a netlist.

    ``observed`` is the netlist as measured on silicon (e.g. with an injected
    delay fault); when omitted, observed timing equals nominal timing and all
    slack deltas are zero. ``fault_gate`` names the fault-origin gate and is
    recorded as the localization label.
    """
    order = netlist.topological_order()
    index = {name: i for i, name in enumerate(order)}
    nominal = compute_timing(netlist)
    measured = compute_timing(observed, clock_period=netlist.clock_period or None) if observed else nominal

    n = len(order)
    tier = np.zeros(n, dtype=INDEX_DTYPE)
    is_pi = np.zeros(n, dtype=bool)
    is_po = np.zeros(n, dtype=bool)
    po_set = set(netlist.primary_outputs)

    sources: list[int] = []
    sinks: list[int] = []
    etypes: list[int] = []
    eattrs: list[float] = []
    for name in order:
        gate = netlist.gates[name]
        i = index[name]
        tier[i] = gate.tier
        is_pi[i] = gate.is_primary_input
        is_po[i] = name in po_set
        for fi in gate.fanins:
            j = index[fi]
            sources.append(j)
            sinks.append(i)
            cross = netlist.gates[fi].tier != gate.tier
            etypes.append(EDGE_MIV if cross else EDGE_NET)
            eattrs.append(netlist.edge_delay(fi, name))

    edge_index = np.asarray([sources, sinks], dtype=INDEX_DTYPE).reshape(2, -1)
    edge_type = np.asarray(etypes, dtype=INDEX_DTYPE)
    edge_attr = np.asarray(eattrs, dtype=NODE_DTYPE).reshape(-1, 1)

    fanin = np.zeros(n)
    fanout = np.zeros(n)
    if edge_index.shape[1]:
        np.add.at(fanin, edge_index[1], 1)
        np.add.at(fanout, edge_index[0], 1)

    tier_denom = max(netlist.num_tiers - 1, 1)
    x = np.zeros((n, len(FEATURE_COLUMNS)), dtype=NODE_DTYPE)
    for name in order:
        i = index[name]
        gate = netlist.gates[name]
        nominal_slack = nominal.slack[name]
        observed_slack = measured.slack[name]
        x[i] = (
            gate.delay,
            nominal_slack,
            observed_slack,
            nominal_slack - observed_slack,
            fanin[i],
            fanout[i],
            gate.tier / tier_denom,
            float(is_pi[i]),
            float(is_po[i]),
        )

    return CircuitGraph(
        name=netlist.name,
        num_tiers=netlist.num_tiers,
        node_names=list(order),
        x=x,
        tier=tier,
        is_pi=is_pi,
        is_po=is_po,
        edge_index=edge_index,
        edge_type=edge_type,
        edge_attr=edge_attr,
        fault_index=index[fault_gate] if fault_gate is not None else None,
        meta={"clock_period": netlist.clock_period, "critical_path": nominal.critical_path_delay},
    )

"""Netlist → :class:`CircuitGraph` construction.

The builder runs static timing on the nominal netlist (and, for fault
samples, on an observed/faulty variant) and packs per-gate features into the
schema layout the model consumes.
"""

from __future__ import annotations

import numpy as np

from m3d_fault_loc.graph.netlist import Netlist
from m3d_fault_loc.graph.schema import (
    EDGE_MIV,
    EDGE_NET,
    FEATURE_COLUMNS,
    INDEX_DTYPE,
    NODE_DTYPE,
    CircuitGraph,
)
from m3d_fault_loc.graph.timing import compute_timing


def build_circuit_graph(
    netlist: Netlist,
    observed: Netlist | None = None,
    fault_gate: str | None = None,
) -> CircuitGraph:
    """Build a schema-conformant graph from a netlist.

    ``observed`` is the netlist as measured on silicon (e.g. with an injected
    delay fault); when omitted, observed timing equals nominal timing and all
    slack deltas are zero. ``fault_gate`` names the fault-origin gate and is
    recorded as the localization label.
    """
    order = netlist.topological_order()
    index = {name: i for i, name in enumerate(order)}
    nominal = compute_timing(netlist)
    measured = compute_timing(observed, clock_period=netlist.clock_period or None) if observed else nominal

    n = len(order)
    gates = [netlist.gates[name] for name in order]
    po_set = set(netlist.primary_outputs)
    tier = np.fromiter((g.tier for g in gates), dtype=INDEX_DTYPE, count=n)
    is_pi = np.fromiter((g.is_primary_input for g in gates), dtype=bool, count=n)
    is_po = np.fromiter((name in po_set for name in order), dtype=bool, count=n)

    # Edge arrays are built CSR-style — one flat pass over the fanin lists
    # straight into preallocated numpy buffers (sinks by run-length repeat of
    # the per-gate fanin counts) — instead of appending to four Python lists
    # edge by edge. Iteration order matches the nested loop it replaces, so
    # edge order (and therefore graph digests) is unchanged.
    fanin_counts = np.fromiter((len(g.fanins) for g in gates), dtype=INDEX_DTYPE, count=n)
    n_edges = int(fanin_counts.sum())
    sources = np.fromiter(
        (index[fi] for g in gates for fi in g.fanins), dtype=INDEX_DTYPE, count=n_edges
    )
    sinks = np.repeat(np.arange(n, dtype=INDEX_DTYPE), fanin_counts)

    edge_index = np.vstack([sources, sinks]).reshape(2, -1)
    tier_span = np.abs(tier[sources] - tier[sinks]) if n_edges else np.zeros(0, dtype=INDEX_DTYPE)
    edge_type = np.where(tier_span != 0, EDGE_MIV, EDGE_NET).astype(INDEX_DTYPE)
    edge_attr = (
        (netlist.wire_delay + netlist.miv_delay * tier_span.astype(np.float64))
        .astype(NODE_DTYPE)
        .reshape(-1, 1)
    )

    fanout = np.bincount(sources, minlength=n).astype(np.float64) if n_edges else np.zeros(n)

    tier_denom = max(netlist.num_tiers - 1, 1)
    nominal_slack = np.fromiter((nominal.slack[name] for name in order), dtype=np.float64, count=n)
    observed_slack = np.fromiter(
        (measured.slack[name] for name in order), dtype=np.float64, count=n
    )
    x = np.empty((n, len(FEATURE_COLUMNS)), dtype=NODE_DTYPE)
    x[:, 0] = np.fromiter((g.delay for g in gates), dtype=np.float64, count=n)
    x[:, 1] = nominal_slack
    x[:, 2] = observed_slack
    x[:, 3] = nominal_slack - observed_slack
    x[:, 4] = fanin_counts
    x[:, 5] = fanout
    x[:, 6] = tier / tier_denom
    x[:, 7] = is_pi
    x[:, 8] = is_po

    return CircuitGraph(
        name=netlist.name,
        num_tiers=netlist.num_tiers,
        node_names=list(order),
        x=x,
        tier=tier,
        is_pi=is_pi,
        is_po=is_po,
        edge_index=edge_index,
        edge_type=edge_type,
        edge_attr=edge_attr,
        fault_index=index[fault_gate] if fault_gate is not None else None,
        meta={"clock_period": netlist.clock_period, "critical_path": nominal.critical_path_delay},
    )

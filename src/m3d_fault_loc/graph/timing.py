"""Static timing analysis over a gate-level netlist.

Classic topological-order arrival/required propagation. Slack is
``required - arrival`` at each gate's output pin; a delay fault shows up as a
localized slack degradation that propagates downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from m3d_fault_loc.graph.netlist import Netlist


@dataclass
class TimingResult:
    """Per-gate arrival, required, and slack times."""

    arrival: dict[str, float]
    required: dict[str, float]
    slack: dict[str, float]
    critical_path_delay: float


def compute_timing(netlist: Netlist, clock_period: float | None = None) -> TimingResult:
    """Propagate arrival and required times, returning per-gate slack.

    ``clock_period`` overrides the netlist's own clock period; when neither is
    set, the critical-path delay is used (so the nominal worst slack is zero).
    """
    order = netlist.topological_order()
    fanouts: dict[str, list[str]] = {name: [] for name in netlist.gates}
    for gate in netlist.gates.values():
        for fi in gate.fanins:
            fanouts[fi].append(gate.name)

    arrival: dict[str, float] = {}
    for name in order:
        gate = netlist.gates[name]
        at_inputs = 0.0
        for fi in gate.fanins:
            at_inputs = max(at_inputs, arrival[fi] + netlist.edge_delay(fi, name))
        arrival[name] = at_inputs + gate.delay

    critical = max(arrival.values(), default=0.0)
    period = clock_period if clock_period is not None else (netlist.clock_period or critical)

    po_set = set(netlist.primary_outputs)
    required: dict[str, float] = {}
    for name in reversed(order):
        req = period if (name in po_set or not fanouts[name]) else float("inf")
        for fo in fanouts[name]:
            gate = netlist.gates[fo]
            req = min(req, required[fo] - gate.delay - netlist.edge_delay(name, fo))
        required[name] = req

    slack = {name: required[name] - arrival[name] for name in order}
    return TimingResult(
        arrival=arrival, required=required, slack=slack, critical_path_delay=critical
    )

"""Circuit-graph schema: the contract between data pipeline and model.

Every graph that reaches training or inference must conform to this schema;
the ``m3dlint`` contract checker (:mod:`m3d_fault_loc.analysis.graph_rules`)
statically validates conformance before the loader hands graphs to the model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

#: Node feature columns, in storage order.
FEATURE_COLUMNS: tuple[str, ...] = (
    "gate_delay",
    "nominal_slack",
    "observed_slack",
    "slack_delta",
    "fanin",
    "fanout",
    "tier_frac",
    "is_pi",
    "is_po",
)

#: Edge feature columns, in storage order.
EDGE_FEATURE_COLUMNS: tuple[str, ...] = ("wire_delay",)

#: Required dtype for node/edge feature matrices.
NODE_DTYPE = np.dtype(np.float32)
#: Required dtype for index/tier arrays.
INDEX_DTYPE = np.dtype(np.int64)

#: Edge types: intra-tier net vs. monolithic inter-tier via.
EDGE_NET = 0
EDGE_MIV = 1


@dataclass
class CircuitGraph:
    """A circuit netlist graph ready for the localizer model.

    Arrays are stored exactly as the schema constants above dictate; the
    contract checker treats any deviation (shape, dtype, range) as a finding.
    """

    name: str
    num_tiers: int
    node_names: list[str]
    x: np.ndarray  # (N, len(FEATURE_COLUMNS)) NODE_DTYPE
    tier: np.ndarray  # (N,) INDEX_DTYPE
    is_pi: np.ndarray  # (N,) bool
    is_po: np.ndarray  # (N,) bool
    edge_index: np.ndarray  # (2, E) INDEX_DTYPE, [driver; sink]
    edge_type: np.ndarray  # (E,) INDEX_DTYPE, EDGE_NET | EDGE_MIV
    edge_attr: np.ndarray  # (E, len(EDGE_FEATURE_COLUMNS)) NODE_DTYPE
    fault_index: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.node_names)

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1]) if self.edge_index.ndim == 2 else 0

    def feature(self, column: str) -> np.ndarray:
        """Return one node-feature column by schema name."""
        return self.x[:, FEATURE_COLUMNS.index(column)]

    def in_degrees(self) -> np.ndarray:
        deg = np.zeros(self.num_nodes, dtype=INDEX_DTYPE)
        if self.num_edges:
            np.add.at(deg, self.edge_index[1], 1)
        return deg

    def out_degrees(self) -> np.ndarray:
        deg = np.zeros(self.num_nodes, dtype=INDEX_DTYPE)
        if self.num_edges:
            np.add.at(deg, self.edge_index[0], 1)
        return deg

    # -- serialization ----------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dict, preserving array dtypes."""

        def arr(a: np.ndarray) -> dict[str, Any]:
            return {"dtype": str(a.dtype), "shape": list(a.shape), "data": a.ravel().tolist()}

        return {
            "schema_version": 1,
            "name": self.name,
            "num_tiers": self.num_tiers,
            "node_names": list(self.node_names),
            "x": arr(self.x),
            "tier": arr(self.tier),
            "is_pi": arr(self.is_pi),
            "is_po": arr(self.is_po),
            "edge_index": arr(self.edge_index),
            "edge_type": arr(self.edge_type),
            "edge_attr": arr(self.edge_attr),
            "fault_index": self.fault_index,
            "meta": self.meta,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> CircuitGraph:
        """Deserialize, honoring the dtype recorded in the payload.

        Dtypes are reconstructed as written rather than coerced to the schema
        dtype — a payload that declares the wrong dtype round-trips to a graph
        the contract checker can flag, instead of being silently "fixed".
        """

        def arr(spec: dict[str, Any]) -> np.ndarray:
            return np.asarray(spec["data"], dtype=np.dtype(spec["dtype"])).reshape(spec["shape"])

        return cls(
            name=payload["name"],
            num_tiers=payload["num_tiers"],
            node_names=list(payload["node_names"]),
            x=arr(payload["x"]),
            tier=arr(payload["tier"]),
            is_pi=arr(payload["is_pi"]),
            is_po=arr(payload["is_po"]),
            edge_index=arr(payload["edge_index"]),
            edge_type=arr(payload["edge_type"]),
            edge_attr=arr(payload["edge_attr"]),
            fault_index=payload.get("fault_index"),
            meta=dict(payload.get("meta", {})),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json_dict()))
        return path

    @classmethod
    def load(cls, path: str | Path) -> CircuitGraph:
        return cls.from_json_dict(json.loads(Path(path).read_text()))

"""GraphSAGE-style delay-fault localizer (pure numpy).

Two SAGE layers aggregate over *in-neighbors* (upstream timing cone): a
fault origin is a node whose own slack degraded while its upstream cone is
clean, which is exactly a 1–2 hop pattern. A linear head scores every node
and a per-graph softmax turns scores into a localization distribution.

The environment this repo targets does not ship torch, so forward *and*
backward passes are written out explicitly over scipy sparse aggregation
matrices; the layer structure mirrors the NetConv/MLP idiom used by timing
GNNs so a torch_geometric port stays mechanical.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Sequence

import numpy as np
import scipy.sparse as sp

from m3d_fault_loc.graph.schema import FEATURE_COLUMNS, CircuitGraph
from m3d_fault_loc.model.aggregate import AggregationOperatorCache, build_in_neighbor_mean
from m3d_fault_loc.obs.profile import phase

#: Compute dtypes selectable via the ``precision`` knob.
PRECISIONS = ("float64", "float32")


def in_neighbor_mean(graph: CircuitGraph) -> sp.csr_matrix:
    """Row-normalized in-neighbor aggregation matrix M, so (M @ H)[i] is the
    mean feature of i's upstream drivers (zero row for PIs)."""
    return build_in_neighbor_mean(graph)


class DelayFaultLocalizer:
    """Two-layer mean-aggregator GraphSAGE with a per-graph softmax head."""

    def __init__(
        self,
        in_dim: int | None = None,
        hidden: int = 32,
        seed: int = 0,
        precision: str = "float64",
        agg_cache: AggregationOperatorCache | None = None,
    ):
        self.in_dim = in_dim if in_dim is not None else len(FEATURE_COLUMNS)
        self.hidden = hidden
        rng = np.random.default_rng(seed)

        def glorot(fan_in: int, fan_out: int) -> np.ndarray:
            scale = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-scale, scale, size=(fan_in, fan_out))

        #: Free-form artifact metadata carried alongside the weights on
        #: save/load (training config, provenance); never touches the math.
        self.artifact_meta: dict[str, Any] = {}

        h = hidden
        self.params: dict[str, np.ndarray] = {
            "W1s": glorot(self.in_dim, h),
            "W1n": glorot(self.in_dim, h),
            "b1": np.zeros(h),
            "W2s": glorot(h, h),
            "W2n": glorot(h, h),
            "b2": np.zeros(h),
            "w3": glorot(h, 1),
            "b3": np.zeros(1),
        }

        #: Per-graph CSR operator cache shared by every forward entry point;
        #: the serve layer passes its request digests so warm topologies skip
        #: the operator rebuild entirely.
        self.agg_cache = agg_cache if agg_cache is not None else AggregationOperatorCache()
        #: Reusable (N, hidden) forward scratch, one set per thread — the
        #: arrays are rebound between calls, so reuse never changes values,
        #: only allocation traffic.
        self._scratch = threading.local()
        self.set_precision(precision)

    # -- precision ---------------------------------------------------------

    def set_precision(self, precision: str) -> None:
        """Select the inference compute dtype (``float64`` or ``float32``).

        ``float64`` (the default) computes directly on :attr:`params`, so
        training updates are always visible. ``float32`` snapshots a cast
        copy of the weights for the forward path — re-call after mutating
        :attr:`params` — and is an approximation: scores match the float64
        path to float32 tolerance, not exactly. Training
        (:meth:`loss_and_grads`) always runs float64.
        """
        if precision not in PRECISIONS:
            raise ValueError(f"precision must be one of {PRECISIONS}, got {precision!r}")
        self.precision = precision
        self._dtype = np.dtype(precision)
        if precision == "float64":
            self._fwd_params = self.params
        else:
            self._fwd_params = {
                k: np.ascontiguousarray(v, dtype=self._dtype) for k, v in self.params.items()
            }

    # -- forward ----------------------------------------------------------

    def node_scores(self, graph: CircuitGraph, digest: str | None = None) -> np.ndarray:
        """Raw per-node localization logits, shape (N,).

        ``digest`` is an optional content-digest cache key for the graph's
        aggregation operator (the serve layer passes the request digest it
        already computed; omitted, a topology-only digest is derived).
        """
        logits, _ = self._forward(graph, digest=digest)
        return logits

    def predict(self, graph: CircuitGraph) -> int:
        """Index of the most likely fault-origin node."""
        return int(np.argmax(self.node_scores(graph)))

    def node_scores_batch(
        self,
        graphs: Sequence[CircuitGraph],
        digests: Sequence[str | None] | None = None,
    ) -> list[np.ndarray]:
        """Per-graph logit arrays from one stacked forward pass.

        Features are concatenated and the aggregation matrices placed on a
        block diagonal, so every row's dot products are the same sums in the
        same order as the single-graph path — results match
        :meth:`node_scores` exactly, not just approximately. A single-graph
        batch falls through to :meth:`node_scores` directly, skipping the
        concatenate/split round-trip the micro-batcher would otherwise pay
        at batch size 1.
        """
        if not graphs:
            return []
        if len(graphs) == 1:
            digest = digests[0] if digests else None
            return [self.node_scores(graphs[0], digest=digest)]
        sizes = [g.num_nodes for g in graphs]
        x = np.concatenate(
            [np.asarray(g.x, dtype=self._dtype) for g in graphs], axis=0
        )
        m = self.agg_cache.batch_operator(graphs, dtype=self._dtype, digests=digests)
        logits, _ = self._forward_arrays(x, m)
        return [part.copy() for part in np.split(logits, np.cumsum(sizes)[:-1])]

    def predict_batch(self, graphs: Sequence[CircuitGraph]) -> list[int]:
        """Most likely fault-origin index for each graph, one forward pass."""
        return [int(np.argmax(scores)) for scores in self.node_scores_batch(graphs)]

    def _forward(self, graph: CircuitGraph, digest: str | None = None):
        # np.asarray is a no-op (no copy, no pass over the data) when the
        # dtype already matches — the float32-precision path reads the
        # schema's float32 features for free.
        x = np.asarray(graph.x, dtype=self._dtype)
        m = self.agg_cache.get_or_build(graph, dtype=self._dtype, digest=digest)
        return self._forward_arrays(x, m)

    def _buffers(self, n: int) -> dict[str, np.ndarray]:
        """Thread-local (n, hidden) scratch, reallocated only on shape/dtype
        change. Values written through ``out=`` are identical to what fresh
        allocations would hold; only the allocation is skipped."""
        ws = getattr(self._scratch, "ws", None)
        if (
            ws is None
            or ws["a1"].shape[0] != n
            or ws["a1"].shape[1] != self.hidden
            or ws["a1"].dtype != self._dtype
        ):
            shape = (n, self.hidden)
            ws = {
                key: np.empty(shape, dtype=self._dtype)
                for key in ("t1", "t2", "a1", "h1", "a2", "h2")
            }
            self._scratch.ws = ws
        return ws

    def _forward_arrays(self, x: np.ndarray, m: sp.csr_matrix):
        p = self._fwd_params if x.dtype == self._dtype else self.params
        ws = self._buffers(x.shape[0]) if x.dtype == self._dtype else None
        mx = m @ x
        if ws is not None:
            # Same operations in the same order as the allocation-per-call
            # path below — out= only redirects the destination buffer.
            np.matmul(x, p["W1s"], out=ws["t1"])
            np.matmul(mx, p["W1n"], out=ws["t2"])
            a1 = np.add(ws["t1"], ws["t2"], out=ws["a1"])
            a1 = np.add(a1, p["b1"], out=a1)
            h1 = np.maximum(a1, 0.0, out=ws["h1"])
            mh1 = m @ h1
            np.matmul(h1, p["W2s"], out=ws["t1"])
            np.matmul(mh1, p["W2n"], out=ws["t2"])
            a2 = np.add(ws["t1"], ws["t2"], out=ws["a2"])
            a2 = np.add(a2, p["b2"], out=a2)
            h2 = np.maximum(a2, 0.0, out=ws["h2"])
        else:
            a1 = x @ p["W1s"] + mx @ p["W1n"] + p["b1"]
            h1 = np.maximum(a1, 0.0)
            mh1 = m @ h1
            a2 = h1 @ p["W2s"] + mh1 @ p["W2n"] + p["b2"]
            h2 = np.maximum(a2, 0.0)
        # The head is an (N, h) @ (h, 1) product; BLAS picks N-dependent gemv
        # strategies whose last-ulp rounding would break the exact
        # single-vs-batch parity promised by node_scores_batch. einsum keeps
        # a fixed per-row accumulation order regardless of N.
        logits = (np.einsum("nh,ho->no", h2, p["w3"]) + p["b3"]).ravel()
        cache = (x, m, mx, a1, h1, mh1, a2, h2)
        return logits, cache

    # -- training ---------------------------------------------------------

    def loss_and_grads(self, graph: CircuitGraph):
        """Cross-entropy of the per-graph softmax against the fault label.

        Returns ``(loss, grads)`` with grads keyed like :attr:`params`.
        """
        if graph.fault_index is None:
            raise ValueError(f"graph {graph.name!r} has no fault label")
        p = self.params
        # The phase() brackets are free when no profiler is active (shared
        # null context manager), so they live here unconditionally.
        with phase("forward"):
            logits, (x, m, mx, a1, h1, mh1, a2, h2) = self._forward(graph)

        with phase("backward"):
            z = logits - logits.max()
            expz = np.exp(z)
            probs = expz / expz.sum()
            loss = -float(np.log(max(probs[graph.fault_index], 1e-12)))

            dz = probs.copy()
            dz[graph.fault_index] -= 1.0
            dz = dz.reshape(-1, 1)  # (N, 1)

            grads: dict[str, np.ndarray] = {}
            grads["w3"] = h2.T @ dz
            grads["b3"] = dz.sum(axis=0)
            dh2 = dz @ p["w3"].T
            da2 = dh2 * (a2 > 0)
            grads["W2s"] = h1.T @ da2
            grads["W2n"] = mh1.T @ da2
            grads["b2"] = da2.sum(axis=0)
            dh1 = da2 @ p["W2s"].T + m.T @ (da2 @ p["W2n"].T)
            da1 = dh1 * (a1 > 0)
            grads["W1s"] = x.T @ da1
            grads["W1n"] = mx.T @ da1
            grads["b1"] = da1.sum(axis=0)
        return loss, grads

    # -- persistence ------------------------------------------------------

    def save(self, path: str | Path, metadata: dict[str, Any] | None = None) -> Path:
        """Serialize weights (plus artifact metadata) to ``.npz``.

        ``np.savez`` appends ``.npz`` whenever the target name does not end
        with it; the path is normalized with the same ``endswith`` rule first
        so the returned path is always exactly the file written (e.g.
        ``model.bin`` → ``model.bin.npz``).
        """
        path = Path(path)
        if not path.name.endswith(".npz"):
            path = path.with_name(path.name + ".npz")
        meta = {**self.artifact_meta, **(metadata or {})}
        np.savez(
            path,
            __in_dim=np.asarray(self.in_dim),
            __hidden=np.asarray(self.hidden),
            __meta=np.asarray(json.dumps(meta)),
            **self.params,
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> DelayFaultLocalizer:
        with np.load(path) as payload:
            model = cls(in_dim=int(payload["__in_dim"]), hidden=int(payload["__hidden"]))
            for key in model.params:
                model.params[key] = payload[key].copy()
            if "__meta" in payload.files:
                model.artifact_meta = json.loads(payload["__meta"].item())
        return model

    def fingerprint(self) -> str:
        """Stable content hash of the weights (used as a cache-key component
        and as the ad-hoc model identity when serving without a registry)."""
        digest = hashlib.sha256()
        for key in sorted(self.params):
            arr = np.ascontiguousarray(self.params[key])
            digest.update(key.encode())
            digest.update(arr.tobytes())
        return digest.hexdigest()

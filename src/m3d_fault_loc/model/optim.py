"""Minimal numpy Adam optimizer for the localizer's parameter dict,
plus training-stability helpers (global-norm gradient clipping and the
non-finite-loss guard exception)."""

from __future__ import annotations

import numpy as np


class NonFiniteLossError(RuntimeError):
    """Training loss went NaN/inf — abort loudly instead of saving a
    silently-corrupt checkpoint."""


def global_grad_norm(grads: dict[str, np.ndarray]) -> float:
    """L2 norm over every gradient entry, treated as one flat vector."""
    total = 0.0
    for g in grads.values():
        total += float(np.sum(np.square(g)))
    return float(np.sqrt(total))


def clip_by_global_norm(grads: dict[str, np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global L2 norm is at most
    ``max_norm``; returns the pre-clip norm so callers can log it."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = global_grad_norm(grads)
    if norm > max_norm and np.isfinite(norm):
        scale = max_norm / norm
        for g in grads.values():
            g *= scale
    return norm


class Adam:
    """Adam over a ``dict[str, np.ndarray]`` parameter set."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, grads: dict[str, np.ndarray]) -> None:
        self.t += 1
        bias1 = 1.0 - self.beta1**self.t
        bias2 = 1.0 - self.beta2**self.t
        for key, param in self.params.items():
            g = grads[key]
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

"""Minimal numpy Adam optimizer for the localizer's parameter dict."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam over a ``dict[str, np.ndarray]`` parameter set."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, grads: dict[str, np.ndarray]) -> None:
        self.t += 1
        bias1 = 1.0 - self.beta1**self.t
        bias2 = 1.0 - self.beta2**self.t
        for key, param in self.params.items():
            g = grads[key]
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

"""Cached CSR aggregation operators for the localizer hot path.

The localizer's forward pass is dominated by two costs: the sparse
in-neighbor-mean operator build (in-degree scatter, COO assembly, CSR
conversion) and, on the batch path, ``scipy.sparse.block_diag`` re-packing
every per-graph operator on every request. Both are pure functions of the
graph *topology*, which in a serving workload repeats far more often than
the feature matrix does — so this module makes them cacheable:

- :func:`build_in_neighbor_mean` is the one true operator constructor
  (``m3d_fault_loc.model.localizer.in_neighbor_mean`` delegates here);
- :class:`AggregationOperatorCache` is a byte-bounded, thread-safe LRU of
  built operators keyed by a content digest (the serve layer passes the
  request digest it already computed; standalone callers get a cheaper
  topology-only digest computed here);
- :func:`stack_block_diagonal` assembles the batched block-diagonal
  operator by *segment-offset concatenation* of the cached per-graph CSR
  arrays — same nonzeros in the same row-major order as
  ``sp.block_diag(..., format="csr")``, so batched matvecs produce
  bit-identical floats, without the COO round-trip.

Exactness matters: the serving stack promises ``node_scores_batch`` equals
``node_scores`` to the last ulp, and that promise survives precisely
because a cached operator is the *same array contents* a fresh build would
produce (asserted by the parity suite in ``tests/test_agg_cache.py``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from m3d_fault_loc.graph.schema import CircuitGraph

#: Bump when the operator recipe changes; keys from different recipes never mix.
_TOPOLOGY_RECIPE = b"m3d-agg-topology-v1"

#: Default byte budget for cached operator arrays (data + indices + indptr).
DEFAULT_CAPACITY_BYTES = 64 * 1024 * 1024
#: Default cap on cached operator count, independent of the byte budget.
DEFAULT_MAX_ENTRIES = 1024


def build_in_neighbor_mean(graph: CircuitGraph, dtype: np.dtype | type = np.float64) -> sp.csr_matrix:
    """Row-normalized in-neighbor aggregation matrix M, so ``(M @ H)[i]`` is
    the mean feature of i's upstream drivers (zero row for PIs)."""
    n = graph.num_nodes
    if graph.num_edges == 0:
        return sp.csr_matrix((n, n), dtype=dtype)
    src, dst = graph.edge_index[0], graph.edge_index[1]
    indeg = np.maximum(graph.in_degrees(), 1).astype(np.float64)
    weights = (1.0 / indeg[dst]).astype(dtype, copy=False)
    m = sp.csr_matrix((weights, (dst, src)), shape=(n, n))
    m.sort_indices()
    return m


def topology_digest(graph: CircuitGraph) -> str:
    """Content hash of exactly what determines the aggregation operator.

    Deliberately narrower than the serve layer's ``graph_digest``: features,
    tiers, and labels don't enter the operator, so two fault observations of
    the same netlist share one cached operator under this key.
    """
    h = hashlib.sha256(_TOPOLOGY_RECIPE)
    h.update(str(graph.num_nodes).encode())
    edges = np.ascontiguousarray(graph.edge_index)
    h.update(str(edges.dtype).encode())
    h.update(str(edges.shape).encode())
    h.update(edges.tobytes())
    return h.hexdigest()


def operator_nbytes(m: sp.csr_matrix) -> int:
    """Resident size of one cached operator's arrays."""
    return int(m.data.nbytes + m.indices.nbytes + m.indptr.nbytes)


def stack_block_diagonal(ops: Sequence[sp.csr_matrix]) -> sp.csr_matrix:
    """Block-diagonal CSR from per-graph CSR operators, by concatenation.

    Equivalent to ``sp.block_diag(ops, format="csr")`` — identical ``data``,
    ``indices``, and ``indptr`` contents — but built in O(nnz) array
    concatenations with no COO intermediate. Each block's column indices are
    shifted by its row offset (the blocks are square), and the row-pointer
    segments are shifted by the running nonzero count.
    """
    if not ops:
        return sp.csr_matrix((0, 0))
    if len(ops) == 1:
        return ops[0]
    sizes = np.asarray([m.shape[0] for m in ops], dtype=np.int64)
    nnzs = np.asarray([m.nnz for m in ops], dtype=np.int64)
    row_offsets = np.concatenate(([0], np.cumsum(sizes)))
    nnz_offsets = np.concatenate(([0], np.cumsum(nnzs)))
    total = int(row_offsets[-1])

    data = np.concatenate([m.data for m in ops])
    indices = np.concatenate(
        [m.indices.astype(np.int64, copy=False) + off for m, off in zip(ops, row_offsets)]
    )
    indptr = np.concatenate(
        [np.asarray([0], dtype=np.int64)]
        + [m.indptr[1:].astype(np.int64, copy=False) + off for m, off in zip(ops, nnz_offsets)]
    )
    out = sp.csr_matrix((data, indices, indptr), shape=(total, total))
    # Per-block indices were sorted at build time and offsets preserve order.
    out.has_sorted_indices = True
    return out


class AggregationOperatorCache:
    """Byte-bounded, thread-safe LRU of built aggregation operators.

    Keys are caller-supplied digests (the serve layer reuses the request's
    content digest, already paid for) or, when none is given, the cheaper
    :func:`topology_digest`. Both are SHA-256 content hashes, so a key
    collision means identical bytes — a colliding-but-different graph cannot
    occur short of breaking the hash, and distinct topologies always land in
    distinct entries (asserted in the collision-safety tests).

    Eviction is LRU under two simultaneous bounds: total resident operator
    bytes (``capacity_bytes``) and entry count (``max_entries``). A single
    operator larger than the whole byte budget is returned but never
    retained, so one million-gate graph cannot pin the cache.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        if capacity_bytes < 1:
            raise ValueError(f"capacity_bytes must be >= 1, got {capacity_bytes}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.capacity_bytes = capacity_bytes
        self.max_entries = max_entries
        self._entries: OrderedDict[str, sp.csr_matrix] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _key(self, graph: CircuitGraph, dtype: np.dtype, digest: str | None) -> str:
        base = digest if digest is not None else topology_digest(graph)
        return f"{np.dtype(dtype)}:{base}"

    def get_or_build(
        self,
        graph: CircuitGraph,
        dtype: np.dtype | type = np.float64,
        digest: str | None = None,
    ) -> sp.csr_matrix:
        """Cached operator for ``graph``, building (and retaining) on a miss."""
        dtype = np.dtype(dtype)
        key = self._key(graph, dtype, digest)
        with self._lock:
            m = self._entries.get(key)
            if m is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return m
            self.misses += 1
        m = build_in_neighbor_mean(graph, dtype=dtype)
        cost = operator_nbytes(m)
        with self._lock:
            if cost <= self.capacity_bytes and key not in self._entries:
                self._entries[key] = m
                self._bytes += cost
                self._evict_locked()
        return m

    def batch_operator(
        self,
        graphs: Sequence[CircuitGraph],
        dtype: np.dtype | type = np.float64,
        digests: Sequence[str | None] | None = None,
    ) -> sp.csr_matrix:
        """Block-diagonal batch operator assembled from cached per-graph CSRs."""
        if digests is not None and len(digests) != len(graphs):
            raise ValueError(f"got {len(digests)} digests for {len(graphs)} graphs")
        ops = [
            self.get_or_build(g, dtype=dtype, digest=digests[i] if digests else None)
            for i, g in enumerate(graphs)
        ]
        return stack_block_diagonal(ops)

    def _evict_locked(self) -> None:
        while self._entries and (
            self._bytes > self.capacity_bytes or len(self._entries) > self.max_entries
        ):
            _, victim = self._entries.popitem(last=False)
            # m3dlint: disable=M3D301 reason=_locked helper, only called with _lock held
            self._bytes -= operator_nbytes(victim)
            self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

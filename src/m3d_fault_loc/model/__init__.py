"""Fault-localization model."""

from m3d_fault_loc.model.localizer import DelayFaultLocalizer
from m3d_fault_loc.model.optim import Adam

__all__ = ["Adam", "DelayFaultLocalizer"]
